"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's exhibits (or an ablation)
and asserts its key shape property, so ``pytest benchmarks/
--benchmark-only`` doubles as the reproduction's acceptance run.

This conftest also gives the suite a perf trajectory: benchmarks that
measure the engine itself record their numbers through the
``bench_record`` fixture, and at session end everything recorded is
*appended* to the history in ``BENCH_cosim.json`` next to the
repository root — each entry machine-stamped, so runs on different
hosts are never compared as if they were equal.  A legacy single-run
file (the pre-history format) is converted into the first history
entry rather than discarded.  ``scripts/bench_compare.py`` diffs any
two entries and exits nonzero on a hot-path regression; CI uploads the
file as a build artifact.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

#: Where the emitted results land (repo root; git-ignored).
BENCH_RESULT_NAME = "BENCH_cosim.json"

#: History-file schema: ``{"format": 2, "entries": [...]}``, newest
#: entry last; each entry is ``{"machine": ..., "results": ...}``.
BENCH_HISTORY_FORMAT = 2

_RESULTS: dict[str, dict] = {}


def _machine_stamp() -> dict:
    return {
        "hostname": platform.node(),
        "machine": platform.machine(),
        "system": f"{platform.system()} {platform.release()}",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


@pytest.fixture
def bench_record():
    """Record one benchmark's results for the BENCH_cosim.json emitter.

    Usage: ``bench_record("replay_engine", speedup=5.8, ...)``.  Values
    must be JSON-serializable; later records under the same name merge
    over earlier ones.
    """

    def record(name: str, **values) -> None:
        _RESULTS.setdefault(name, {}).update(values)

    return record


def _load_history(path: Path) -> list[dict]:
    """Existing entries, tolerating both formats and damaged files.

    A pre-history file (one bare ``{"machine", "results"}`` object)
    becomes the first entry; an unreadable file costs the old history
    but never the new run.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
    except (OSError, ValueError):
        return []
    if isinstance(existing, dict) and "entries" in existing:
        entries = existing["entries"]
        return list(entries) if isinstance(entries, list) else []
    if isinstance(existing, dict) and "results" in existing:
        return [existing]  # legacy single-run file: keep it as entry 0
    return []


def pytest_sessionfinish(session, exitstatus):
    if not _RESULTS:
        return
    path = Path(__file__).resolve().parent.parent / BENCH_RESULT_NAME
    entries = _load_history(path)
    entries.append({"machine": _machine_stamp(), "results": _RESULTS})
    payload = {"format": BENCH_HISTORY_FORMAT, "entries": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
