"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's exhibits (or an ablation)
and asserts its key shape property, so ``pytest benchmarks/
--benchmark-only`` doubles as the reproduction's acceptance run.
"""
