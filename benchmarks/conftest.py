"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's exhibits (or an ablation)
and asserts its key shape property, so ``pytest benchmarks/
--benchmark-only`` doubles as the reproduction's acceptance run.

This conftest also gives the suite a perf trajectory: benchmarks that
measure the engine itself record their numbers through the
``bench_record`` fixture, and at session end everything recorded lands
in ``BENCH_cosim.json`` next to the repository root — machine-stamped,
so runs on different hosts are never compared as if they were equal.
CI uploads the file as a build artifact.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

#: Where the emitted results land (repo root; git-ignored).
BENCH_RESULT_NAME = "BENCH_cosim.json"

_RESULTS: dict[str, dict] = {}


def _machine_stamp() -> dict:
    return {
        "hostname": platform.node(),
        "machine": platform.machine(),
        "system": f"{platform.system()} {platform.release()}",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


@pytest.fixture
def bench_record():
    """Record one benchmark's results for the BENCH_cosim.json emitter.

    Usage: ``bench_record("replay_engine", speedup=5.8, ...)``.  Values
    must be JSON-serializable; later records under the same name merge
    over earlier ones.
    """

    def record(name: str, **values) -> None:
        _RESULTS.setdefault(name, {}).update(values)

    return record


def pytest_sessionfinish(session, exitstatus):
    if not _RESULTS:
        return
    path = Path(__file__).resolve().parent.parent / BENCH_RESULT_NAME
    payload = {"machine": _machine_stamp(), "results": _RESULTS}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
