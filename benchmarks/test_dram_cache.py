"""Benchmarks: the DRAM-cache device model and exact-path line sizes.

Two exhibits backing the paper's conclusions with device-level runs:

* streaming workload traffic through the DRAM-cache simulator shows the
  row-buffer locality that makes DRAM caches viable (and why the
  paper's 256-byte lines suit them);
* the same SHOT traffic through the Dragonhead emulator at 64 B versus
  256 B lines reproduces Figure 7's ~4x miss reduction on the *exact*
  path, not just the model.
"""

from repro.cache.dramsim import DramCacheConfig, DramCacheSim
from repro.cache.emulator import DragonheadConfig
from repro.core.cosim import CoSimPlatform
from repro.units import MB
from repro.workloads import get_workload

SHOT = get_workload("SHOT")
TRACE = SHOT.synthetic_thread_trace(0, 1, accesses=40_000, scale=1 / 16)


def test_dram_cache_row_locality(benchmark):
    def run():
        sim = DramCacheSim(
            DramCacheConfig(capacity=4 * MB, line_size=256, associativity=8, banks=8)
        )
        sim.access_chunk(TRACE)
        return sim.stats

    stats = benchmark(run)
    # Streaming-dominated traffic: good row-buffer behaviour, and the
    # average access is far cheaper than raw memory latency.
    assert stats.row_hit_ratio > 0.5
    assert stats.average_latency < 0.5 * DramCacheConfig().memory_latency


def test_exact_path_line_size_reduction(benchmark):
    def run():
        results = {}
        for line_size in (64, 256):
            platform = CoSimPlatform(
                DragonheadConfig(cache_size=1 * MB, line_size=line_size)
            )
            guest = SHOT.synthetic_guest(accesses_per_thread=20_000, scale=1 / 16)
            results[line_size] = platform.run(guest, cores=2).llc_stats.misses
        return results

    misses = benchmark(run)
    # Figure 7 on the exact path: SHOT's strided traffic crosses ~4x
    # fewer 256B lines than 64B lines.
    assert misses[64] > 2.5 * misses[256]
