"""Benchmarks: line-size traffic and bandwidth-demand studies."""

from repro.harness import bandwidth_study, linesize_traffic


def test_linesize_traffic_study(benchmark):
    rows = benchmark(linesize_traffic.generate)
    assert linesize_traffic.platform_line_size(rows) == 256


def test_bandwidth_demand_study(benchmark):
    rows = benchmark(bandwidth_study.generate)
    by_key = {(r.workload, r.cmp_name): r for r in rows}
    # Per-core demand scales with core count for the private-heavy pair.
    assert (
        by_key[("SHOT", "LCMP")].demand_gb_per_s
        > by_key[("SHOT", "SCMP")].demand_gb_per_s
    )
    # MDS saturates the modelled bus at 32 cores.
    assert by_key[("MDS", "LCMP")].bus_utilization == 1.0
