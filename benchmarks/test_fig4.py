"""Benchmark: regenerate Figure 4 (LLC MPKI vs cache size, SCMP).

Shape assertions: MDS flat, SHOT's working-set knee at the
SCMP-specific size, monotone non-increasing curves.
"""

from repro.harness import fig4
from repro.units import MB


def test_fig4_regeneration(benchmark):
    figure = benchmark(fig4.generate)
    assert len(figure.series) == 8
    # MDS never benefits: its 300MB matrix exceeds every simulated size.
    mds = figure.series["MDS"]
    assert min(mds) > 0.75 * max(mds)
    # SHOT's private working set: ~4MB x 8 cores.
    assert figure.knees["SHOT"] == 32 * MB
    for name, values in figure.series.items():
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:])), name
