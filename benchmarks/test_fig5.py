"""Benchmark: regenerate Figure 5 (LLC MPKI vs cache size, MCMP).

Shape assertions: MDS flat, SHOT's working-set knee at the
MCMP-specific size, monotone non-increasing curves.
"""

from repro.harness import fig5
from repro.units import MB


def test_fig5_regeneration(benchmark):
    figure = benchmark(fig5.generate)
    assert len(figure.series) == 8
    # MDS never benefits: its 300MB matrix exceeds every simulated size.
    mds = figure.series["MDS"]
    assert min(mds) > 0.75 * max(mds)
    # SHOT's private working set: ~4MB x 16 cores.
    assert figure.knees["SHOT"] == 64 * MB
    for name, values in figure.series.items():
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:])), name
