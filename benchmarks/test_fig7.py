"""Benchmark: regenerate Figure 7 (line-size sensitivity, 32 MB LCMP).

Shape assertions: responders (SHOT/MDS/SNP/SVM-RFE) get near-linear
64B→256B reductions, the rest modest ones, and everyone improves.
"""

from repro.harness import fig7
from repro.workloads.profiles import LINE_RESPONDERS, WORKLOAD_NAMES


def test_fig7_regeneration(benchmark):
    figure = benchmark(fig7.generate)
    factors = fig7.reduction_factors(figure)
    for name in LINE_RESPONDERS:
        assert factors[name] > 2.5, name
    for name in set(WORKLOAD_NAMES) - set(LINE_RESPONDERS):
        assert 1.0 < factors[name] < 2.5, name
    for name, values in figure.series.items():
        assert values[2] < values[0], name  # 256B beats 64B everywhere
