"""Benchmark: regenerate Figure 8 (hardware-prefetch gains).

Shape assertions: all gains positive, the paper's serial-vs-parallel
split (SNP/MDS serial winners, the rest parallel winners), and a
maximum gain near the paper's "up to 33%".
"""

from repro.harness import fig8
from repro.workloads.profiles import PREFETCH_PARALLEL_WINNERS, PREFETCH_SERIAL_WINNERS


def test_fig8_regeneration(benchmark):
    rows = benchmark(fig8.generate)
    by_name = {r.workload: r for r in rows}
    for row in rows:
        assert row.serial.speedup_percent > 0
        assert row.parallel.speedup_percent > 0
    for name in PREFETCH_PARALLEL_WINNERS:
        assert by_name[name].parallel_wins, name
    for name in PREFETCH_SERIAL_WINNERS:
        assert not by_name[name].parallel_wins, name
    best = max(
        max(r.serial.speedup_percent, r.parallel.speedup_percent) for r in rows
    )
    assert 25.0 < best < 45.0
