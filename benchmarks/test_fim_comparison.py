"""Benchmark: FP-growth versus Apriori (the Section 2.3 claim).

"FP-growth is proved to be much faster than the other FIM
implementations" — this pair of benchmarks measures both algorithms on
the same Kosarak-like transaction set and asserts they mine identical
itemsets.  The timing table printed by pytest-benchmark shows the gap.
"""

import pytest

from repro.mining.apriori import apriori
from repro.mining.datasets import transactions
from repro.mining.fpgrowth import fp_growth

DATA = transactions(n_transactions=400, n_items=40, avg_length=7, seed=77)
MIN_SUPPORT = 24


@pytest.fixture(scope="module")
def reference():
    return fp_growth(DATA, MIN_SUPPORT)


def test_fp_growth_speed(benchmark, reference):
    result = benchmark(fp_growth, DATA, MIN_SUPPORT)
    assert result == reference


def test_apriori_speed(benchmark, reference):
    result = benchmark(apriori, DATA, MIN_SUPPORT)
    assert result == reference
