"""Benchmark: the shared-versus-private LLC organization study.

Extension of the paper's related-work comparisons (PHA$E's shared vs
private L3): shape assertions follow the workload taxonomy — shared
organizations win for shared-dominant (category A) workloads, private
slices win for private-dominant (category C) ones at matched capacity.
"""

from repro.cache.organizations import organization_study
from repro.units import MB


def test_organization_study(benchmark):
    study = benchmark(organization_study, 64 * MB, 8)
    by_name = {c.workload: c for c in study}
    assert not by_name["SNP"].private_wins
    assert not by_name["MDS"].private_wins
    assert by_name["SHOT"].private_mpki <= by_name["SHOT"].shared_mpki + 0.01
