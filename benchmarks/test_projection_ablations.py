"""Benchmarks: the 128-core projection and the ablation suite.

The projection bench asserts the paper's "5 of the 8 workloads will
benefit from a large DRAM cache" claim; the ablation bench asserts that
each modelled design choice has its documented effect.
"""

from repro.harness import projection
from repro.harness.ablations import (
    replacement_policy_ablation,
    slice_rule_ablation,
    smoothing_ablation,
)


def test_projection_regeneration(benchmark):
    rows = benchmark(projection.generate)
    beneficiaries = {r.workload for r in rows if r.dram_candidate}
    assert beneficiaries == set(projection.PAPER_DRAM_BENEFICIARIES)


def test_model_ablations(benchmark):
    def run():
        return (
            replacement_policy_ablation(accesses=20_000),
            smoothing_ablation(),
            slice_rule_ablation(),
        )

    policies, smoothing, slice_rule = benchmark(run)
    assert len(policies) == 4
    assert all(1.0 < s.jump_ratio < 2.5 for s in smoothing)
    off, on = slice_rule
    assert off.mpki_4mb_32c > on.mpki_4mb_32c
