"""Benchmarks: the multi-config replay engine vs the per-config loop.

The engine's acceptance bar: a ≥7-configuration cache-size sweep
through :func:`repro.harness.replay.replay_sweep` must beat the pre-PR
per-config loop (``cosim_cache_sweep``: one full simulator pass per
size) by ≥5x wall-clock.  The measured ratio — plus the engine's
capture/replay throughput — is recorded into ``BENCH_cosim.json`` by
the emitter in ``conftest.py``.
"""

from __future__ import annotations

import time

from repro.core.cosim import CoSimPlatform, cosim_cache_sweep
from repro.harness.replay import capture_replay_log, replay, size_sweep_configs
from repro.trace.cache import TraceCache
from repro.units import MB
from repro.workloads.registry import get_workload

#: Eight doubling sizes, 1 MB-128 MB — the Figure 4-6 style design
#: space (and ≥7 configurations, per the acceptance criterion).
SWEEP_SIZES = [(1 << i) * MB for i in range(8)]

WORKLOAD = "FIMI"
CORES = 4


def _run_baseline() -> float:
    guest = get_workload(WORKLOAD).kernel_guest()
    start = time.perf_counter()
    cosim_cache_sweep(guest, CORES, SWEEP_SIZES)
    return time.perf_counter() - start


def _run_engine() -> tuple[float, int]:
    guest = get_workload(WORKLOAD).kernel_guest()
    configs = size_sweep_configs(SWEEP_SIZES)
    start = time.perf_counter()
    log = capture_replay_log(guest, CORES)
    for config in configs:
        replay(log, config)
    return time.perf_counter() - start, log.accesses


def test_replay_engine_speedup_over_per_config_loop(bench_record):
    """The tentpole bar: ≥5x on a ≥7-point cache-size sweep.

    Both sides run the same workload, cores, and sizes; best-of-3
    timings on each side keep scheduler noise out of the ratio.  The
    equivalence of the two result sets is proven field-for-field by
    ``tests/test_harness_replay.py`` — this test measures only time.
    """
    engine_time, accesses = min(_run_engine() for _ in range(3))
    baseline_time = min(_run_baseline() for _ in range(3))
    speedup = baseline_time / engine_time
    bench_record(
        "replay_engine",
        workload=WORKLOAD,
        cores=CORES,
        configs=len(SWEEP_SIZES),
        accesses_per_pass=accesses,
        baseline_seconds=round(baseline_time, 4),
        engine_seconds=round(engine_time, 4),
        speedup=round(speedup, 2),
    )
    assert speedup >= 5.0, (
        f"replay engine speedup {speedup:.2f}x < 5x "
        f"(baseline {baseline_time:.3f}s, engine {engine_time:.3f}s)"
    )


def test_warm_trace_cache_sweep(tmp_path, bench_record):
    """With a warm cache the sweep skips generation entirely."""
    cache = TraceCache(tmp_path)
    from repro.harness.replay import replay_sweep

    guest = get_workload(WORKLOAD).kernel_guest()
    configs = size_sweep_configs(SWEEP_SIZES)
    replay_sweep(guest, CORES, configs, trace_cache=cache)  # populate
    assert cache.stats.stores == 1

    start = time.perf_counter()
    warm = replay_sweep(
        get_workload(WORKLOAD).kernel_guest(), CORES, configs, trace_cache=cache
    )
    warm_time = time.perf_counter() - start
    assert cache.stats.hits == 1
    assert len(warm) == len(configs)
    bench_record("replay_engine", warm_sweep_seconds=round(warm_time, 4))


def test_cosim_end_to_end_rate(bench_record):
    """Record the plain single-config co-simulation rate for context."""
    guest = get_workload(WORKLOAD).kernel_guest()
    start = time.perf_counter()
    result = CoSimPlatform(size_sweep_configs([4 * MB])[0]).run(guest, CORES)
    elapsed = time.perf_counter() - start
    bench_record(
        "cosim_throughput",
        workload=WORKLOAD,
        cores=CORES,
        accesses=result.accesses,
        accesses_per_second=round(result.accesses / elapsed),
    )
    assert result.accesses > 0
