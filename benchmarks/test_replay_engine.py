"""Benchmarks: the multi-config replay engine vs the per-config loop.

The engine's acceptance bar: a ≥7-configuration cache-size sweep
through :func:`repro.harness.replay.replay_sweep` must beat the
per-config loop — one full simulator pass (trace generation, DEX
scheduling, protocol encode, emulation) per size, which is what
``cosim_cache_sweep`` did before it was rebuilt on the engine — by
≥5x wall-clock.  That loop lives inline here now, as the measurement
baseline.  The measured ratio — plus the engine's capture/replay
throughput — is recorded into ``BENCH_cosim.json`` by the emitter in
``conftest.py``.
"""

from __future__ import annotations

import time

from repro.core.cosim import CoSimPlatform
from repro.harness.replay import capture_replay_log, replay, size_sweep_configs
from repro.trace.cache import TraceCache
from repro.units import MB
from repro.workloads.registry import get_workload

#: Eight doubling sizes, 1 MB-128 MB — the Figure 4-6 style design
#: space (and ≥7 configurations, per the acceptance criterion).
SWEEP_SIZES = [(1 << i) * MB for i in range(8)]

WORKLOAD = "FIMI"
CORES = 4


def _run_baseline() -> float:
    guest = get_workload(WORKLOAD).kernel_guest()
    start = time.perf_counter()
    for config in size_sweep_configs(SWEEP_SIZES):
        CoSimPlatform(config).run(guest, CORES)
    return time.perf_counter() - start


def _run_engine() -> tuple[float, int]:
    guest = get_workload(WORKLOAD).kernel_guest()
    configs = size_sweep_configs(SWEEP_SIZES)
    start = time.perf_counter()
    log = capture_replay_log(guest, CORES)
    for config in configs:
        replay(log, config)
    return time.perf_counter() - start, log.accesses


def test_replay_engine_speedup_over_per_config_loop(bench_record):
    """The tentpole bar: ≥5x on a ≥7-point cache-size sweep.

    Both sides run the same workload, cores, and sizes; best-of-3
    timings on each side keep scheduler noise out of the ratio.  The
    equivalence of the two result sets is proven field-for-field by
    ``tests/test_harness_replay.py`` — this test measures only time.
    """
    engine_time, accesses = min(_run_engine() for _ in range(3))
    baseline_time = min(_run_baseline() for _ in range(3))
    speedup = baseline_time / engine_time
    bench_record(
        "replay_engine",
        workload=WORKLOAD,
        cores=CORES,
        configs=len(SWEEP_SIZES),
        accesses_per_pass=accesses,
        baseline_seconds=round(baseline_time, 4),
        engine_seconds=round(engine_time, 4),
        speedup=round(speedup, 2),
    )
    assert speedup >= 5.0, (
        f"replay engine speedup {speedup:.2f}x < 5x "
        f"(baseline {baseline_time:.3f}s, engine {engine_time:.3f}s)"
    )


def test_warm_trace_cache_sweep(tmp_path, bench_record):
    """With a warm cache the sweep skips generation entirely."""
    cache = TraceCache(tmp_path)
    from repro.harness.replay import replay_sweep

    guest = get_workload(WORKLOAD).kernel_guest()
    configs = size_sweep_configs(SWEEP_SIZES)
    replay_sweep(guest, CORES, configs, trace_cache=cache)  # populate
    assert cache.stats.stores == 1

    start = time.perf_counter()
    warm = replay_sweep(
        get_workload(WORKLOAD).kernel_guest(), CORES, configs, trace_cache=cache
    )
    warm_time = time.perf_counter() - start
    assert cache.stats.hits == 1
    assert len(warm) == len(configs)
    bench_record("replay_engine", warm_sweep_seconds=round(warm_time, 4))


def test_cosim_end_to_end_rate(bench_record):
    """The batched hot path clears the ≥10x acceptance floor.

    The pre-batching history entry recorded ``cosim_throughput`` at
    ~170k accesses/s (a full per-message single-config run); the bar
    for the batched pipeline is ≥10x that, i.e. ≥1.8M accesses/s on a
    warm replay.  Capture a ~1M-access synthetic stream once, then time
    the batched replay (one ``emulate_stream`` pass: vectorized bank
    routing, one probe batch per bank, searchsorted window
    aggregation).  ``accesses_per_second`` is the gated history metric;
    the per-event message-loop rate on the same log rides along as
    ungated context for the in-run comparison.
    """
    from repro.cache.emulator import DragonheadEmulator
    from repro.harness.replay import replay_into

    guest = get_workload(WORKLOAD).synthetic_guest(
        accesses_per_thread=262_144, scale=1.0
    )
    log = capture_replay_log(guest, CORES)
    config = size_sweep_configs([4 * MB])[0]
    replay(log, config)  # warm caches and allocator pools

    batched_time = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        result = replay(log, config)
        batched_time = min(batched_time, time.perf_counter() - start)
    rate = result.accesses / batched_time

    emulator = DragonheadEmulator(config)
    start = time.perf_counter()
    replay_into(log, emulator, on_event=lambda position: None)
    per_event_time = time.perf_counter() - start
    per_event_rate = result.accesses / per_event_time
    assert emulator.read_performance_data() == result.performance

    bench_record(
        "cosim_throughput",
        workload=WORKLOAD,
        cores=CORES,
        accesses=result.accesses,
        accesses_per_second=round(rate),
        per_event_loop_rate=round(per_event_rate),
        batch_speedup=round(rate / per_event_rate, 2),
    )
    assert rate >= 1_800_000, (
        f"batched rate {rate:,.0f}/s misses the 1.8M/s acceptance floor "
        f"(10x the pre-batching history entry)"
    )
