"""Benchmark: exact versus SHARDS-sampled stack-distance analysis.

Quantifies the speedup that makes sampled analysis worth shipping, and
asserts the estimate stays within tolerance of the exact MPKI.
"""

import numpy as np
import pytest

from repro.reuse.model import exact_miss_count
from repro.reuse.sampling import sampled_mpki
from repro.reuse.olken import stack_distances, miss_count
from repro.trace.generators import Region, uniform_random
from repro.units import KB, MB

TRACE = uniform_random(
    Region(0, 1 * MB), count=60_000, granule=64, rng=np.random.default_rng(101)
)
INSTRUCTIONS = 2 * len(TRACE)
CACHE = 256 * KB


def test_exact_stack_distance_analysis(benchmark):
    def run():
        distances = stack_distances(TRACE, 64)
        return miss_count(distances, CACHE // 64)

    misses = benchmark(run)
    assert misses > 0


def test_sampled_stack_distance_analysis(benchmark):
    estimate = benchmark(
        sampled_mpki, TRACE, INSTRUCTIONS, CACHE, 0.1
    )
    exact = exact_miss_count(TRACE, CACHE) / INSTRUCTIONS * 1000
    assert estimate == pytest.approx(exact, rel=0.15)
