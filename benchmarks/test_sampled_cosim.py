"""Benchmark: sampled simulation vs the exact replay path on a long trace.

The sampling engine's acceptance bar: on a captured stream ~50x the
length of the seed benchmarks (16.8M accesses — FIMI synthetic traffic,
262,144 accesses per thread repeated 16 times across 4 cores), a
three-geometry LLC sweep through :func:`repro.simpoint.sampled_sweep`
must beat the exact per-config replay loop by ≥20x wall-clock while
keeping every geometry's MPKI estimate within 5% of the exact value.
Capture is excluded from both timings — both paths replay the same
:class:`~repro.harness.replay.ReplayLog`, so the ratio measures the
engine, not trace generation.

The geometries (1/2/4 MB) all sit below the stream's 10.3 MB footprint:
under identical repetition the steady-state miss rate at
footprint-holding caches collapses toward zero, which makes *relative*
error a meaningless yardstick there (see ``docs/architecture.md``).

The measured speedup and worst-case relative MPKI error are recorded
into ``BENCH_cosim.json`` as ``cosim_sampled`` by the emitter in
``conftest.py``.
"""

from __future__ import annotations

import time

from repro.harness.replay import capture_replay_log, replay, size_sweep_configs
from repro.simpoint import SampleSpec, sampled_sweep
from repro.units import MB
from repro.workloads.registry import get_workload

WORKLOAD = "FIMI"
CORES = 4
ACCESSES_PER_THREAD = 262_144
REPEATS = 16
SWEEP_SIZES = [1 * MB, 2 * MB, 4 * MB]
SPEC = SampleSpec(interval=65_536, max_k=6)


def test_sampled_cosim_speedup_and_accuracy(bench_record):
    """The tentpole bar: ≥20x on a long-trace sweep, ≤5% MPKI error."""
    guest = get_workload(WORKLOAD).synthetic_guest(
        accesses_per_thread=ACCESSES_PER_THREAD, scale=1.0, repeats=REPEATS
    )
    configs = size_sweep_configs(SWEEP_SIZES)
    log = capture_replay_log(guest, CORES)

    start = time.perf_counter()
    exact = [replay(log, config) for config in configs]
    exact_time = time.perf_counter() - start

    start = time.perf_counter()
    sampled = sampled_sweep(log, configs, SPEC)
    sampled_time = time.perf_counter() - start

    speedup = exact_time / sampled_time
    rel_errors = [
        abs(estimate.mpki.value - reference.mpki) / reference.mpki
        for estimate, reference in zip(sampled, exact)
    ]
    max_rel_error = max(rel_errors)
    coverage = sampled[0].coverage
    bench_record(
        "cosim_sampled",
        workload=WORKLOAD,
        cores=CORES,
        accesses=log.accesses,
        configs=len(configs),
        interval=SPEC.interval,
        clusters=coverage.clusters,
        emulated_fraction=round(coverage.simulated_fraction, 4),
        exact_seconds=round(exact_time, 4),
        sampled_seconds=round(sampled_time, 4),
        speedup=round(speedup, 2),
        max_rel_mpki_error=round(max_rel_error, 4),
    )
    assert speedup >= 20.0, (
        f"sampled simulation speedup {speedup:.2f}x < 20x "
        f"(exact {exact_time:.3f}s, sampled {sampled_time:.3f}s)"
    )
    assert max_rel_error <= 0.05, (
        f"max relative MPKI error {100 * max_rel_error:.2f}% exceeds 5% "
        f"(per-config: {[f'{100 * e:.2f}%' for e in rel_errors]})"
    )
    for estimate, reference in zip(sampled, exact):
        assert estimate.mpki.brackets(reference.mpki), (
            f"error bar {estimate.mpki} misses exact MPKI {reference.mpki:.3f}"
        )
