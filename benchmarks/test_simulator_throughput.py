"""Benchmarks: raw throughput of the simulation substrates.

Not a paper exhibit — these measure the engine itself (cache simulation
rate, stack-distance analysis rate, co-simulation end-to-end rate), the
numbers a user sizing an experiment needs.
"""

import time

import numpy as np

from repro.cache.cache import CacheConfig, FullyAssociativeLRU, SetAssociativeCache
from repro.cache.emulator import DragonheadConfig
from repro.cache.replacement import LRUPolicy
from repro.core.cosim import CoSimPlatform
from repro.core.softsdv import GuestWorkload
from repro.reuse.olken import stack_distances
from repro.trace.generators import (
    Region,
    cyclic_scan,
    pointer_chase,
    sequential_scan,
    uniform_random,
    zipf_random,
)
from repro.trace.record import TraceChunk
from repro.trace.stream import chunk_stream
from repro.units import KB, MB

TRACE = uniform_random(
    Region(0, 8 * MB), count=50_000, rng=np.random.default_rng(99)
)

# A chunk-per-pattern stream shaped like the paper's workload models
# (repro.workloads.profiles): mostly stride-8 streaming and cyclic
# scans, with random probing and pointer chasing minorities.  Chunks
# come one pattern at a time, the way per-thread DEX slices reach the
# emulator, not statistically interleaved per access.
WORKLOAD_CHUNKS = [
    sequential_scan(Region(0, 4 * MB), count=50_000, stride=8),
    cyclic_scan(Region(0, 256 * KB), passes=2, stride=8),
    sequential_scan(Region(0, 512 * KB), count=50_000, stride=8, write_fraction=0.25),
    zipf_random(Region(0, 2 * MB), count=50_000, rng=np.random.default_rng(8)),
    uniform_random(Region(0, 8 * MB), count=50_000, rng=np.random.default_rng(7)),
    pointer_chase(Region(0, 4 * MB), count=50_000, rng=np.random.default_rng(9)),
]


def _replay_workload_chunks(force_seed_path: bool) -> tuple[float, "SetAssociativeCache"]:
    cache = SetAssociativeCache(CacheConfig(size=1 * MB, associativity=16))
    if force_seed_path:
        # The pre-fastlru configuration: list-based LRUPolicy driven by
        # the generic per-access loop.
        cache._policy = LRUPolicy(cache.config.num_sets, cache.config.associativity)
    start = time.perf_counter()
    for chunk in WORKLOAD_CHUNKS:
        cache.access_chunk(chunk)
    return time.perf_counter() - start, cache


def test_set_associative_cache_throughput(benchmark):
    def run():
        cache = SetAssociativeCache(CacheConfig(size=1 * MB, associativity=16))
        cache.access_chunk(TRACE)
        return cache.stats.misses

    misses = benchmark(run)
    assert misses > 0


def test_workload_chunk_throughput(benchmark):
    def run():
        _, cache = _replay_workload_chunks(force_seed_path=False)
        return cache.stats.misses

    misses = benchmark(run)
    assert misses > 0


def test_chunked_lru_speedup_over_seed_path():
    """The fastlru acceptance bar: ≥5× over the per-access seed path.

    Both paths replay the same workload-shaped chunk stream; best-of-3
    timings keep scheduler noise out of the ratio.  The two caches must
    also agree exactly — the speedup is only meaningful if the kernel
    is a drop-in.
    """
    fast_time, fast_cache = min(
        (_replay_workload_chunks(force_seed_path=False) for _ in range(3)),
        key=lambda pair: pair[0],
    )
    seed_time, seed_cache = min(
        (_replay_workload_chunks(force_seed_path=True) for _ in range(3)),
        key=lambda pair: pair[0],
    )
    fast, seed = fast_cache.stats, seed_cache.stats
    assert (fast.hits, fast.misses, fast.evictions) == (
        seed.hits,
        seed.misses,
        seed.evictions,
    )
    speedup = seed_time / fast_time
    assert speedup >= 5.0, f"chunked LRU speedup {speedup:.2f}x < 5x"


def test_fully_associative_lru_throughput(benchmark):
    def run():
        cache = FullyAssociativeLRU(capacity_lines=16384)
        cache.access_chunk(TRACE)
        return cache.stats.misses

    misses = benchmark(run)
    assert misses > 0


def test_stack_distance_throughput(benchmark):
    distances = benchmark(stack_distances, TRACE[:20000], 64)
    assert len(distances) == 20000


class _SeedFenwick:
    """The pre-optimization list-based Fenwick tree, kept as the
    reference point for the stack-distance throughput floor."""

    __slots__ = ("tree", "size")

    def __init__(self, size: int) -> None:
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        tree = self.tree
        while i <= self.size:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        i = index + 1
        total = 0
        tree = self.tree
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total


def _seed_stack_distances(chunk, line_size=64):
    """The seed implementation: dict last-use probe plus two prefix
    sums and two point updates per access."""
    from repro.reuse.olken import COLD

    lines = chunk.lines(line_size)
    n = len(lines)
    result = np.empty(n, dtype=np.int64)
    fenwick = _SeedFenwick(n)
    last_time: dict[int, int] = {}
    for t in range(n):
        line = int(lines[t])
        previous = last_time.get(line)
        if previous is None:
            result[t] = COLD
        else:
            result[t] = fenwick.prefix_sum(t - 1) - fenwick.prefix_sum(previous)
            fenwick.add(previous, -1)
        fenwick.add(t, +1)
        last_time[line] = t
    return result


def test_stack_distance_speedup_over_seed_path(bench_record):
    """The Olken-optimization floor: ≥1.25x over the seed path.

    The optimized path precomputes previous occurrences vectorized,
    replaces the minuend prefix sum with a cumulative distinct count,
    and tracks superseded positions in a flat int64 Fenwick array (one
    walk + one update per warm access, nothing for cold ones).  It must
    return bit-identical distances, and do so measurably faster on a
    reuse-heavy trace; the ~1.9x typically measured is asserted at 1.25x
    to keep the floor loaded-machine-safe.
    """
    trace = TraceChunk.concatenate(
        [
            cyclic_scan(Region(0, 2 * MB), passes=2, stride=8)[:40_000],
            uniform_random(Region(0, 4 * MB), count=40_000, rng=np.random.default_rng(5)),
        ]
    )
    fast = stack_distances(trace, 64)
    assert np.array_equal(fast, _seed_stack_distances(trace, 64))
    fast_time = min(
        _timed(stack_distances, trace, 64) for _ in range(3)
    )
    seed_time = min(
        _timed(_seed_stack_distances, trace, 64) for _ in range(3)
    )
    speedup = seed_time / fast_time
    bench_record(
        "olken",
        accesses=len(trace),
        accesses_per_second=round(len(trace) / fast_time),
        speedup_over_seed=round(speedup, 2),
    )
    assert speedup >= 1.25, f"stack-distance speedup {speedup:.2f}x < 1.25x"


def _timed(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def test_cosim_end_to_end_throughput(benchmark):
    def thread_streams(n):
        return [
            chunk_stream(
                cyclic_scan(
                    Region(0x1000_0000 + i * 0x100_0000, 256 * KB),
                    passes=2,
                    stride=64,
                )
            )
            for i in range(n)
        ]

    guest = GuestWorkload("bench", thread_streams)

    def run():
        platform = CoSimPlatform(DragonheadConfig(cache_size=1 * MB))
        return platform.run(guest, cores=4)

    result = benchmark(run)
    assert result.accesses == 4 * 4096 * 2
