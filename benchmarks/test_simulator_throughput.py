"""Benchmarks: raw throughput of the simulation substrates.

Not a paper exhibit — these measure the engine itself (cache simulation
rate, stack-distance analysis rate, co-simulation end-to-end rate), the
numbers a user sizing an experiment needs.
"""

import numpy as np

from repro.cache.cache import CacheConfig, FullyAssociativeLRU, SetAssociativeCache
from repro.cache.emulator import DragonheadConfig
from repro.core.cosim import CoSimPlatform
from repro.core.softsdv import GuestWorkload
from repro.reuse.olken import stack_distances
from repro.trace.generators import Region, cyclic_scan, uniform_random
from repro.trace.stream import chunk_stream
from repro.units import KB, MB

TRACE = uniform_random(
    Region(0, 8 * MB), count=50_000, rng=np.random.default_rng(99)
)


def test_set_associative_cache_throughput(benchmark):
    def run():
        cache = SetAssociativeCache(CacheConfig(size=1 * MB, associativity=16))
        cache.access_chunk(TRACE)
        return cache.stats.misses

    misses = benchmark(run)
    assert misses > 0


def test_fully_associative_lru_throughput(benchmark):
    def run():
        cache = FullyAssociativeLRU(capacity_lines=16384)
        cache.access_chunk(TRACE)
        return cache.stats.misses

    misses = benchmark(run)
    assert misses > 0


def test_stack_distance_throughput(benchmark):
    distances = benchmark(stack_distances, TRACE[:20000], 64)
    assert len(distances) == 20000


def test_cosim_end_to_end_throughput(benchmark):
    def thread_streams(n):
        return [
            chunk_stream(
                cyclic_scan(
                    Region(0x1000_0000 + i * 0x100_0000, 256 * KB),
                    passes=2,
                    stride=64,
                )
            )
            for i in range(n)
        ]

    guest = GuestWorkload("bench", thread_streams)

    def run():
        platform = CoSimPlatform(DragonheadConfig(cache_size=1 * MB))
        return platform.run(guest, cores=4)

    result = benchmark(run)
    assert result.accesses == 4 * 4096 * 2
