"""Benchmark: regenerate Table 1 (inputs and datasets).

Times the synthesis of every workload's substitute dataset at kernel
scale — the data-generation cost behind the exact path.
"""

from repro.harness import table1
from repro.mining import datasets


def build_all_datasets():
    datasets.genotype_matrix(300, 20, seed=1)
    datasets.micro_array(samples=40, genes=128, seed=2)
    datasets.rna_database(2000, seed=3)
    datasets.transactions(n_transactions=400, n_items=60, seed=4)
    datasets.dna_pair(length=512, seed=5)
    datasets.document_set(n_documents=12, seed=6)
    datasets.synthetic_video(n_frames=30, seed=7)
    return table1.generate()


def test_table1_regeneration(benchmark):
    rows = benchmark(build_all_datasets)
    assert len(rows) == 8
    assert all(row.substitute for row in rows)
