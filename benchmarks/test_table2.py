"""Benchmark: regenerate Table 2 (workload characteristics).

Shape assertions: model-vs-paper MPKI within tolerance and the IPC
ordering (MDS slowest, PLSA fastest).
"""

import pytest

from repro.harness import table2


def test_table2_regeneration(benchmark):
    rows = benchmark(table2.generate)
    assert len(rows) == 8
    by_name = {r.workload: r for r in rows}
    for row in rows:
        assert row.dl1_mpki_model == pytest.approx(row.dl1_mpki_paper, rel=0.15)
        assert row.dl2_mpki_model == pytest.approx(row.dl2_mpki_paper, rel=0.25)
        assert row.ipc_model == pytest.approx(row.ipc_paper, rel=0.10)
    ipcs = {name: r.ipc_model for name, r in by_name.items()}
    assert min(ipcs, key=ipcs.get) == "MDS"
    assert max(ipcs, key=ipcs.get) == "PLSA"
