"""Cache design-space exploration, both evaluation paths.

Reproduces a miniature of the paper's Figure 4 methodology for one
workload (SHOT) at two fidelities:

1. **exact path** — model-shaped synthetic traces, footprints scaled
   down 16x, simulated to completion through the Dragonhead emulator
   across a cache sweep, with a warm-up pass excluded via the CB
   counter clear (what the hardware platform measures);
2. **model path** — the analytic reuse model evaluated at the same
   scaled geometry, demonstrating the model-vs-simulation agreement
   that licenses the paper-scale sweeps;
3. paper-scale model output (the actual Figure 4 series).

Run:  python examples/cache_design_space.py
"""

from repro import DragonheadConfig, MB, format_size
from repro.core.cosim import CoSimPlatform
from repro.harness.report import render_table, sparkline
from repro.units import PAPER_CACHE_SWEEP
from repro.workloads import get_workload

SCALE = 1 / 8
CORES = 4
ACCESSES_PER_THREAD = 120_000
SCALED_SWEEP = [1 * MB, 2 * MB, 4 * MB]


def measure_exact(workload, cache_size: int) -> float:
    """Warm up, clear the CB counters, measure the second half."""
    platform = CoSimPlatform(DragonheadConfig(cache_size=cache_size))
    guest = workload.guest_workload(
        "synthetic", accesses_per_thread=ACCESSES_PER_THREAD, scale=SCALE
    )
    scheduler = platform.softsdv.run_workload(guest, CORES)
    platform.emulator.reset_statistics()
    instructions_before = scheduler.instructions_retired
    guest2 = workload.guest_workload(
        "synthetic", accesses_per_thread=ACCESSES_PER_THREAD, scale=SCALE, seed=1
    )
    scheduler2 = platform.softsdv.run_workload(guest2, CORES)
    measured = platform.emulator.stats
    return 1000.0 * measured.misses / scheduler2.instructions_retired


def main() -> None:
    shot = get_workload("SHOT")
    rows = []
    for cache_size in SCALED_SWEEP:
        exact = measure_exact(shot, cache_size)
        predicted = shot.model.llc_mpki(int(cache_size / SCALE), 64, CORES)
        rows.append(
            (
                format_size(cache_size),
                f"{exact:.2f}",
                f"{predicted:.2f}",
                format_size(int(cache_size / SCALE)),
            )
        )
    print(
        render_table(
            ["scaled LLC", "exact-path MPKI", "model MPKI", "equivalent size"],
            rows,
            title=(
                f"SHOT, {CORES} threads, footprints scaled 1/{int(1 / SCALE)} "
                "(steady state, warm-up excluded)"
            ),
        )
    )
    print()

    series = [shot.model.llc_mpki(s, 64, 8) for s in PAPER_CACHE_SWEEP]
    print("Paper-scale Figure 4 series for SHOT (4MB..256MB, 8 cores):")
    print("  MPKI:", "  ".join(f"{v:.2f}" for v in series), " ", sparkline(series))
    knee = "none"
    for i in range(1, len(series)):
        if series[i - 1] > 0 and (series[i - 1] - series[i]) / series[i - 1] > 0.3:
            knee = format_size(PAPER_CACHE_SWEEP[i])
            break
    print(f"  working-set knee: {knee} (paper: 32MB on the 8-core SCMP)")


if __name__ == "__main__":
    main()
