"""Workload consolidation: different applications sharing one CMP.

The paper measures each workload running alone on all cores; a CMP in
production runs mixes.  This example consolidates FIMI (pointer-heavy,
shared tree) with SHOT (streaming, private frames) on one 8-core CMP
and asks the questions an architect would:

1. how does the shared-LLC MPKI of the mix compare with each workload
   alone (model path, paper scale)?
2. how do the mix's misses split between the two applications (exact
   path: per-core attribution from the emulator's counters)?

Run:  python examples/consolidation.py
"""

from repro import CoSimPlatform, DragonheadConfig, MB
from repro.harness.report import render_table
from repro.workloads import get_workload
from repro.workloads.mixes import MixEntry, mixed_guest, mixed_llc_mpki


def main() -> None:
    fimi = get_workload("FIMI")
    shot = get_workload("SHOT")
    entries = [MixEntry(fimi, 4), MixEntry(shot, 4)]

    rows = []
    for size_mb in (8, 16, 32, 64):
        size = size_mb * MB
        rows.append(
            (
                f"{size_mb}MB",
                f"{fimi.model.llc_mpki(size, 64, 8):.2f}",
                f"{shot.model.llc_mpki(size, 64, 8):.2f}",
                f"{mixed_llc_mpki(entries, size):.2f}",
            )
        )
    print(
        render_table(
            ["LLC", "FIMI alone (8c)", "SHOT alone (8c)", "4xFIMI + 4xSHOT"],
            rows,
            title="Model path: consolidation at paper scale",
        )
    )
    print()

    guest = mixed_guest(entries, accesses_per_thread=30_000, scale=1 / 16)
    platform = CoSimPlatform(DragonheadConfig(cache_size=2 * MB))
    result = platform.run(guest, cores=8)
    stats = result.llc_stats
    fimi_misses = sum(stats.per_core_misses.get(c, 0) for c in range(4))
    shot_misses = sum(stats.per_core_misses.get(c, 0) for c in range(4, 8))
    print(f"Exact path ({guest.name} on a 2MB scaled LLC):")
    print(f"  total LLC misses : {stats.misses:,}")
    print(f"  from FIMI cores  : {fimi_misses:,}")
    print(f"  from SHOT cores  : {shot_misses:,}")
    print(f"  mix MPKI         : {result.mpki:.2f}")
    print()
    print("The per-core CORE_ID tagging that Dragonhead uses to attribute")
    print("misses (Section 3.3) is what makes this split observable.")


if __name__ == "__main__":
    main()
