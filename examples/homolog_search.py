"""RNA homolog search (RSEARCH) with thread-scaling characterization.

1. Builds a nucleotide database, plants mutated copies of a structured
   query, and locates them with the CYK scan (sequence+structure
   scoring, Section 2.2);
2. co-simulates the instrumented kernel on 1, 2, and 4 virtual cores,
   showing the category-B behaviour: the shared database dominates, the
   per-thread DP charts add a small, growing increment (the Figure 5/6
   story at reduced scale).

Run:  python examples/homolog_search.py
"""

from repro import CoSimPlatform, DragonheadConfig, MB
from repro.mining.datasets import plant_homolog, rna_database, rna_query
from repro.mining.scfg import PairingSCFG, rsearch_scan
from repro.workloads import get_workload


def main() -> None:
    query = rna_query(24, seed=4)
    database = rna_database(400, seed=2)
    for position in (96, 280):
        database = plant_homolog(database, query, position, seed=position)
    print(f"Database: {len(database)} nt, homologs planted at 96 and 280")

    grammar = PairingSCFG()
    scores = rsearch_scan(grammar, database, window=24, step=4, query=query)
    top = sorted(scores, key=lambda s: -s[1])[:4]
    print("Top-scoring windows (position, bits):")
    for position, bits in top:
        marker = " <-- planted" if min(abs(position - 96), abs(position - 280)) <= 4 else ""
        print(f"  {position:4d}  {bits:7.1f}{marker}")
    print()

    rsearch = get_workload("RSEARCH")
    print("Co-simulated LLC behaviour of the instrumented kernel "
          "(1MB shared LLC):")
    for cores in (1, 2, 4):
        platform = CoSimPlatform(DragonheadConfig(cache_size=1 * MB), quantum=2048)
        result = platform.run(rsearch.kernel_guest(), cores=cores)
        print(f"  {cores} core(s): {result.accesses:>9,} accesses, "
              f"MPKI {result.mpki:6.2f}")
    print()
    print("Paper-scale model: the working set grows 4MB -> 8MB -> 16MB")
    for cores in (8, 16, 32):
        mpki_4mb = rsearch.model.llc_mpki(4 * MB, 64, cores)
        print(f"  {cores:2d} cores at a 4MB LLC: {mpki_4mb:.3f} MPKI")


if __name__ == "__main__":
    main()
