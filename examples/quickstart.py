"""Quickstart: co-simulate a real data-mining kernel.

Builds the full platform — SoftSDV DEX front-end, FSB, Dragonhead cache
emulator — runs the instrumented FP-growth (FIMI) kernel on four virtual
cores, and reads the emulator's performance data, exactly the flow of
the paper's Section 3.

Run:  python examples/quickstart.py
"""

from repro import CoSimPlatform, DragonheadConfig, MB, format_size
from repro.workloads import get_workload


def main() -> None:
    fimi = get_workload("FIMI")
    print(f"Workload: {fimi.name} — {fimi.description}")
    print(f"Sharing category (Section 4.3): {fimi.category}")
    print()

    for cache_size in (1 * MB, 4 * MB):
        platform = CoSimPlatform(
            DragonheadConfig(cache_size=cache_size), quantum=2048
        )
        result = platform.run(fimi.kernel_guest(), cores=4)
        print(f"Dragonhead configured with a {format_size(cache_size)} shared LLC:")
        print(f"  instructions retired : {result.instructions:,}")
        print(f"  LLC accesses         : {result.accesses:,}")
        print(f"  LLC misses           : {result.llc_stats.misses:,}")
        print(f"  LLC MPKI             : {result.mpki:.2f}")
        print(f"  filtered (OS noise)  : {result.filtered:,} transactions")
        print(f"  500us windows sampled: {len(result.samples)}")
        print()

    model = fimi.model
    print("Paper-scale model predictions for the same workload:")
    for size_mb in (4, 16, 64):
        mpki = model.llc_mpki(size_mb * MB, 64, threads=8)
        print(f"  {size_mb:>3}MB LLC, 8 cores: {mpki:.2f} MPKI")


if __name__ == "__main__":
    main()
