"""Video mining end to end: SHOT + VIEWTYPE with memory characterization.

Runs the two video workloads of Section 2.6 on one synthetic broadcast:

1. shot-boundary detection (48-bin RGB histograms + pixel difference),
   compared against the video's ground truth;
2. view-type classification (HSV dominant-color playfield segmentation),
   compared per shot;
3. memory characterization of the instrumented SHOT kernel: footprint,
   stride spectrum, and how much a stride prefetcher covers — the
   Section 4.4 story on real kernel traces.

Run:  python examples/video_mining.py
"""

import collections

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.cache.prefetch import PrefetchingCache, StridePrefetcher
from repro.mining.datasets import synthetic_video
from repro.mining.video import classify_video_views, detect_shots, traced_shot_kernel
from repro.trace.instrument import MemoryArena, TraceRecorder
from repro.trace.stats import dominant_stride_fraction, profile_trace
from repro.units import KB, format_size


def main() -> None:
    video = synthetic_video(n_frames=80, height=36, width=48, seed=42)
    print(f"Synthetic broadcast: {len(video.frames)} frames, "
          f"{len(video.shot_boundaries)} shots")

    detected = detect_shots(video.frames)
    truth = set(video.shot_boundaries)
    hits = truth & set(detected)
    print(f"SHOT: detected {detected}")
    print(f"      recall {len(hits)}/{len(truth)}, "
          f"false positives {len(set(detected) - truth)}")

    views = classify_video_views(video.frames)
    bounds = video.shot_boundaries + [len(video.frames)]
    correct = 0
    for i, expected in enumerate(video.view_types):
        window = views[bounds[i] : bounds[i + 1]]
        majority = collections.Counter(window).most_common(1)[0][0]
        correct += majority == expected
    print(f"VIEWTYPE: {correct}/{len(video.view_types)} shots classified correctly")
    print()

    # Memory characterization of the instrumented kernel.
    recorder = TraceRecorder()
    traced_shot_kernel(recorder, MemoryArena(), n_frames=24, height=24, width=32)
    trace = recorder.trace()
    profile = profile_trace(trace)
    print("SHOT kernel memory profile (instrumented run):")
    print(f"  accesses        : {profile.accesses:,}")
    print(f"  footprint       : {format_size(profile.footprint_bytes)}")
    print(f"  read fraction   : {profile.read_fraction:.2f}")
    print(f"  constant-stride : {dominant_stride_fraction(trace):.2f} of transitions")

    plain = SetAssociativeCache(CacheConfig.fully_associative(8 * KB))
    plain.access_chunk(trace)
    prefetching = PrefetchingCache(
        SetAssociativeCache(CacheConfig.fully_associative(8 * KB)),
        StridePrefetcher(degree=4),
    )
    prefetching.access_chunk(trace)
    saved = plain.stats.misses - prefetching.cache.stats.misses
    print(f"  8KB cache misses: {plain.stats.misses:,} -> "
          f"{prefetching.cache.stats.misses:,} with stride prefetch "
          f"({100 * saved / plain.stats.misses:.0f}% covered — the streaming "
          f"pattern the paper credits for Figure 8's gains)")


if __name__ == "__main__":
    main()
