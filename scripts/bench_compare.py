#!/usr/bin/env python
"""Compare two entries of the ``BENCH_cosim.json`` benchmark history.

The benchmark conftest appends one machine-stamped entry per session to
the history file; this script diffs two of them — by default the last
two, so ``python scripts/bench_compare.py`` after a benchmark run
answers "did this change slow the engine down?".  It exits nonzero
when any *hot-path* metric regressed by more than the threshold
(default 10%), which is what the perf gate in CI keys on.

Metric direction is inferred from the name, matching the conventions
the benchmarks already use:

* higher is better: ``speedup``, anything containing ``per_second``;
* lower is better: anything ending in ``seconds``;
* everything else (workload names, core counts, sizes) is context and
  is compared for information only, never gated on.

Entries from different machines are still compared — benchmark hosts
differ in CI — but the report says so loudly, because a cross-host
"regression" usually measures the hardware, not the code.

Usage::

    python scripts/bench_compare.py                 # last two entries
    python scripts/bench_compare.py --base 0 --new -1
    python scripts/bench_compare.py --file BENCH_cosim.json --threshold 0.15
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Hot-path regression gate: a gated metric this much worse fails.
DEFAULT_THRESHOLD = 0.10


def load_entries(path: Path) -> list[dict]:
    """All history entries, oldest first (legacy files give one)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and "entries" in payload:
        return list(payload["entries"])
    if isinstance(payload, dict) and "results" in payload:
        return [payload]
    raise ValueError(f"{path} is not a benchmark history file")


def metric_direction(name: str) -> str | None:
    """``"higher"``/``"lower"`` for gated metrics, None for context."""
    if name == "speedup" or "per_second" in name:
        return "higher"
    if name.endswith("seconds"):
        return "lower"
    return None


def compare(base: dict, new: dict, threshold: float) -> tuple[list[str], int]:
    """Render the comparison; returns (report lines, exit status)."""
    lines: list[str] = []
    status = 0
    base_host = base.get("machine", {}).get("hostname", "?")
    new_host = new.get("machine", {}).get("hostname", "?")
    base_when = base.get("machine", {}).get("timestamp", "?")
    new_when = new.get("machine", {}).get("timestamp", "?")
    lines.append(f"base: {base_host} @ {base_when}")
    lines.append(f"new : {new_host} @ {new_when}")
    if base_host != new_host:
        lines.append(
            "WARNING: entries come from different machines — deltas "
            "below measure hardware as much as code"
        )
    names = sorted(set(base.get("results", {})) | set(new.get("results", {})))
    for name in names:
        old_values = base.get("results", {}).get(name)
        new_values = new.get("results", {}).get(name)
        # A benchmark present in only one entry is information, never a
        # regression: new benchmarks (and retired ones) must not trip
        # the gate on histories that predate them.
        if old_values is None:
            lines.append(f"{name}: new (not in base entry)")
            continue
        if new_values is None:
            lines.append(f"{name}: removed (not in new entry)")
            continue
        if not isinstance(old_values, dict) or not isinstance(new_values, dict):
            lines.append(f"{name}: {old_values!r} -> {new_values!r}")
            continue
        lines.append(f"{name}:")
        for key in sorted(set(old_values) | set(new_values)):
            if key not in old_values:
                lines.append(f"  {key:<22}: new ({new_values[key]!r})")
                continue
            if key not in new_values:
                lines.append(f"  {key:<22}: removed (was {old_values[key]!r})")
                continue
            old, current = old_values[key], new_values[key]
            if not isinstance(old, (int, float)) or not isinstance(
                current, (int, float)
            ):
                if old != current:
                    lines.append(f"  {key:<22}: {old!r} -> {current!r}")
                continue
            delta = (current - old) / old if old else 0.0
            direction = metric_direction(key)
            verdict = ""
            if direction is not None and old:
                worse = -delta if direction == "higher" else delta
                if worse > threshold:
                    verdict = f"  REGRESSION (>{100 * threshold:.0f}%)"
                    status = 1
                elif worse < -threshold:
                    verdict = "  improved"
            lines.append(
                f"  {key:<22}: {old:g} -> {current:g} "
                f"({delta:+.1%}){verdict}"
            )
    return lines, status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff two entries of the benchmark history; exit "
        "nonzero on a hot-path regression beyond the threshold."
    )
    parser.add_argument(
        "--file",
        default=Path(__file__).resolve().parent.parent / "BENCH_cosim.json",
        type=Path,
        help="benchmark history file (default: repo-root BENCH_cosim.json)",
    )
    parser.add_argument(
        "--base",
        type=int,
        default=-2,
        help="history index of the baseline entry (default: -2, "
        "the second-newest)",
    )
    parser.add_argument(
        "--new",
        dest="new_index",
        type=int,
        default=-1,
        help="history index of the candidate entry (default: -1, newest)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=f"relative regression gate (default: {DEFAULT_THRESHOLD})",
    )
    args = parser.parse_args(argv)
    try:
        entries = load_entries(args.file)
    except (OSError, ValueError) as error:
        print(f"cannot load {args.file}: {error}", file=sys.stderr)
        return 2
    if len(entries) < 2 and args.base != args.new_index:
        print(
            f"{args.file} holds {len(entries)} entr"
            f"{'y' if len(entries) == 1 else 'ies'}; need two to compare "
            "(run the benchmark suite twice)",
            file=sys.stderr,
        )
        return 2
    try:
        base, new = entries[args.base], entries[args.new_index]
    except IndexError:
        print(
            f"history has {len(entries)} entries; indexes {args.base} / "
            f"{args.new_index} are out of range",
            file=sys.stderr,
        )
        return 2
    lines, status = compare(base, new, args.threshold)
    print("\n".join(lines))
    if status:
        print(
            f"\nFAIL: hot-path regression beyond {100 * args.threshold:.0f}%",
            file=sys.stderr,
        )
    return status


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Output truncated by a closed pipe (e.g. `| head`): not an error.
        raise SystemExit(0)
