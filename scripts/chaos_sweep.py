#!/usr/bin/env python
"""Chaos-test the sweep fabric: kill workers mid-sweep, demand identity.

The fabric's claim is strong — SIGKILL any worker at any instruction
and the sweep still produces the exact result list a serial run would.
This script is the claim's executable proof, and what the CI
``fabric-chaos-smoke`` job runs:

1. build a real MPKI sweep grid (``--points``, default 16) over the
   paper's eight workloads;
2. run it serially under a plain supervisor — the ground truth;
3. run it again on the ledger fabric (``--backend shard`` by default)
   while a seeded chaos monkey SIGKILLs live workers (``--kills``,
   default 3) at pseudo-random driver cycles;
4. fail unless (a) every kill was delivered while the sweep was still
   running, (b) the fabric's result list is byte-identical to the
   serial one, and (c) the ledger holds exactly one ``done`` record
   per grid point — nothing lost, nothing duplicated.

``--quarantine-smoke`` runs the other half of the robustness story:
a poison point (kills every worker that touches it) must end up
``quarantined`` in the ledger — with the sweep degrading gracefully —
instead of eating respawned workers forever.

Exit codes: 0 success; 1 identity or ledger-accounting violation;
2 bad configuration; 3 the kill quota could not be delivered (the
sweep finished too fast — raise ``--points`` or ``--task slow``).

Usage::

    python scripts/chaos_sweep.py                       # 16 points, 3 kills
    python scripts/chaos_sweep.py --points 24 --shards 3 --kills 4 --seed 7
    python scripts/chaos_sweep.py --backend remote --kills 1
    python scripts/chaos_sweep.py --quarantine-smoke
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pickle
import signal
import sys
import tempfile
from pathlib import Path

# Runnable straight from a checkout: scripts/ sits next to src/.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.faults.spec import FaultSpec  # noqa: E402
from repro.harness.executors import tasks  # noqa: E402
from repro.harness.executors.base import (  # noqa: E402
    FABRIC_BACKENDS,
    FabricConfig,
)
from repro.harness.supervisor import (  # noqa: E402
    SupervisorContext,
    SupervisorPolicy,
    SweepJournal,
    supervise,
    supervised_map,
)
from repro.workloads.registry import WORKLOAD_NAMES  # noqa: E402

#: Task selector: the chaos default pads each point to ~100 ms so the
#: monkey's SIGKILL reliably lands while a point is *in flight*; the
#: ``cosim`` grid runs the full co-simulation pipeline (real, but warm
#: points finish in milliseconds — fine for identity, poor for chaos).
TASKS = {
    "slow": tasks.slow_mpki_point,
    "model": tasks.model_mpki_point,
    "cosim": tasks.cosim_mpki_point,
}


def build_grid(points: int) -> list[tuple[str, int, int, int]]:
    """A real sweep grid: workloads × core counts × LLC sizes."""
    grid = []
    cores = (1, 2, 4, 8)
    caches = (1 << 20, 1 << 21, 1 << 22, 1 << 23)
    i = 0
    while len(grid) < points:
        name = WORKLOAD_NAMES[i % len(WORKLOAD_NAMES)]
        grid.append(
            (name, cores[i % len(cores)], caches[(i // 3) % len(caches)], 64)
        )
        i += 1
    return grid


class ChaosMonkey:
    """Seeded SIGKILL schedule, fired from the fabric driver's observer.

    The monkey draws its cycle gaps and victim choices from the fault
    framework's scoped seed derivation (``FaultSpec.rng``), so a given
    ``--seed`` kills the same worker slots at the same driver cycles
    every run — a failing chaos run is reproducible, which is the
    whole point of seeding the chaos.
    """

    def __init__(self, seed: int, kills: int, min_gap: int = 2, max_gap: int = 8):
        self.rng = FaultSpec(seed=seed).rng("chaos-monkey")
        self.quota = kills
        self.delivered = []
        self._min_gap, self._max_gap = min_gap, max_gap
        self._next_kill = int(self.rng.integers(min_gap, max_gap + 1))

    def __call__(self, backend, cycle: int) -> None:
        if len(self.delivered) >= self.quota or cycle < self._next_kill:
            return
        pids = backend.worker_pids()
        if not pids:
            return  # between a death and its respawn; try next cycle
        victim = sorted(pids)[int(self.rng.integers(len(pids)))]
        os.kill(pids[victim], signal.SIGKILL)
        self.delivered.append(victim)
        print(f"  [monkey] cycle {cycle}: SIGKILLed {victim} (pid {pids[victim]})")
        self._next_kill = cycle + int(
            self.rng.integers(self._min_gap, self._max_gap + 1)
        )


def audit_ledger(ledger_path: Path, expected_keys: list[str]) -> list[str]:
    """Every expected key has exactly one ``done`` record; no extras."""
    done_counts: dict[str, int] = {}
    with open(ledger_path, "r", encoding="utf-8") as handle:
        for line in handle:
            try:
                row = json.loads(line)
            except ValueError:
                continue  # torn line from a SIGKILL: repaired, skipped
            if isinstance(row, dict) and row.get("type") == "done":
                done_counts[row["key"]] = done_counts.get(row["key"], 0) + 1
    problems = []
    for key in expected_keys:
        n = done_counts.pop(key, 0)
        if n != 1:
            problems.append(f"key {key[:12]}… has {n} done records (want 1)")
    for key, n in done_counts.items():
        problems.append(f"unexpected done record for key {key[:12]}… (x{n})")
    return problems


def run_chaos(args: argparse.Namespace) -> int:
    task = TASKS[args.task]
    grid = build_grid(args.points)
    keys = [SweepJournal.point_key(task, item) for item in grid]

    print(f"chaos sweep: {len(grid)} points, task={args.task}, "
          f"backend={args.backend}, shards={args.shards}, "
          f"kills={args.kills}, seed={args.seed}, lease_ttl={args.lease_ttl}")

    print("serial baseline ...")
    baseline = supervised_map(task, grid, context=SupervisorContext())

    monkey = ChaosMonkey(args.seed, args.kills)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        ledger_path = Path(args.ledger) if args.ledger else Path(tmp) / "ledger.jsonl"
        fabric = FabricConfig(
            backend=args.backend,
            shards=args.shards,
            lease_ttl=args.lease_ttl,
            ledger_path=str(ledger_path),
            observer=monkey,
            # Each kill can cost a full lease TTL before the steal; give
            # the fleet room for the monkey's whole quota and then some.
            max_respawns=max(16, 4 * args.kills),
        )
        print("chaos run ...")
        with supervise(SupervisorPolicy(), fabric=fabric) as context:
            chaotic = supervised_map(task, grid)
        print(f"  events: {context.describe()}")

        failures = []
        if len(monkey.delivered) < args.kills:
            print(
                f"FAIL: only {len(monkey.delivered)}/{args.kills} kills were "
                "delivered before the sweep drained — the chaos proved "
                "nothing; raise --points or use --task slow",
            )
            return 3
        if pickle.dumps(chaotic, protocol=4) != pickle.dumps(baseline, protocol=4):
            diffs = sum(1 for a, b in zip(baseline, chaotic) if a != b)
            failures.append(
                f"results differ from the serial baseline at {diffs} points"
            )
        failures.extend(audit_ledger(ledger_path, keys))

    if failures:
        for problem in failures:
            print(f"FAIL: {problem}")
        return 1
    steals = context.counts.get("fabric-steal", 0)
    respawns = context.counts.get("fabric-worker-respawn", 0)
    print(
        f"OK: {len(grid)} points byte-identical to the serial baseline "
        f"after {len(monkey.delivered)} SIGKILL(s), {steals} steal(s), "
        f"{respawns} respawn(s); ledger holds exactly one done record "
        "per point"
    )
    return 0


def run_quarantine_smoke(args: argparse.Namespace) -> int:
    """Poison-point smoke: the fabric must quarantine, not retry forever."""
    grid = [("poison", 0, 0, 0)]
    print(f"quarantine smoke: 1 poison point, backend={args.backend}, "
          f"shards={args.shards}")
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        ledger_path = Path(args.ledger) if args.ledger else Path(tmp) / "ledger.jsonl"
        fabric = FabricConfig(
            backend=args.backend,
            shards=args.shards,
            lease_ttl=min(args.lease_ttl, 0.5),
            quarantine_after=2,
            ledger_path=str(ledger_path),
        )
        policy = SupervisorPolicy(failure_value=float("nan"))
        with supervise(policy, fabric=fabric) as context:
            results = supervised_map(tasks.poison_point, grid)
        print(f"  events: {context.describe()}")

        quarantined = []
        with open(ledger_path, "r", encoding="utf-8") as handle:
            for line in handle:
                try:
                    row = json.loads(line)
                except ValueError:
                    continue
                if isinstance(row, dict) and row.get("type") == "quarantined":
                    quarantined.append(row)

    failures = []
    if not quarantined:
        failures.append("no quarantined record in the ledger")
    if context.counts.get("fabric-quarantined", 0) < 1:
        failures.append("driver never counted fabric-quarantined")
    if not (len(results) == 1 and isinstance(results[0], float)
            and math.isnan(results[0])):
        failures.append(f"expected [nan] degraded result, got {results!r}")
    if failures:
        for problem in failures:
            print(f"FAIL: {problem}")
        return 1
    dead = quarantined[0].get("dead_workers", [])
    print(
        f"OK: poison point quarantined after killing {len(dead)} worker(s) "
        f"({', '.join(dead)}); sweep degraded to nan instead of spinning"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="chaos_sweep",
        description="Prove the sweep fabric survives SIGKILLed workers.",
    )
    parser.add_argument("--points", type=int, default=16,
                        help="grid points in the sweep (default: 16)")
    parser.add_argument("--shards", type=int, default=2,
                        help="fabric worker count (default: 2)")
    parser.add_argument("--kills", type=int, default=3,
                        help="SIGKILLs the monkey must deliver (default: 3)")
    parser.add_argument("--seed", type=int, default=42,
                        help="chaos schedule seed (default: 42)")
    parser.add_argument("--lease-ttl", type=float, default=2.0,
                        help="lease TTL in seconds (default: 2; short, so "
                        "stolen points recover fast)")
    parser.add_argument("--backend", choices=list(FABRIC_BACKENDS),
                        default="shard",
                        help="ledger backend to chaos-test (default: shard)")
    parser.add_argument("--task", choices=sorted(TASKS), default="slow",
                        help="grid task: 'slow' (~100 ms model points — "
                        "reliably killable mid-flight), 'model' "
                        "(microseconds), 'cosim' (full pipeline)")
    parser.add_argument("--ledger", default=None, metavar="FILE",
                        help="keep the ledger at FILE for post-mortems "
                        "(default: a temp file, removed on exit)")
    parser.add_argument("--quarantine-smoke", action="store_true",
                        help="run the poison-point quarantine smoke "
                        "instead of the kill/identity chaos run")
    args = parser.parse_args(argv)
    if args.points < 1 or args.kills < 0 or args.shards < 1:
        print("bad configuration: points/shards must be >= 1, kills >= 0")
        return 2
    if args.quarantine_smoke:
        return run_quarantine_smoke(args)
    return run_chaos(args)


if __name__ == "__main__":
    raise SystemExit(main())
