#!/usr/bin/env python
"""Pressure-test the resource governor: full disks, tiny quotas, deadlines.

The governor's claim mirrors the fabric's: put the platform under
resource pressure — a trace-cache quota smaller than the working set,
injected ENOSPC/EIO at the write sites, a wall-clock deadline that
expires mid-sweep — and the run degrades *gracefully* while producing
results byte-identical to an unpressured run.  This script is that
claim's executable proof, and what the CI ``pressure-smoke`` job runs.

Default mode (quota pressure):

1. run a multi-workload co-simulation sweep with an uncapped trace
   cache — the ground truth, and the measure of the working set;
2. run the identical sweep against a fresh cache capped at roughly two
   entries' worth of bytes, with a seeded filesystem fault shim
   injecting ENOSPC and EIO into the cache's store path;
3. fail unless (a) the sweep completed, (b) the quota forced at least
   one LRU eviction, (c) at least one injected fault was delivered
   (and survived — evict-and-retry for ENOSPC, backoff for EIO), and
   (d) the results are byte-identical to the uncapped baseline.

``--deadline-smoke`` proves the time axis: a sweep with a deadline
that expires mid-run must drain like Ctrl-C — partial results, every
completed point journaled — and a ``--resume`` run must finish the
sweep byte-identically to an undisturbed serial baseline.

Exit codes: 0 success; 1 a governance guarantee was violated; 2 bad
configuration.

Usage::

    python scripts/pressure_sweep.py                  # quota + faults
    python scripts/pressure_sweep.py --workloads 8 --seed 3
    python scripts/pressure_sweep.py --deadline-smoke
"""

from __future__ import annotations

import argparse
import pickle
import sys
import tempfile
from pathlib import Path

# Runnable straight from a checkout: scripts/ sits next to src/.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cache.emulator import DragonheadConfig  # noqa: E402
from repro.errors import DeadlineExpired  # noqa: E402
from repro.governor import fsshim  # noqa: E402
from repro.governor import gc as governor_gc  # noqa: E402
from repro.governor.budget import ResourceBudget, govern  # noqa: E402
from repro.harness.executors import tasks  # noqa: E402
from repro.harness.replay import replay_sweep  # noqa: E402
from repro.harness.supervisor import (  # noqa: E402
    SupervisorContext,
    SupervisorPolicy,
    SweepJournal,
    supervise,
    supervised_map,
)
from repro.trace.cache import TraceCache  # noqa: E402
from repro.workloads.registry import WORKLOAD_NAMES, get_workload  # noqa: E402


def run_grid(
    workloads: list[str], cache: TraceCache | None, accesses: int
) -> list:
    """The sweep both runs share: one capture + two replays per workload."""
    configs = [
        DragonheadConfig(cache_size=1 << 21, line_size=64),
        DragonheadConfig(cache_size=1 << 23, line_size=64),
    ]
    results = []
    for name in workloads:
        guest = get_workload(name).synthetic_guest(accesses_per_thread=accesses)
        results.extend(
            replay_sweep(
                guest,
                2,
                configs,
                trace_cache=cache,
                key_extra={"source": "synthetic", "accesses": accesses},
            )
        )
    return results


def project(results: list) -> bytes:
    """The byte-identity projection: every number the readout prints."""
    return pickle.dumps(
        [
            (
                r.instructions,
                r.accesses,
                r.llc_stats.misses,
                r.mpki,
                r.llc_stats.miss_ratio,
                r.filtered,
            )
            for r in results
        ],
        protocol=4,
    )


def run_pressure(args: argparse.Namespace) -> int:
    names = [WORKLOAD_NAMES[i % len(WORKLOAD_NAMES)] for i in range(args.workloads)]
    print(
        f"pressure sweep: {len(names)} workloads x 2 configs, "
        f"seed={args.seed}, enospc={args.enospc}, eio={args.eio}"
    )
    with tempfile.TemporaryDirectory(prefix="repro-pressure-") as tmp:
        # 1. Uncapped baseline: ground truth plus working-set measure.
        print("uncapped baseline ...")
        baseline_cache = TraceCache(Path(tmp) / "uncapped")
        baseline = project(run_grid(names, baseline_cache, args.accesses))
        entries = governor_gc.scan_entries(baseline_cache)
        if len(entries) < 3:
            print("bad configuration: need >= 3 cache entries to pressure")
            return 2
        total = sum(e.bytes for e in entries)
        quota = 2 * max(e.bytes for e in entries)
        print(
            f"  working set: {len(entries)} entries, {total} bytes; "
            f"quota for the pressure run: {quota} bytes"
        )
        if quota >= total:
            print("bad configuration: quota does not undercut the working set")
            return 2

        # 2. The same sweep under a tiny quota with injected faults.
        print("pressure run (tiny quota + injected ENOSPC/EIO) ...")
        fsshim.install(
            fsshim.FsFaultPlan(
                seed=args.seed,
                enospc=args.enospc,
                eio=args.eio,
                limit=args.fault_limit,
                sites=frozenset({"trace-cache.store"}),
            )
        )
        try:
            capped_cache = TraceCache(Path(tmp) / "capped", disk_quota=quota)
            with govern(ResourceBudget(disk_quota=quota)) as governor:
                pressured = project(run_grid(names, capped_cache, args.accesses))
            delivered = fsshim.delivered()
        finally:
            fsshim.uninstall()

        stats = capped_cache.stats
        print(f"  trace cache: {stats.describe()}")
        print(
            f"  faults delivered: {len(delivered)} "
            f"({', '.join(kind for _, kind in delivered) or 'none'})"
        )
        if governor is not None and governor.counts:
            print(f"  governor events: {governor.describe()}")

        failures = []
        if stats.evictions < 1:
            failures.append("the quota never forced an eviction")
        if len(delivered) < 1:
            failures.append(
                "no filesystem fault was delivered — the shim proved nothing; "
                "raise --enospc/--eio or change --seed"
            )
        if capped_cache.off:
            failures.append(
                "the cache latched off — the quota left nothing to evict; "
                "the degradation worked but the eviction path went unproven"
            )
        _, usage = governor_gc.cache_usage(capped_cache)
        if usage > quota:
            failures.append(f"final usage {usage} bytes still exceeds quota {quota}")
        if pressured != baseline:
            failures.append("results differ from the uncapped baseline")

    if failures:
        for problem in failures:
            print(f"FAIL: {problem}")
        return 1
    print(
        f"OK: sweep under a {quota}-byte quota completed with "
        f"{stats.evictions} eviction(s), survived {len(delivered)} injected "
        f"fault(s) ({stats.enospc} ENOSPC), and stayed byte-identical to "
        "the uncapped baseline"
    )
    return 0


def run_deadline_smoke(args: argparse.Namespace) -> int:
    """Deadline mid-sweep: drain + journal, then resume to identity."""
    grid = [
        (WORKLOAD_NAMES[i % len(WORKLOAD_NAMES)], 2, 1 << (20 + i % 3), 64)
        for i in range(args.points)
    ]
    task = tasks.slow_mpki_point
    print(f"deadline smoke: {args.points} points of ~100 ms each, "
          f"deadline={args.deadline}s")

    print("serial baseline ...")
    baseline = supervised_map(task, grid, context=SupervisorContext())

    with tempfile.TemporaryDirectory(prefix="repro-deadline-") as tmp:
        journal_path = Path(tmp) / "journal.jsonl"
        expired: DeadlineExpired | None = None
        with govern(ResourceBudget(deadline_s=args.deadline)):
            journal = SweepJournal(journal_path)
            try:
                with supervise(SupervisorPolicy(), journal=journal):
                    supervised_map(task, grid)
            except DeadlineExpired as error:
                expired = error
            finally:
                journal.close()

        failures = []
        if expired is None:
            failures.append(
                "the deadline never expired — the sweep finished first; "
                "raise --points or lower --deadline"
            )
        elif not 0 < expired.completed < expired.total:
            failures.append(
                f"expiry at {expired.completed}/{expired.total} points proves "
                "nothing — need a genuine mid-sweep drain"
            )
        else:
            print(f"  drained at {expired.completed}/{expired.total} points")
            print("resume run ...")
            journal = SweepJournal(journal_path, resume=True)
            try:
                with supervise(SupervisorPolicy(), journal=journal) as context:
                    resumed = supervised_map(task, grid)
            finally:
                journal.close()
            skips = context.counts.get("journal-skip", 0)
            if skips != expired.completed:
                failures.append(
                    f"resume skipped {skips} points but the drain had "
                    f"journaled {expired.completed}"
                )
            if pickle.dumps(resumed, protocol=4) != pickle.dumps(
                baseline, protocol=4
            ):
                failures.append("resumed results differ from the serial baseline")

    if failures:
        for problem in failures:
            print(f"FAIL: {problem}")
        return 1
    print(
        f"OK: deadline drained the sweep at {expired.completed}/"
        f"{expired.total} points and --resume finished it byte-identical "
        "to the serial baseline"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pressure_sweep",
        description="Prove the resource governor degrades gracefully "
        "under disk and time pressure.",
    )
    parser.add_argument("--workloads", type=int, default=6,
                        help="workloads in the quota sweep (default: 6)")
    parser.add_argument("--accesses", type=int, default=4096,
                        help="synthetic accesses per thread (default: 4096)")
    parser.add_argument("--seed", type=int, default=42,
                        help="fault-shim decision seed (default: 42)")
    parser.add_argument("--enospc", type=float, default=0.25,
                        help="per-store ENOSPC probability (default: 0.25)")
    parser.add_argument("--eio", type=float, default=0.25,
                        help="per-store EIO probability (default: 0.25)")
    parser.add_argument("--fault-limit", type=int, default=4,
                        help="total injected faults cap (default: 4)")
    parser.add_argument("--deadline-smoke", action="store_true",
                        help="run the deadline-drain/resume smoke instead "
                        "of the quota pressure run")
    parser.add_argument("--points", type=int, default=16,
                        help="deadline smoke: grid points (default: 16)")
    parser.add_argument("--deadline", type=float, default=0.6,
                        help="deadline smoke: run budget in seconds "
                        "(default: 0.6 — expires ~6 points into 16)")
    args = parser.parse_args(argv)
    if args.workloads < 3 or args.points < 2:
        print("bad configuration: need --workloads >= 3 and --points >= 2")
        return 2
    if args.deadline_smoke:
        return run_deadline_smoke(args)
    return run_pressure(args)


if __name__ == "__main__":
    raise SystemExit(main())
