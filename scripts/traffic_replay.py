#!/usr/bin/env python
"""Open-loop traffic replay against a ``repro-serve`` daemon.

Drives the serving layer the way a production front end would: a CSV
schedule of requests — ``request_id, arrival_offset, mode, priority,
body_json`` — is replayed *open loop* (each request is sent at its
arrival offset regardless of whether earlier ones finished, so a slow
server accumulates queueing latency instead of silently throttling the
workload), then every job is awaited and the server's own records are
collected into:

* queueing-latency percentiles (p50/p90/p99) per mode — the number a
  latency SLO is written against;
* batching efficiency — completed jobs per replay pass (the coalescing
  win the batch planner exists for);
* priority inversions — how often a pass started while a strictly
  more-urgent job waited (zero by construction; asserted, not assumed);
* dedup counts — jobs answered from the content-keyed result store.

``--generate N --seed S`` synthesizes a mixed schedule first (seeded,
so CI replays the identical workload every run): requests spread over
a few coalesce groups — same capture, different Dragonhead geometry —
with interactive and batch modes and spread priorities.

``--compare-no-batching`` runs the same schedule twice — once against
a coalescing server, once against ``--no-batching`` — with the trace
cache disabled so every pass pays its capture, and reports the
throughput ratio (the ISSUE's ≥2× acceptance bar rides on capture
dominating a pass; a warm cache would hide exactly the cost batching
saves).

Assertions (``--assert-p99-ms``, ``--assert-min-coalesce``,
``--assert-zero-inversions``, ``--assert-speedup``) turn measurements
into exit codes for CI.  Results append to ``BENCH_serve.json`` as a
machine-stamped history entry (same schema as the other BENCH files).

Examples::

    python scripts/traffic_replay.py --generate 32 --seed 7 --csv /tmp/t.csv
    python scripts/traffic_replay.py --csv /tmp/t.csv --spawn
    python scripts/traffic_replay.py --csv /tmp/t.csv --spawn \\
        --compare-no-batching --assert-speedup 2.0 --bench BENCH_serve.json
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import platform
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import ServeError  # noqa: E402
from repro.exit_codes import EXIT_INTERNAL, EXIT_OK  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402

BENCH_HISTORY_FORMAT = 2

#: The generator's coalesce groups: one capture each (workload, cores,
#: quantum, synthetic stream), fanned out over per-request geometry.
_GROUPS = (
    {"workload": "FIMI", "cores": 2, "accesses": 65536},
    {"workload": "FIMI", "cores": 4, "accesses": 65536},
    {"workload": "SNP", "cores": 2, "accesses": 65536},
    {"workload": "SVM-RFE", "cores": 2, "accesses": 65536},
)

_CACHES_MB = (1, 2, 4, 8)


def generate_schedule(count: int, seed: int, spread_s: float) -> list[dict]:
    """A seeded mixed schedule: ``count`` requests over ``spread_s``.

    Each request sweeps a two-size subset of its group's standard
    cache ladder, so group-mates overlap in geometry without being
    spec-identical: the batch planner's union replay amortizes both
    the shared capture *and* the shared configurations, which is the
    effect the ``--compare-no-batching`` A/B exists to expose.
    """
    rng = random.Random(seed)
    rows = []
    for index in range(count):
        group = _GROUPS[rng.randrange(len(_GROUPS))]
        spec = {
            "workload": group["workload"],
            "cores": group["cores"],
            "quantum": 4096,
            "source": "synthetic",
            "accesses": group["accesses"],
            "cache": [
                mb * 1024 * 1024 for mb in sorted(rng.sample(_CACHES_MB, 2))
            ],
        }
        rows.append(
            {
                "request_id": f"req-{index:04d}",
                "arrival_offset": round(rng.uniform(0.0, spread_s), 4),
                "mode": "interactive" if rng.random() < 0.5 else "batch",
                "priority": rng.randrange(0, 3),
                "body_json": json.dumps(spec, sort_keys=True),
            }
        )
    rows.sort(key=lambda row: row["arrival_offset"])
    return rows


FIELDS = ("request_id", "arrival_offset", "mode", "priority", "body_json")


def write_schedule(rows: list[dict], path: str) -> None:
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=FIELDS)
        writer.writeheader()
        writer.writerows(rows)


def read_schedule(path: str) -> list[dict]:
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        missing = set(FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise SystemExit(
                f"schedule {path} lacks column(s): {', '.join(sorted(missing))}"
            )
        rows = []
        for row in reader:
            rows.append(
                {
                    "request_id": row["request_id"],
                    "arrival_offset": float(row["arrival_offset"]),
                    "mode": row["mode"],
                    "priority": int(row["priority"]),
                    "body_json": row["body_json"],
                }
            )
    rows.sort(key=lambda row: row["arrival_offset"])
    return rows


# -- daemon management ----------------------------------------------------


class SpawnedDaemon:
    """A repro-serve child process discovered through its ready file."""

    def __init__(self, extra_args: list[str]) -> None:
        self._dir = tempfile.mkdtemp(prefix="traffic-serve-")
        ready = os.path.join(self._dir, "ready")
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve",
                "--port",
                "0",
                "--ready-file",
                ready,
                "--telemetry",
                *extra_args,
            ],
            env={**os.environ, "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        deadline = time.monotonic() + 30.0
        while not os.path.exists(ready):
            if self.process.poll() is not None:
                raise SystemExit(
                    "daemon exited before becoming ready:\n"
                    + (self.process.stdout.read() if self.process.stdout else "")
                )
            if time.monotonic() > deadline:
                self.process.kill()
                raise SystemExit("daemon never wrote its ready file")
            time.sleep(0.05)
        host, port = open(ready, encoding="utf-8").read().split()
        self.host, self.port = host, int(port)

    def stop(self) -> str:
        """SIGTERM → clean drain; returns the daemon's output."""
        self.process.send_signal(signal.SIGTERM)
        try:
            output, _ = self.process.communicate(timeout=120)
        except subprocess.TimeoutExpired:
            self.process.kill()
            output, _ = self.process.communicate()
            raise SystemExit("daemon did not drain on SIGTERM")
        if self.process.returncode != 0:
            raise SystemExit(
                f"daemon exited {self.process.returncode} on SIGTERM "
                f"(expected clean drain):\n{output}"
            )
        return output


# -- replay ---------------------------------------------------------------


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile (no numpy dependency in the hot loop)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


def replay(client: ServeClient, rows: list[dict], timeout: float) -> dict:
    """Send the schedule open loop; await and collect every job."""
    results: dict[str, dict] = {}
    errors: list[str] = []
    lock = threading.Lock()

    def _send(row: dict) -> None:
        try:
            response = client.submit(
                json.loads(row["body_json"]),
                mode=row["mode"],
                priority=row["priority"],
            )
            with lock:
                results[row["request_id"]] = response
        except ServeError as error:
            with lock:
                errors.append(f"{row['request_id']}: [{error.status}] {error}")

    start = time.monotonic()
    threads = []
    for row in rows:
        delay = row["arrival_offset"] - (time.monotonic() - start)
        if delay > 0:
            time.sleep(delay)
        # One thread per request: submission never waits on completion
        # (open loop) nor on another submission's round trip.
        thread = threading.Thread(target=_send, args=(row,), daemon=True)
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join(timeout=timeout)
    jobs = {}
    for request_id, response in sorted(results.items()):
        jobs[request_id] = client.wait(response["job_id"], timeout=timeout)
    wall_s = time.monotonic() - start
    return {"jobs": jobs, "errors": errors, "wall_s": wall_s}


def summarize(run: dict, stats: dict) -> dict:
    """The measurement block: latency percentiles + pipeline counters."""
    jobs = run["jobs"]
    by_mode: dict[str, list[float]] = {"interactive": [], "batch": []}
    digests = {}
    failed = []
    for request_id, job in jobs.items():
        if job["state"] != "done":
            failed.append(f"{request_id}: {job.get('error', job['state'])}")
            continue
        digests[request_id] = job["digest"]
        if job["outcome"] == "completed" and job["queue_ms"] is not None:
            by_mode.setdefault(job["mode"], []).append(job["queue_ms"])
    latencies = {
        mode: {
            "count": len(values),
            "p50_ms": round(percentile(values, 0.50), 3),
            "p90_ms": round(percentile(values, 0.90), 3),
            "p99_ms": round(percentile(values, 0.99), 3),
        }
        for mode, values in by_mode.items()
    }
    passes = stats.get("replay_passes", 0)
    completed = stats.get("completed", 0)
    return {
        "requests": len(jobs),
        "failed": failed,
        "errors": run["errors"],
        "wall_s": round(run["wall_s"], 3),
        "throughput_rps": round(len(jobs) / run["wall_s"], 3) if run["wall_s"] else 0.0,
        "queueing_latency": latencies,
        "replay_passes": passes,
        "completed": completed,
        "deduplicated": stats.get("deduplicated", 0),
        "jobs_per_pass": round(completed / passes, 3) if passes else 0.0,
        "max_coalesced": stats.get("coalesced_riders", 0),
        "priority_inversions": stats.get("priority_inversions", 0),
        "digests": digests,
    }


def run_once(rows: list[dict], serve_args: list[str], timeout: float) -> dict:
    """Spawn a daemon, replay the schedule, drain it; measurements."""
    daemon = SpawnedDaemon(serve_args)
    client = ServeClient(daemon.host, daemon.port)
    client.wait_ready()
    try:
        run = replay(client, rows, timeout)
        stats = client.stats()
    finally:
        output = daemon.stop()
    summary = summarize(run, stats)
    summary["drain_output"] = output.strip().splitlines()[-1] if output.strip() else ""
    return summary


# -- BENCH history --------------------------------------------------------


def _machine_stamp() -> dict:
    return {
        "hostname": platform.node(),
        "machine": platform.machine(),
        "system": f"{platform.system()} {platform.release()}",
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def append_bench(path: str, results: dict) -> None:
    """Append one machine-stamped entry to the BENCH history file."""
    entries = []
    target = Path(path)
    if target.exists():
        try:
            existing = json.loads(target.read_text(encoding="utf-8"))
            if isinstance(existing, dict) and isinstance(existing.get("entries"), list):
                entries = existing["entries"]
        except ValueError:
            entries = []
    entries.append({"machine": _machine_stamp(), "results": results})
    staged = target.with_name(target.name + ".tmp")
    staged.write_text(
        json.dumps({"format": BENCH_HISTORY_FORMAT, "entries": entries}, indent=2)
        + "\n",
        encoding="utf-8",
    )
    staged.replace(target)


# -- entry ----------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="traffic_replay",
        description="Replay a request schedule against repro-serve, open loop.",
    )
    parser.add_argument("--csv", required=True, metavar="FILE", help="schedule file")
    parser.add_argument(
        "--generate",
        type=int,
        default=None,
        metavar="N",
        help="synthesize an N-request schedule into --csv first",
    )
    parser.add_argument("--seed", type=int, default=7, help="generator seed")
    parser.add_argument(
        "--spread",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="arrival window for generated schedules (default: 2s)",
    )
    parser.add_argument(
        "--spawn",
        action="store_true",
        help="spawn a private daemon (--port 0) instead of targeting one",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None, help="existing daemon")
    parser.add_argument(
        "--serve-arg",
        action="append",
        default=[],
        metavar="ARG",
        help="extra argument for spawned daemons (repeatable)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="per-job completion timeout (default: 300s)",
    )
    parser.add_argument(
        "--compare-no-batching",
        action="store_true",
        help="also replay against a --no-batching daemon (trace cache "
        "off on both sides) and report the coalescing speedup",
    )
    parser.add_argument(
        "--assert-p99-ms",
        type=float,
        default=None,
        metavar="MS",
        help="fail unless interactive p99 queueing latency is under MS",
    )
    parser.add_argument(
        "--assert-min-coalesce",
        type=float,
        default=None,
        metavar="JOBS",
        help="fail unless completed jobs per replay pass >= JOBS",
    )
    parser.add_argument(
        "--assert-zero-inversions",
        action="store_true",
        help="fail on any recorded priority inversion",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="with --compare-no-batching: fail unless batched throughput "
        "is X times the unbatched baseline",
    )
    parser.add_argument(
        "--bench",
        metavar="FILE",
        default=None,
        help="append the measurements to FILE as a BENCH history entry",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.generate is not None:
        rows = generate_schedule(args.generate, args.seed, args.spread)
        write_schedule(rows, args.csv)
        print(f"generated {len(rows)} requests into {args.csv}")
    rows = read_schedule(args.csv)
    if not args.spawn and args.port is None:
        build_parser().error("target a daemon with --port or pass --spawn")

    serve_args = list(args.serve_arg)
    if args.compare_no_batching:
        # Both sides of the comparison run cache-cold: coalescing's win
        # is the shared capture, and a warm cache on either side would
        # erase exactly the cost under measurement.
        serve_args = ["--trace-cache", "off", *serve_args]
    if args.spawn:
        print(f"replaying {len(rows)} requests against a spawned daemon ...")
        batched = run_once(rows, serve_args, args.timeout)
    else:
        client = ServeClient(args.host, args.port)
        client.wait_ready()
        run = replay(client, rows, args.timeout)
        batched = summarize(run, client.stats())
        batched["drain_output"] = ""

    results: dict = {"schedule": {"requests": len(rows), "seed": args.seed}, "batched": batched}
    print(json.dumps({k: v for k, v in batched.items() if k != "digests"}, indent=2))

    failures: list[str] = []
    if args.compare_no_batching:
        if not args.spawn:
            build_parser().error("--compare-no-batching requires --spawn")
        print(f"replaying {len(rows)} requests against a --no-batching daemon ...")
        unbatched = run_once(rows, ["--no-batching", *serve_args], args.timeout)
        batched_cold = batched
        speedup = (
            batched_cold["throughput_rps"] / unbatched["throughput_rps"]
            if unbatched["throughput_rps"]
            else float("inf")
        )
        results["unbatched"] = unbatched
        results["batched_cold"] = batched_cold
        results["speedup"] = round(speedup, 3)
        print(
            f"coalescing speedup: {speedup:.2f}x "
            f"({batched_cold['throughput_rps']} vs "
            f"{unbatched['throughput_rps']} req/s, "
            f"{batched_cold['jobs_per_pass']:.2f} vs "
            f"{unbatched['jobs_per_pass']:.2f} jobs/pass)"
        )
        mismatched = [
            request_id
            for request_id in batched_cold["digests"]
            if unbatched["digests"].get(request_id)
            and unbatched["digests"][request_id] != batched_cold["digests"][request_id]
        ]
        if mismatched:
            failures.append(
                f"batched and unbatched digests differ for: {', '.join(mismatched)}"
            )
        if args.assert_speedup is not None and speedup < args.assert_speedup:
            failures.append(
                f"speedup {speedup:.2f}x under the {args.assert_speedup}x bar"
            )

    interactive = batched["queueing_latency"].get("interactive", {})
    if (
        args.assert_p99_ms is not None
        and interactive.get("count")
        and interactive["p99_ms"] > args.assert_p99_ms
    ):
        failures.append(
            f"interactive p99 {interactive['p99_ms']}ms over the "
            f"{args.assert_p99_ms}ms bound"
        )
    if (
        args.assert_min_coalesce is not None
        and batched["jobs_per_pass"] < args.assert_min_coalesce
    ):
        failures.append(
            f"{batched['jobs_per_pass']} jobs/pass under the "
            f"{args.assert_min_coalesce} coalescing bar"
        )
    if args.assert_zero_inversions and batched["priority_inversions"]:
        failures.append(
            f"{batched['priority_inversions']} priority inversion(s) recorded"
        )
    if batched["failed"] or batched["errors"]:
        failures.append(
            f"{len(batched['failed'])} failed job(s), "
            f"{len(batched['errors'])} rejected request(s)"
        )

    if args.bench:
        for block in results.values():
            if isinstance(block, dict):
                block.pop("digests", None)
        append_bench(args.bench, results)
        print(f"appended history entry to {args.bench}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return EXIT_INTERNAL
    print("traffic replay passed")
    return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
