"""Setup shim for environments without the `wheel` package.

All project metadata lives in pyproject.toml; this file only enables
legacy editable installs (`pip install -e .`) on hosts whose pip cannot
build PEP 517 editable wheels offline.
"""

from setuptools import setup

setup()
