"""repro: hardware-software co-simulation of data-mining memory behaviour.

A from-scratch reproduction of *Understanding the Memory Performance of
Data-Mining Workloads on Small, Medium, and Large-Scale CMPs Using
Hardware-Software Co-simulation* (ISPASS 2007): the Dragonhead cache
emulator, the SoftSDV/DEX full-system-simulation facade, the FSB
message protocol joining them, eight instrumented data-mining workloads
with calibrated paper-scale memory models, and a harness regenerating
every table and figure of the paper's evaluation.

Quickstart::

    from repro import CoSimPlatform, DragonheadConfig, MB
    from repro.workloads import get_workload

    fimi = get_workload("FIMI")
    platform = CoSimPlatform(DragonheadConfig(cache_size=4 * MB))
    result = platform.run(fimi.guest_workload(scale=0.02), cores=4)
    print(f"LLC MPKI = {result.mpki:.2f}")
"""

from repro.units import KB, MB, GB, PAPER_CACHE_SWEEP, PAPER_LINE_SWEEP, format_size
from repro.errors import (
    CalibrationError,
    ConfigurationError,
    FaultInjectionError,
    ProtocolError,
    RecoverableProtocolError,
    ReproError,
    SweepInterrupted,
    SweepPointError,
    TelemetryError,
    TraceError,
)
from repro.faults import DegradationRecord, FaultInjector, FaultSpec
from repro.telemetry import MetricRegistry, SpanTracker, WindowStream
from repro.cache import (
    CacheConfig,
    CacheHierarchy,
    CacheStats,
    DragonheadConfig,
    DragonheadEmulator,
    FullyAssociativeLRU,
    HierarchyConfig,
    PrefetchingCache,
    SetAssociativeCache,
    StridePrefetcher,
)
from repro.core import (
    CMPConfig,
    CoSimPlatform,
    CoSimResult,
    DEXScheduler,
    FrontSideBus,
    GuestWorkload,
    LCMP,
    MCMP,
    Message,
    MessageCodec,
    MessageKind,
    SCMP,
    SoftSDV,
    VirtualCore,
)
from repro.reuse import ReuseProfile, mpki_at, mpki_curve, stack_distances

__version__ = "1.0.0"

__all__ = [
    "KB",
    "MB",
    "GB",
    "PAPER_CACHE_SWEEP",
    "PAPER_LINE_SWEEP",
    "format_size",
    "ReproError",
    "ConfigurationError",
    "ProtocolError",
    "RecoverableProtocolError",
    "FaultInjectionError",
    "SweepPointError",
    "SweepInterrupted",
    "TelemetryError",
    "TraceError",
    "CalibrationError",
    "MetricRegistry",
    "SpanTracker",
    "WindowStream",
    "FaultSpec",
    "FaultInjector",
    "DegradationRecord",
    "CacheConfig",
    "SetAssociativeCache",
    "FullyAssociativeLRU",
    "CacheHierarchy",
    "HierarchyConfig",
    "CacheStats",
    "StridePrefetcher",
    "PrefetchingCache",
    "DragonheadConfig",
    "DragonheadEmulator",
    "Message",
    "MessageKind",
    "MessageCodec",
    "FrontSideBus",
    "DEXScheduler",
    "VirtualCore",
    "SoftSDV",
    "GuestWorkload",
    "CoSimPlatform",
    "CoSimResult",
    "CMPConfig",
    "SCMP",
    "MCMP",
    "LCMP",
    "ReuseProfile",
    "stack_distances",
    "mpki_at",
    "mpki_curve",
    "__version__",
]
