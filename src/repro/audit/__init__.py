"""Runtime invariant auditing for co-simulation results.

The physical platform leaned on built-in consistency defenses: the CB
board re-reads every CC bank's counters each 500 µs host interval, and
the FSB instructions-retired/cycles-completed messages exist purely to
keep SoftSDV's simulated time domain reconciled with Dragonhead's
emulated one (paper §3.1, §3.3).  This package is the software analog —
an end-of-run audit that proves a completed :class:`~repro.core.cosim.
CoSimResult` is *internally consistent* before it flows into a table or
figure:

* conservation identities on every counter block (per CC bank, per
  core, and the CB aggregate),
* cross-domain reconciliation (scheduler-side raw retired/cycle counts
  versus the AF's message-decoded counters; window samples integrating
  to the final counters),
* directory/occupancy consistency (resident lines == misses − evictions,
  bounded by capacity, tags mapping back to their sets), and
* a sampled differential oracle: a deterministic 1-in-K slice of
  (bank, set) pairs replayed through the generic
  :class:`~repro.cache.replacement.LRUPolicy` and compared, tag for tag
  and in recency order, against the vectorized fastlru kernel.

Violations raise :class:`~repro.errors.AuditError` in strict mode and
become degradation records (source ``audit``) in lenient mode.
"""

from __future__ import annotations

import os

from repro.audit.invariants import run_audit
from repro.audit.oracle import OracleTap
from repro.audit.report import AuditCheck, AuditReport

#: Audit modes, in increasing oracle coverage.
AUDIT_OFF = "off"
AUDIT_SAMPLE = "sample"
AUDIT_FULL = "full"
AUDIT_MODES = (AUDIT_OFF, AUDIT_SAMPLE, AUDIT_FULL)

#: Environment variable carrying the ambient audit mode into exhibit
#: code and sweep worker processes (the CLIs export it for ``--audit``).
AUDIT_ENV = "REPRO_AUDIT"


def resolve_audit_mode(explicit: str | None = None) -> str:
    """The effective audit mode: explicit argument, else ``$REPRO_AUDIT``.

    Unknown values raise ``ValueError`` — a typo'd mode silently meaning
    "off" would defeat the entire point of auditing.
    """
    mode = explicit if explicit is not None else os.environ.get(AUDIT_ENV)
    if mode is None or mode == "":
        return AUDIT_OFF
    mode = mode.lower()
    if mode not in AUDIT_MODES:
        raise ValueError(
            f"unknown audit mode {mode!r}; choose from {', '.join(AUDIT_MODES)}"
        )
    return mode


__all__ = [
    "AUDIT_ENV",
    "AUDIT_FULL",
    "AUDIT_MODES",
    "AUDIT_OFF",
    "AUDIT_SAMPLE",
    "AuditCheck",
    "AuditReport",
    "OracleTap",
    "resolve_audit_mode",
    "run_audit",
]
