"""The invariant catalogue: what a consistent run must satisfy.

Each check mirrors a defense the physical platform had (see the
catalogue table in ``docs/architecture.md`` for the full mapping):
conservation and re-aggregation are the CB board's periodic counter
collection, the instruction/cycle sync checks are the FSB
retired/cycle message reconciliation between SoftSDV's and Dragonhead's
time domains, window integration is the host's 500 µs poll series
summing to the final counters, occupancy is a directory walk of the CC
bank SRAMs, and the LRU oracle is a second, independent implementation
of the replacement logic shadow-checking the first.
"""

from __future__ import annotations

import math

import numpy as np

from repro.audit.report import AuditCheck, AuditReport, make_check
from repro.cache.stats import CacheStats
from repro.telemetry import runtime as telemetry

#: Fields compared by the CB re-aggregation check.
_STAT_FIELDS = (
    "accesses",
    "hits",
    "misses",
    "reads",
    "writes",
    "read_misses",
    "write_misses",
    "evictions",
    "prefetches",
    "prefetch_hits",
    "per_core_accesses",
    "per_core_misses",
)


def _diff_stats(reported: CacheStats, recomputed: CacheStats) -> list[str]:
    """Field-by-field difference between two counter blocks."""
    problems = []
    for name in _STAT_FIELDS:
        a, b = getattr(reported, name), getattr(recomputed, name)
        if a != b:
            problems.append(f"{name}: reported {a} != recomputed {b}")
    return problems


def _check_conservation(emulator, performance) -> list[AuditCheck]:
    problems: list[str] = []
    for index, bank in enumerate(emulator.banks):
        problems.extend(bank.stats.conservation_violations(label=f"CC{index}"))
    checks = [make_check("bank-conservation", problems)]
    checks.append(
        make_check(
            "aggregate-conservation",
            performance.stats.conservation_violations("aggregate"),
        )
    )
    return checks


def _check_reaggregation(emulator, performance) -> AuditCheck:
    """Re-collect the bank counters and compare with what was reported.

    Catches a reported :class:`CacheStats` that drifted from the live
    bank counters — a stale snapshot, an aliasing bug, or deliberate
    perturbation between collection and reporting.
    """
    return make_check(
        "cb-reaggregation", _diff_stats(performance.stats, emulator.stats)
    )


def _check_time_domains(
    performance, expected_instructions, expected_cycles
) -> list[AuditCheck]:
    """Scheduler-side raw counts versus the AF's message-decoded ones."""
    checks = []
    problems = []
    if expected_instructions is not None:
        if performance.instructions_retired != expected_instructions:
            problems.append(
                f"AF decoded {performance.instructions_retired} retired "
                f"instructions, scheduler issued {expected_instructions}"
            )
    if expected_cycles is not None:
        if performance.cycles_completed != expected_cycles:
            problems.append(
                f"AF decoded {performance.cycles_completed} cycles, "
                f"scheduler issued {expected_cycles}"
            )
    checks.append(make_check("instruction-sync", problems))
    if expected_instructions:
        recomputed = 1000.0 * performance.stats.misses / expected_instructions
        problems = []
        if not math.isclose(performance.mpki, recomputed, rel_tol=1e-12, abs_tol=1e-12):
            problems.append(
                f"reported MPKI {performance.mpki!r} != {recomputed!r} "
                f"recomputed from raw retired-instruction counts"
            )
        checks.append(make_check("mpki-recompute", problems))
    return checks


def _check_window_integration(performance) -> AuditCheck:
    """The 500 µs window series must integrate to the final counters.

    Exact equality, not tolerance: the sampler's interpolation splits
    are integer divisions whose remainders are assigned to the earliest
    windows, so even repaired series preserve totals exactly.
    """
    problems = []
    instructions = sum(sample.instructions for sample in performance.samples)
    accesses = sum(sample.accesses for sample in performance.samples)
    misses = sum(sample.misses for sample in performance.samples)
    if instructions != performance.instructions_retired:
        problems.append(
            f"window instructions sum {instructions} != final "
            f"{performance.instructions_retired}"
        )
    if accesses != performance.stats.accesses:
        problems.append(
            f"window access sum {accesses} != final {performance.stats.accesses}"
        )
    if misses != performance.stats.misses:
        problems.append(
            f"window miss sum {misses} != final {performance.stats.misses}"
        )
    return make_check("window-integration", problems)


def _check_occupancy(emulator) -> AuditCheck:
    """Directory walk: residency must reconcile with the miss counters.

    The emulator banks serve demand traffic only (no prefetch installs,
    no invalidations), so every resident line entered on a miss and
    left on an eviction: ``resident == misses - evictions``, bounded by
    capacity, with every set within associativity and every tag mapping
    back to the set that holds it.
    """
    problems = []
    for index, bank in enumerate(emulator.banks):
        stats = bank.stats
        resident = bank.resident_count()
        if resident is None:
            # FIFO/Random/tree-PLRU keep no inspectable directory;
            # occupancy is unobservable there, not violated.
            continue
        expected = stats.misses - stats.evictions
        if resident != expected:
            problems.append(
                f"CC{index}: {resident} resident lines != misses-evictions "
                f"= {expected}"
            )
        if resident > bank.config.num_lines:
            problems.append(
                f"CC{index}: {resident} resident lines exceed capacity "
                f"{bank.config.num_lines}"
            )
        directory = bank.state_dict()["policy"]
        if directory.get("kind") != "fastlru":  # type: ignore[union-attr]
            continue
        lengths = np.asarray(directory["lengths"])  # type: ignore[index]
        tags = np.asarray(directory["tags"])  # type: ignore[index]
        counts = np.clip(lengths, 0, None)
        over = np.nonzero(lengths > bank.config.associativity)[0]
        if over.size:
            problems.append(
                f"CC{index}: {over.size} sets exceed associativity "
                f"{bank.config.associativity} (first: set {int(over[0])} "
                f"holds {int(lengths[over[0]])})"
            )
        set_of_tag = np.repeat(
            np.arange(lengths.size, dtype=np.uint64), counts
        )
        mismatched = np.nonzero(
            (tags & np.uint64(bank.config.num_sets - 1)) != set_of_tag
        )[0]
        if mismatched.size:
            problems.append(
                f"CC{index}: {mismatched.size} resident tags map outside "
                f"their set (first: tag {int(tags[mismatched[0]])} in set "
                f"{int(set_of_tag[mismatched[0]])})"
            )
    return make_check("occupancy", problems)


def _check_oracle(emulator, performance) -> AuditCheck | None:
    tap = emulator.oracle
    if tap is None:
        return None
    problems = tap.verify(emulator.banks)
    if tap.every == 1 and tap.observed != performance.stats.accesses:
        problems.append(
            f"full-coverage oracle observed {tap.observed} accesses, banks "
            f"counted {performance.stats.accesses} — the tap was bypassed"
        )
    return make_check("lru-oracle", problems)


def run_audit(
    emulator,
    performance,
    *,
    mode: str,
    expected_instructions: int | None = None,
    expected_cycles: int | None = None,
) -> AuditReport:
    """Audit one completed run; returns the full report.

    Args:
        emulator: the :class:`~repro.cache.emulator.DragonheadEmulator`
            in its end-of-run state (after ``read_performance_data``).
        performance: the :class:`~repro.cache.emulator.PerformanceData`
            that was reported for the run.
        mode: ``"sample"`` or ``"full"`` (recorded in the report; the
            oracle's coverage was fixed when its tap was attached).
        expected_instructions: the scheduler's raw total of retired
            instructions (the simulation-domain side of the FSB sync).
        expected_cycles: the scheduler's raw cycle total.
    """
    with telemetry.span("audit"):
        checks: list[AuditCheck] = []
        checks.extend(_check_conservation(emulator, performance))
        checks.append(_check_reaggregation(emulator, performance))
        checks.extend(
            _check_time_domains(performance, expected_instructions, expected_cycles)
        )
        checks.append(_check_window_integration(performance))
        checks.append(_check_occupancy(emulator))
        oracle_check = _check_oracle(emulator, performance)
        if oracle_check is not None:
            checks.append(oracle_check)
        report = AuditReport(mode=mode, checks=tuple(checks))
        telemetry.counter("repro_audit_passes_total").inc()
        telemetry.counter("repro_audit_checks_total").inc(len(report.checks))
        telemetry.counter("repro_audit_violations_total").inc(
            len(report.violations)
        )
        return report
