"""Sampled differential LRU oracle.

The fastlru kernel (PR 1) is the single component every result depends
on, and its batched path — repeat collapse, lazy set allocation,
dict-order recency — is exactly the kind of optimized code where a
subtle bug corrupts statistics without crashing anything.  The oracle
re-runs a deterministic 1-in-K slice of (bank, set) pairs through the
*generic* :class:`~repro.cache.replacement.LRUPolicy` (the slow,
obviously-correct list implementation) in parallel with the real run,
and the audit compares the two directories tag for tag, in recency
order, at end of run.

The tap hooks into :meth:`~repro.cache.emulator.DragonheadEmulator.
snoop_chunk` *after* the AF's window gating, so oracle and banks see
the identical access stream — including under fault injection, where
both sit downstream of the injector.  Sampling is by set, not by
access: a sampled set sees **every** access it would receive, which is
what makes its final LRU order exactly comparable.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.cache.replacement import LRUPolicy
from repro.errors import CheckpointError

#: Default 1-in-K set sampling for ``--audit sample``.  The generic
#: policy is ~10x slower per access than the kernel, so auditing 1/64th
#: of the sets costs a few percent extra wall clock (measured ~4-5% on
#: an 8-point replay sweep) — comfortably inside the <10% budget —
#: while still sweeping hundreds of sets on real geometries.
SAMPLE_EVERY = 64


class OracleTap:
    """Replays a deterministic slice of sets through the generic LRU.

    Args:
        num_sets: sets per CC bank (all four banks share one geometry).
        associativity: ways per set.
        num_banks: CC bank count.
        bank_shift: line-number shift that folds the bank bits away.
        every: sample 1 in ``every`` (bank, set) pairs; 1 audits all.

    The sampled slice is ``(set * num_banks + bank) % every == 0`` — a
    pure function of the geometry, so a fresh run, its replay, and a
    checkpoint-resumed run all audit the same sets.
    """

    def __init__(
        self,
        num_sets: int,
        associativity: int,
        num_banks: int,
        bank_shift: int,
        every: int = SAMPLE_EVERY,
    ) -> None:
        if every < 1:
            raise ValueError(f"sampling interval must be >= 1, got {every}")
        self.num_sets = num_sets
        self.associativity = associativity
        self.num_banks = num_banks
        self.bank_shift = bank_shift
        self.every = every
        self.observed = 0
        self._set_mask = np.uint64(num_sets - 1)
        self._policies: dict[tuple[int, int], LRUPolicy] = {}
        # When the bank bits are the low bits of the line number
        # (num_banks == 1 << bank_shift, true for the 4-bank CC) the
        # sample index ``set * num_banks + bank`` equals
        # ``line & combined``, and for power-of-two ``every`` the
        # modulo test collapses to one AND over the raw lines — the
        # whole-stream cost of the tap on the snoop hot path.  The
        # selected (bank, set) pairs are identical to the generic
        # predicate's, so sampled-set membership does not depend on
        # which path runs.
        combined = ((num_sets - 1) << bank_shift) | (num_banks - 1)
        self._fast_mask: np.uint64 | None = None
        if num_banks == 1 << bank_shift and every & (every - 1) == 0:
            self._fast_mask = np.uint64(combined & (every - 1))

    # -- snoop-path hook ---------------------------------------------------

    def observe(self, lines: np.ndarray) -> None:
        """Feed the window-gated line-number stream (emulator line units)."""
        lines = np.asarray(lines, dtype=np.uint64)
        if lines.size == 0:
            return
        if self.every > 1:
            # Select the sampled slice before decoding bank/set: the
            # decode then runs on ~1/every of the stream instead of
            # all of it.
            if self._fast_mask is not None:
                lines = lines[lines & self._fast_mask == np.uint64(0)]
            else:
                banks = (lines % np.uint64(self.num_banks)).astype(np.int64)
                sets = (
                    (lines >> np.uint64(self.bank_shift)) & self._set_mask
                ).astype(np.int64)
                lines = lines[(sets * self.num_banks + banks) % self.every == 0]
            if lines.size == 0:
                return
        banks = (lines % np.uint64(self.num_banks)).astype(np.int64)
        bank_lines = lines >> np.uint64(self.bank_shift)
        sets = (bank_lines & self._set_mask).astype(np.int64)
        policies = self._policies
        assoc = self.associativity
        for bank, set_index, tag in zip(
            banks.tolist(), sets.tolist(), bank_lines.tolist()
        ):
            policy = policies.get((bank, set_index))
            if policy is None:
                policy = policies[(bank, set_index)] = LRUPolicy(1, assoc)
            policy.lookup(0, tag)
        self.observed += int(lines.size)

    # -- audit-time comparison --------------------------------------------

    def verify(self, banks: list) -> list[str]:
        """Compare every sampled set's directory against the real banks.

        ``banks`` is the emulator's CC bank list; each must expose
        ``resident_tags(set_index)`` returning LRU→MRU tags.  Returns a
        description per mismatching set.
        """
        problems: list[str] = []
        for (bank, set_index) in sorted(self._policies):
            expected = self._policies[(bank, set_index)].resident_tags(0)
            actual = banks[bank].resident_tags(set_index)
            if actual != expected:
                problems.append(
                    f"CC{bank} set {set_index}: fastlru holds "
                    f"{_preview(actual)}, oracle expects {_preview(expected)}"
                )
        return problems

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict[str, object]:
        """Oracle directory state for a checkpoint.

        The policies are deep-copied so the snapshot is isolated from
        the live run continuing to mutate them.
        """
        return {
            "every": self.every,
            "observed": self.observed,
            "policies": copy.deepcopy(self._policies),
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        """Restore oracle state captured by :meth:`state_dict`."""
        if state["every"] != self.every:
            raise CheckpointError(
                f"checkpoint oracle samples 1-in-{state['every']} sets, "
                f"this run samples 1-in-{self.every}; audit modes must match "
                f"to resume"
            )
        self.observed = int(state["observed"])  # type: ignore[arg-type]
        self._policies = copy.deepcopy(state["policies"])  # type: ignore[arg-type]


def _preview(tags: list[int], limit: int = 4) -> str:
    """Bounded rendering of a resident-tag list for mismatch details."""
    if len(tags) <= limit:
        return f"{tags}"
    return f"[{', '.join(str(t) for t in tags[:limit])}, ...x{len(tags)}]"
