"""The audit report: one named verdict per invariant checked.

Reports are frozen, tuple-backed, and built deterministically from the
run's final state, so a replayed point produces a report *equal* to the
fresh run's — the same contract every other field of
:class:`~repro.core.cosim.CoSimResult` already honors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.report import AUDIT, DegradationRecord

#: Detail strings are clamped so a pathological report (thousands of
#: violated sets) stays printable and journal-serializable.
_DETAIL_LIMIT = 500


@dataclass(frozen=True, slots=True)
class AuditCheck:
    """The verdict of one invariant.

    Attributes:
        name: catalogue key (e.g. ``"bank-conservation"``; the full
            catalogue with each check's hardware analogue is in
            ``docs/architecture.md``).
        ok: whether the invariant held.
        detail: on failure, what was observed versus expected.
    """

    name: str
    ok: bool
    detail: str = ""


@dataclass(frozen=True, slots=True)
class AuditReport:
    """Every invariant verdict from one run's end-of-run audit."""

    mode: str
    checks: tuple[AuditCheck, ...]

    @property
    def violations(self) -> tuple[AuditCheck, ...]:
        return tuple(check for check in self.checks if not check.ok)

    @property
    def ok(self) -> bool:
        return not self.violations

    def degradation_records(self) -> tuple[DegradationRecord, ...]:
        """Lenient-mode form: one ``audit``-source record per violation."""
        return tuple(
            DegradationRecord(
                kind=f"audit-{check.name}",
                source=AUDIT,
                count=1,
                detail=check.detail,
            )
            for check in self.violations
        )

    def describe(self) -> str:
        """One-line summary for CLI readouts."""
        if self.ok:
            return f"audit {self.mode}: {len(self.checks)} checks passed"
        names = ", ".join(check.name for check in self.violations)
        return (
            f"audit {self.mode}: {len(self.violations)}/{len(self.checks)} "
            f"checks FAILED ({names})"
        )


def make_check(name: str, problems: list[str]) -> AuditCheck:
    """Fold a (possibly empty) problem list into one check verdict."""
    if not problems:
        return AuditCheck(name=name, ok=True)
    detail = "; ".join(problems)
    if len(detail) > _DETAIL_LIMIT:
        detail = detail[: _DETAIL_LIMIT - 3] + "..."
    return AuditCheck(name=name, ok=False, detail=detail)
