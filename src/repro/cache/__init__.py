"""Cache-modelling substrate (the software Dragonhead).

:mod:`repro.cache.cache` implements a configurable set-associative cache
with pluggable replacement (:mod:`repro.cache.replacement`);
:mod:`repro.cache.hierarchy` composes per-core L1s with a shared LLC;
:mod:`repro.cache.coherence` adds an invalidation-based MESI layer;
:mod:`repro.cache.prefetch` implements a stride prefetcher; and
:mod:`repro.cache.emulator` models the Dragonhead FPGA cache emulator
(address filter, four banked cache controllers, stat collection board).
"""

from repro.cache.cache import CacheConfig, SetAssociativeCache, FullyAssociativeLRU
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.prefetch import StridePrefetcher, PrefetchingCache
from repro.cache.emulator import DragonheadConfig, DragonheadEmulator
from repro.cache.stats import CacheStats

__all__ = [
    "CacheConfig",
    "SetAssociativeCache",
    "FullyAssociativeLRU",
    "CacheHierarchy",
    "HierarchyConfig",
    "StridePrefetcher",
    "PrefetchingCache",
    "DragonheadConfig",
    "DragonheadEmulator",
    "CacheStats",
]
