"""Set-associative cache model.

This is the functional cache that everything else builds on: the
Dragonhead emulator banks, the L1/LLC hierarchy, and the prefetching
wrapper.  It is functional (hit/miss only, no timing), exactly like the
FPGA emulator it models — Dragonhead is a *passive* device that snoops
bus transactions and computes statistics without influencing execution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.cache.fastlru import FastLRUKernel
from repro.cache.replacement import ReplacementPolicy, make_policy
from repro.cache.stats import CacheStats
from repro.trace.record import AccessKind, TraceChunk
from repro.units import format_size, is_power_of_two


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Geometry and policy of one cache.

    Attributes:
        size: total capacity in bytes.
        line_size: cache-line size in bytes.
        associativity: ways per set (use :meth:`fully_associative` to
            construct a cache with a single set).
        policy: replacement policy name (``lru`` default, matching
            Dragonhead).
        name: label used in reports.
    """

    size: int
    line_size: int = 64
    associativity: int = 16
    policy: str = "lru"
    name: str = "cache"

    def __post_init__(self) -> None:
        if self.size <= 0 or self.line_size <= 0 or self.associativity <= 0:
            raise ConfigurationError(
                f"cache geometry must be positive: size={self.size} "
                f"line={self.line_size} assoc={self.associativity}"
            )
        if not is_power_of_two(self.line_size):
            raise ConfigurationError(f"line size must be a power of two, got {self.line_size}")
        if self.size % (self.line_size * self.associativity):
            raise ConfigurationError(
                f"size {format_size(self.size)} is not divisible by "
                f"line_size*associativity = {self.line_size * self.associativity}"
            )
        if not is_power_of_two(self.num_sets):
            raise ConfigurationError(
                f"number of sets must be a power of two, got {self.num_sets}"
            )

    @property
    def num_lines(self) -> int:
        return self.size // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    @classmethod
    def fully_associative(cls, size: int, line_size: int = 64, name: str = "cache") -> "CacheConfig":
        """A single-set cache, equivalent to the stack-distance model."""
        return cls(
            size=size,
            line_size=line_size,
            associativity=size // line_size,
            policy="lru",
            name=name,
        )

    def describe(self) -> str:
        return (
            f"{self.name}: {format_size(self.size)}, {self.line_size}B lines, "
            f"{self.associativity}-way, {self.policy.upper()}"
        )


class SetAssociativeCache:
    """A functional set-associative cache.

    The per-access entry point is :meth:`access`; bulk trace processing
    goes through :meth:`access_chunk`, which converts addresses to line
    numbers vectorized and then applies the (inherently sequential)
    replacement updates.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        if config.policy.lower() == "lru":
            # LRU traffic goes through the batched kernel; it implements
            # the full ReplacementPolicy interface, so the scalar paths
            # (and the layers that inspect recency order) are unchanged.
            self._policy: ReplacementPolicy = FastLRUKernel(
                config.num_sets, config.associativity
            )
        else:
            self._policy = make_policy(
                config.policy, config.num_sets, config.associativity
            )
        self._line_shift = config.line_size.bit_length() - 1
        self._set_mask = config.num_sets - 1

    # -- core operations ------------------------------------------------

    def access(
        self, address: int, kind: AccessKind = AccessKind.READ, core: int = 0
    ) -> bool:
        """Access a byte address; returns True on hit."""
        line = address >> self._line_shift
        return self.access_line(line, kind, core)

    def access_line(
        self, line: int, kind: AccessKind = AccessKind.READ, core: int = 0
    ) -> bool:
        """Access a line number directly; returns True on hit."""
        set_index = line & self._set_mask
        tag = line >> 0  # full line number kept as the tag for clarity
        hit, evicted = self._policy.lookup(set_index, tag)
        if evicted is not None:
            self.stats.evictions += 1
        self.stats.note_access(core, kind == AccessKind.READ, hit)
        return hit

    def access_chunk(self, chunk: TraceChunk) -> int:
        """Process a trace chunk; returns the number of misses it caused."""
        return self.access_lines_batch(
            chunk.lines(self.config.line_size), chunk.kinds, chunk.cores
        )

    def access_lines_batch(
        self,
        lines: np.ndarray,
        kinds: np.ndarray,
        cores: np.ndarray | int,
    ) -> int:
        """Process a batch of line numbers; returns the misses it caused.

        LRU caches run through the batched :class:`FastLRUKernel` path;
        every other policy falls back to the generic per-access loop.
        """
        hits = self.probe_lines_batch(lines, kinds, cores)
        return len(lines) - int(np.count_nonzero(hits))

    def probe_lines_batch(
        self,
        lines: np.ndarray,
        kinds: np.ndarray,
        cores: np.ndarray | int,
    ) -> np.ndarray:
        """Like :meth:`access_lines_batch`, but returns the hit mask.

        The per-access boolean result (in stream order) is what the
        batched emulator pipeline needs to aggregate window samples by
        prefix sums; state updates and statistics accounting are
        identical to :meth:`access_lines_batch`.
        """
        policy = self._policy
        stats = self.stats
        if isinstance(policy, FastLRUKernel):
            set_indices = None
            if self.config.num_sets > 1:
                set_indices = lines & np.uint64(self._set_mask)
            result = policy.lookup_batch(lines, set_indices)
            stats.evictions += result.evictions
            stats.note_batch(kinds, cores, result.hits)
            return result.hits
        set_mask = self._set_mask
        read_kind = int(AccessKind.READ)
        scalar_core = isinstance(cores, (int, np.integer))
        hits = np.empty(len(lines), dtype=bool)
        # Local-variable binding keeps the per-access Python overhead low.
        for i in range(len(lines)):
            line = int(lines[i])
            hit, evicted = policy.lookup(line & set_mask, line)
            if evicted is not None:
                stats.evictions += 1
            core = int(cores) if scalar_core else int(cores[i])
            stats.note_access(core, int(kinds[i]) == read_kind, hit)
            hits[i] = hit
        return hits

    def access_stream(self, stream) -> CacheStats:
        """Drain a trace stream through the cache; returns final stats."""
        for chunk in stream:
            self.access_chunk(chunk)
        return self.stats

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> dict[str, object]:
        """Directory contents + counters for a checkpoint.

        LRU caches dump the kernel's dense numpy representation (two
        contiguous arrays); other policies are small enough to travel as
        the pickled policy object itself.
        """
        policy = self._policy
        if isinstance(policy, FastLRUKernel):
            policy_state: dict[str, object] = {
                "kind": "fastlru",
                **policy.dump_state(),
            }
        else:
            policy_state = {"kind": "pickled", "policy": policy}
        return {"stats": self.stats.snapshot(), "policy": policy_state}

    def load_state_dict(self, state: dict[str, object]) -> None:
        """Restore directory + counters captured by :meth:`state_dict`."""
        from repro.errors import CheckpointError

        self.stats = state["stats"].snapshot()  # type: ignore[union-attr]
        policy_state = state["policy"]
        kind = policy_state["kind"]  # type: ignore[index]
        if kind == "fastlru":
            if not isinstance(self._policy, FastLRUKernel):
                raise CheckpointError(
                    f"checkpoint holds LRU directory state but this cache "
                    f"runs policy {self.config.policy!r}"
                )
            self._policy.load_state(policy_state)  # type: ignore[arg-type]
        else:
            restored = policy_state["policy"]  # type: ignore[index]
            if (
                restored.num_sets != self.config.num_sets
                or restored.associativity != self.config.associativity
            ):
                raise CheckpointError(
                    "checkpoint policy geometry "
                    f"({restored.num_sets}x{restored.associativity}) does not "
                    f"match this cache "
                    f"({self.config.num_sets}x{self.config.associativity})"
                )
            self._policy = restored

    # -- maintenance ------------------------------------------------------

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is resident (no side effects)."""
        line = address >> self._line_shift
        return self._policy.contains(line & self._set_mask, line)

    def resident_tags(self, set_index: int) -> list[int]:
        """Resident tags of one set, LRU→MRU (audit oracle, coherence).

        Only meaningful for recency-ordered policies (LRU); others raise
        ``AttributeError`` — callers that audit must use an LRU cache.
        """
        return self._policy.resident_tags(set_index)

    def resident_count(self) -> int | None:
        """Total resident lines (occupancy audit); O(num_sets).

        None for policies that don't expose their directory (FIFO,
        Random, tree-PLRU) — occupancy is then unobservable, not zero.
        """
        policy = self._policy
        if isinstance(policy, FastLRUKernel):
            return policy.resident_count()
        if not hasattr(policy, "resident_tags"):
            return None
        return sum(
            len(policy.resident_tags(s)) for s in range(self.config.num_sets)
        )

    def contains_line(self, line: int) -> bool:
        return self._policy.contains(line & self._set_mask, line)

    def invalidate(self, address: int) -> bool:
        """Drop the line holding ``address``; returns whether it was resident."""
        line = address >> self._line_shift
        return self._policy.invalidate(line & self._set_mask, line)

    def install_line(self, line: int) -> None:
        """Insert a line without counting a demand access (prefetch fill)."""
        set_index = line & self._set_mask
        if self._policy.contains(set_index, line):
            return
        _, evicted = self._policy.lookup(set_index, line)
        if evicted is not None:
            self.stats.evictions += 1

    def flush(self) -> None:
        """Empty the cache, keeping statistics (emulator re-run support)."""
        self._policy.flush()

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def __repr__(self) -> str:
        return f"SetAssociativeCache({self.config.describe()})"


class FullyAssociativeLRU:
    """A fast fully-associative LRU cache used as the validation oracle.

    A single-set :class:`FastLRUKernel`, so ``access`` is O(1) and
    ``access_chunk`` runs the batched kernel path.  Its miss counts are
    exactly what the stack-distance model predicts, which is what the
    model-vs-exact agreement tests rely on.
    """

    def __init__(self, capacity_lines: int, line_size: int = 64) -> None:
        if capacity_lines <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity_lines}")
        self.capacity_lines = capacity_lines
        self.line_size = line_size
        self._kernel = FastLRUKernel(num_sets=1, associativity=capacity_lines)
        self.stats = CacheStats()
        self._line_shift = line_size.bit_length() - 1

    def access(self, address: int, kind: AccessKind = AccessKind.READ, core: int = 0) -> bool:
        line = address >> self._line_shift
        return self.access_line(line, kind, core)

    def access_line(self, line: int, kind: AccessKind = AccessKind.READ, core: int = 0) -> bool:
        hit, evicted = self._kernel.lookup(0, line)
        if evicted is not None:
            self.stats.evictions += 1
        self.stats.note_access(core, kind == AccessKind.READ, hit)
        return hit

    def access_chunk(self, chunk: TraceChunk) -> int:
        result = self._kernel.lookup_batch(chunk.lines(self.line_size))
        self.stats.evictions += result.evictions
        self.stats.note_batch(chunk.kinds, chunk.cores, result.hits)
        return result.misses
