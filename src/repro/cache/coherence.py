"""MESI invalidation-based coherence for private L1 caches.

The co-simulation host is a dual-processor system with private caches in
front of the snooped front-side bus; the paper's shared-LLC emulator
sits behind them.  This module supplies that substrate: N private
caches kept coherent by a snooping MESI protocol over a logical bus,
with the post-coherence miss traffic forwarded to a shared LLC.

States per (cache, line): Modified, Exclusive, Shared, Invalid.
Transitions follow the textbook protocol:

* read miss → E if no other sharer, S otherwise (sharers in M flush and
  drop to S);
* write hit in S → upgrade (invalidate other sharers);
* write miss → M (invalidate everyone else, M sharer flushes first).

The protocol layer counts invalidations, upgrades, and interventions —
the sharing-behaviour metrics one would use to separate the paper's
category-A (shared-data) workloads from category-C (private-data) ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.errors import ConfigurationError
from repro.trace.record import AccessKind, TraceChunk


class MESIState(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass(slots=True)
class CoherenceStats:
    """Protocol event counters."""

    read_misses: int = 0
    write_misses: int = 0
    upgrades: int = 0
    invalidations_sent: int = 0
    interventions: int = 0  # dirty lines supplied by a peer cache
    writebacks: int = 0

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses


class CoherentCacheSystem:
    """N private MESI caches over a snooping bus, backed by a shared LLC."""

    def __init__(
        self,
        private_config: CacheConfig,
        cores: int,
        llc_config: CacheConfig | None = None,
    ) -> None:
        if cores <= 0:
            raise ConfigurationError(f"cores must be positive, got {cores}")
        self.cores = cores
        self.caches = [SetAssociativeCache(private_config) for _ in range(cores)]
        self.llc = SetAssociativeCache(llc_config) if llc_config else None
        self.stats = CoherenceStats()
        self._line_shift = private_config.line_size.bit_length() - 1
        # line -> {core: state}; only non-invalid entries are stored.
        self._states: dict[int, dict[int, MESIState]] = {}

    # -- state inspection -------------------------------------------------

    def state(self, core: int, address: int) -> MESIState:
        """Current MESI state of ``address``'s line in ``core``'s cache."""
        line = address >> self._line_shift
        return self._states.get(line, {}).get(core, MESIState.INVALID)

    def sharers(self, address: int) -> list[int]:
        """Cores holding the line in any valid state."""
        line = address >> self._line_shift
        return sorted(self._states.get(line, {}))

    # -- protocol ----------------------------------------------------------

    def _evict_if_needed(self, core: int, line: int) -> None:
        """Keep the directory consistent with the cache's own eviction."""
        holders = self._states.get(line)
        if holders and core in holders:
            if holders[core] is MESIState.MODIFIED:
                self.stats.writebacks += 1
            del holders[core]
            if not holders:
                del self._states[line]

    def access(self, core: int, address: int, kind: AccessKind) -> bool:
        """Issue an access; returns True when it hit in the private cache."""
        if not 0 <= core < self.cores:
            raise ConfigurationError(f"core {core} out of range")
        line = address >> self._line_shift
        holders = self._states.setdefault(line, {})
        my_state = holders.get(core, MESIState.INVALID)
        cache = self.caches[core]

        if kind == AccessKind.READ:
            if my_state is not MESIState.INVALID:
                cache.access_line(line, kind, core)
                return True
            # Read miss: other M holder intervenes and both become S.
            self.stats.read_misses += 1
            others = [c for c in holders if c != core]
            if others:
                for other in others:
                    if holders[other] is MESIState.MODIFIED:
                        self.stats.interventions += 1
                        self.stats.writebacks += 1
                    holders[other] = MESIState.SHARED
                holders[core] = MESIState.SHARED
            else:
                holders[core] = MESIState.EXCLUSIVE
            self._install(core, line, kind)
            return False

        # WRITE
        if my_state in (MESIState.MODIFIED, MESIState.EXCLUSIVE):
            holders[core] = MESIState.MODIFIED
            cache.access_line(line, kind, core)
            return True
        if my_state is MESIState.SHARED:
            # Upgrade: invalidate the other sharers, no data transfer.
            self.stats.upgrades += 1
            for other in [c for c in holders if c != core]:
                self._invalidate_peer(other, line, holders)
            holders[core] = MESIState.MODIFIED
            cache.access_line(line, kind, core)
            return True
        # Write miss: invalidate everyone, take M.
        self.stats.write_misses += 1
        for other in [c for c in holders if c != core]:
            if holders[other] is MESIState.MODIFIED:
                self.stats.interventions += 1
                self.stats.writebacks += 1
            self._invalidate_peer(other, line, holders)
        holders[core] = MESIState.MODIFIED
        self._install(core, line, kind)
        return False

    def _invalidate_peer(self, core: int, line: int, holders: dict[int, MESIState]) -> None:
        self.stats.invalidations_sent += 1
        del holders[core]
        self.caches[core].invalidate(line << self._line_shift)

    def _install(self, core: int, line: int, kind: AccessKind) -> None:
        """Fill the private cache and forward the miss to the shared LLC."""
        cache = self.caches[core]
        # The fill may evict a victim line; reconcile directory state.
        set_index = line & cache._set_mask
        policy = cache._policy
        resident_before = None
        if hasattr(policy, "resident_tags"):
            tags = policy.resident_tags(set_index)
            if len(tags) == cache.config.associativity and line not in tags:
                resident_before = tags[0]  # LRU victim
        cache.access_line(line, kind, core)
        if resident_before is not None:
            self._evict_if_needed(core, resident_before)
        if self.llc is not None:
            self.llc.access_line(line, kind, core)

    def access_chunk(self, chunk: TraceChunk) -> None:
        """Process a core-tagged trace through the coherent system."""
        addresses = chunk.addresses
        kinds = chunk.kinds
        cores = chunk.cores
        for i in range(len(chunk)):
            self.access(int(cores[i]), int(addresses[i]), AccessKind(int(kinds[i])))

    # -- invariants (used by property tests) -------------------------------

    def check_invariants(self) -> None:
        """Assert the MESI single-writer/multiple-reader invariants."""
        for line, holders in self._states.items():
            states = list(holders.values())
            m_or_e = [s for s in states if s in (MESIState.MODIFIED, MESIState.EXCLUSIVE)]
            if m_or_e and len(states) > 1:
                raise AssertionError(
                    f"line {line:#x}: M/E coexists with other sharers: {holders}"
                )
            if states.count(MESIState.MODIFIED) > 1:
                raise AssertionError(f"line {line:#x}: multiple writers: {holders}")
