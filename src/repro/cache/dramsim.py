"""A DRAM-cache device model with row-buffer timing.

The paper's conclusion recommends "alternative cache organizations
using DRAM (e.g. embedded DRAM, off-die DRAM caches, or 3D
die-stacking)" and finds that "a 256-byte line size is sufficient for
large DRAM caches".  :mod:`repro.perf.dramcache` settles the
capacity-versus-latency question analytically; this module models the
*device*: a set-associative DRAM cache whose access latency depends on
row-buffer state, the property that makes large lines and streaming
access patterns so friendly to DRAM caches.

Model: the cache's data array is banked DRAM; each bank keeps one row
open.  An access to the open row costs ``row_hit_latency``; to a closed
or different row, ``row_conflict_latency`` (precharge + activate +
access).  Content misses pay ``memory_latency`` and install the line
(opening its row).  Tags are assumed in fast SRAM (``tag_latency``),
the common design point for stacked caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.errors import ConfigurationError
from repro.trace.record import AccessKind, TraceChunk
from repro.units import MB, is_power_of_two


@dataclass(frozen=True, slots=True)
class DramCacheConfig:
    """Geometry and timing of the DRAM cache device."""

    capacity: int = 128 * MB
    line_size: int = 256  # the paper's DRAM-cache sweet spot
    associativity: int = 16
    banks: int = 8
    row_bytes: int = 8192
    tag_latency: float = 6.0
    row_hit_latency: float = 18.0
    row_conflict_latency: float = 46.0
    memory_latency: float = 400.0

    def __post_init__(self) -> None:
        if not is_power_of_two(self.banks) or not is_power_of_two(self.row_bytes):
            raise ConfigurationError("banks and row_bytes must be powers of two")
        if self.row_bytes < self.line_size:
            raise ConfigurationError(
                f"row ({self.row_bytes}B) must hold at least one line "
                f"({self.line_size}B)"
            )

    def cache_config(self) -> CacheConfig:
        return CacheConfig(
            size=self.capacity,
            line_size=self.line_size,
            associativity=self.associativity,
            name="DRAM$",
        )


@dataclass(slots=True)
class DramCacheStats:
    """Content and row-buffer outcome counters."""

    accesses: int = 0
    content_hits: int = 0
    row_hits: int = 0
    row_conflicts: int = 0
    total_latency: float = 0.0

    @property
    def content_hit_ratio(self) -> float:
        return self.content_hits / self.accesses if self.accesses else 0.0

    @property
    def row_hit_ratio(self) -> float:
        probes = self.row_hits + self.row_conflicts
        return self.row_hits / probes if probes else 0.0

    @property
    def average_latency(self) -> float:
        return self.total_latency / self.accesses if self.accesses else 0.0


class DramCacheSim:
    """Set-associative DRAM cache with per-bank open-row state."""

    def __init__(self, config: DramCacheConfig) -> None:
        self.config = config
        self.contents = SetAssociativeCache(config.cache_config())
        self.stats = DramCacheStats()
        self._open_rows: dict[int, int] = {}  # bank -> open row id
        self._bank_mask = config.banks - 1
        self._row_shift = config.row_bytes.bit_length() - 1

    def _bank_and_row(self, address: int) -> tuple[int, int]:
        row = address >> self._row_shift
        return row & self._bank_mask, row

    def _probe_row(self, address: int) -> float:
        """Row-buffer latency for touching the data array at ``address``."""
        bank, row = self._bank_and_row(address)
        if self._open_rows.get(bank) == row:
            self.stats.row_hits += 1
            return self.config.row_hit_latency
        self._open_rows[bank] = row
        self.stats.row_conflicts += 1
        return self.config.row_conflict_latency

    def access(self, address: int, kind: AccessKind = AccessKind.READ, core: int = 0) -> float:
        """Access the DRAM cache; returns the latency in cycles."""
        self.stats.accesses += 1
        latency = self.config.tag_latency
        hit = self.contents.access(address, kind, core)
        if hit:
            self.stats.content_hits += 1
            latency += self._probe_row(address)
        else:
            # Miss: fetch from memory and install (fill touches the row).
            latency += self.config.memory_latency
            latency += self._probe_row(address)
        self.stats.total_latency += latency
        return latency

    def access_chunk(self, chunk: TraceChunk) -> DramCacheStats:
        addresses = chunk.addresses
        kinds = chunk.kinds
        cores = chunk.cores
        for i in range(len(chunk)):
            self.access(int(addresses[i]), AccessKind(int(kinds[i])), int(cores[i]))
        return self.stats
