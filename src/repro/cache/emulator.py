"""Software model of the Dragonhead FPGA cache emulator.

Figure 1 of the paper: Dragonhead has six FPGAs — **AF** receives FSB
transactions from the logic analyzer interface and regulates them,
**CC0–CC3** are four cache controllers that process requests and
generate performance data, and **CB** configures the others and collects
statistics, which a host computer reads every 500 µs.

The model preserves that architecture:

* :class:`AddressFilter` decodes protocol messages, maintains the
  emulation window (start/stop), the current core id, and the retired-
  instruction / cycle counters, and drops traffic outside the window
  (the paper: "the SoftSDV code and the host OS will also execute
  during the simulation, and by restricting the emulation to the window
  between start and stop, these accesses are excluded").
* :class:`CacheControllerBank` is one CC FPGA: a slice of the shared
  LLC selected by low line-number bits, so the four controllers share
  the load the way address-interleaved hardware banks do.
* :class:`ControlBoard` aggregates bank counters and exposes the
  ``read_performance_data`` the host polls.

Configuration limits mirror the hardware: cache sizes 1 MB–256 MB, line
sizes 64 B–4096 B, LRU replacement (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.faults.report import RECOVERED, DegradationRecord, records_from_counts
from repro.protocol import Message, MessageCodec, MessageKind
from repro.cache.sampling import WindowSample, WindowSampler
from repro.errors import ConfigurationError, ProtocolError, RecoverableProtocolError
from repro.telemetry import runtime as telemetry
from repro.trace.record import AccessKind, TraceChunk
from repro.units import (
    DRAGONHEAD_MAX_CACHE,
    DRAGONHEAD_MAX_LINE,
    DRAGONHEAD_MIN_CACHE,
    DRAGONHEAD_MIN_LINE,
    format_size,
    is_power_of_two,
)

#: Dragonhead has four cache-controller FPGAs (CC0..CC3).
NUM_BANKS = 4


def derive_bank_shift(num_banks: int) -> int:
    """Line-number shift that folds the bank-selection bits away.

    Bank selection keeps the low ``log2(num_banks)`` line bits
    (``line % num_banks``) and the bank-local line number discards them
    (``line >> shift``).  That pair of operations only inverts cleanly
    when the bank count is a power of two; for any other count
    ``bit_length() - 1`` under-shifts and distinct lines silently
    collide inside a bank, so refuse the configuration outright.
    """
    if num_banks <= 0 or not is_power_of_two(num_banks):
        raise ConfigurationError(
            f"bank count must be a positive power of two, got {num_banks}: "
            "address-interleaved bank selection cannot fold away a "
            "non-power-of-two modulus"
        )
    return num_banks.bit_length() - 1


BANK_SHIFT = derive_bank_shift(NUM_BANKS)

#: Precomputed numpy operands for the vectorized bank-routing path.
#: ``& _BANK_MASK`` equals ``% NUM_BANKS`` exactly because
#: :func:`derive_bank_shift` guarantees a power-of-two bank count.
_BANK_MASK = np.uint64(NUM_BANKS - 1)
_BANK_SHIFT_U64 = np.uint64(BANK_SHIFT)


@dataclass(frozen=True, slots=True)
class DragonheadConfig:
    """Emulated shared-LLC configuration, within the hardware envelope."""

    cache_size: int
    line_size: int = 64
    associativity: int = 16
    policy: str = "lru"
    frequency_hz: float = 100e6  # "Dragonhead emulates a shared LLC at ... 100MHz"
    host_read_interval_us: float = 500.0

    def __post_init__(self) -> None:
        if not DRAGONHEAD_MIN_CACHE <= self.cache_size <= DRAGONHEAD_MAX_CACHE:
            raise ConfigurationError(
                f"Dragonhead supports cache sizes {format_size(DRAGONHEAD_MIN_CACHE)}"
                f"-{format_size(DRAGONHEAD_MAX_CACHE)}, got {format_size(self.cache_size)}"
            )
        if not DRAGONHEAD_MIN_LINE <= self.line_size <= DRAGONHEAD_MAX_LINE:
            raise ConfigurationError(
                f"Dragonhead supports line sizes {DRAGONHEAD_MIN_LINE}B-"
                f"{DRAGONHEAD_MAX_LINE}B, got {self.line_size}B"
            )
        if not is_power_of_two(self.line_size) or not is_power_of_two(self.cache_size):
            raise ConfigurationError("cache and line sizes must be powers of two")
        if self.cache_size % NUM_BANKS:
            raise ConfigurationError("cache size must divide across the four CC banks")

    def bank_config(self, bank: int) -> CacheConfig:
        """Geometry of one CC bank (a quarter of the LLC)."""
        bank_size = self.cache_size // NUM_BANKS
        assoc = self.associativity
        while bank_size % (self.line_size * assoc) or not is_power_of_two(
            bank_size // (self.line_size * assoc)
        ):
            assoc //= 2
            if assoc == 0:
                raise ConfigurationError(
                    f"no legal bank geometry for {format_size(self.cache_size)} / "
                    f"{self.line_size}B lines"
                )
        return CacheConfig(
            size=bank_size,
            line_size=self.line_size,
            associativity=assoc,
            policy=self.policy,
            name=f"CC{bank}",
        )


class AddressFilter:
    """The AF FPGA: message decode, window gating, core tagging.

    Two operating modes mirror the two ways to treat a lossy bus:

    * **strict** (the default, and the fault-free contract): any
      protocol anomaly raises.  De-synchronizations a lenient filter
      could survive raise :class:`RecoverableProtocolError`; outright
      malformed transactions raise plain :class:`ProtocolError`.
    * **lenient**: the filter resynchronizes instead — an unmatched
      STOP is dropped, a START while the window is already open is
      treated as the session continuing, a progress counter that moves
      backwards (a reordered message) keeps its high-water mark, and an
      undecodable message transaction is discarded.  Every recovery is
      counted in :attr:`anomalies` and surfaces in the degradation
      report.
    """

    def __init__(self, strict: bool = True) -> None:
        self.codec = MessageCodec()
        self.strict = strict
        self.emulating = False
        self.current_core = 0
        self.instructions_retired = 0
        self.cycles_completed = 0
        self.filtered_transactions = 0  # traffic dropped outside the window
        self.messages_seen = 0
        self.anomalies: dict[str, int] = {}  # recovered anomaly counts

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict[str, object]:
        """Full AF session state for a checkpoint."""
        return {
            "strict": self.strict,
            "codec": self.codec.state_dict(),
            "emulating": self.emulating,
            "current_core": self.current_core,
            "instructions_retired": self.instructions_retired,
            "cycles_completed": self.cycles_completed,
            "filtered_transactions": self.filtered_transactions,
            "messages_seen": self.messages_seen,
            "anomalies": dict(self.anomalies),
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        """Restore AF session state captured by :meth:`state_dict`.

        Restoring ``emulating=True`` directly — rather than replaying a
        START message — matters: a START resets the session counters,
        which would erase exactly the progress being resumed.
        """
        from repro.errors import CheckpointError

        if bool(state["strict"]) != self.strict:
            raise CheckpointError(
                f"checkpoint AF mode (strict={state['strict']}) does not "
                f"match this filter (strict={self.strict})"
            )
        self.codec.load_state_dict(state["codec"])  # type: ignore[arg-type]
        self.emulating = bool(state["emulating"])
        self.current_core = int(state["current_core"])  # type: ignore[arg-type]
        self.instructions_retired = int(state["instructions_retired"])  # type: ignore[arg-type]
        self.cycles_completed = int(state["cycles_completed"])  # type: ignore[arg-type]
        self.filtered_transactions = int(state["filtered_transactions"])  # type: ignore[arg-type]
        self.messages_seen = int(state["messages_seen"])  # type: ignore[arg-type]
        self.anomalies = dict(state["anomalies"])  # type: ignore[arg-type]

    def _anomaly(self, kind: str, description: str) -> bool:
        """Record one anomaly; in strict mode, raise instead.

        Returns True (lenient mode) so call sites read as
        ``if self._anomaly(...): return`` where the recovery is a drop.
        """
        if self.strict:
            raise RecoverableProtocolError(description)
        self.anomalies[kind] = self.anomalies.get(kind, 0) + 1
        return True

    def handle_message(self, address: int) -> Message | None:
        """Decode and apply one protocol message address."""
        try:
            message = self.codec.decode(address)
        except ProtocolError:
            if self.strict:
                raise
            self.anomalies["decode-error"] = self.anomalies.get("decode-error", 0) + 1
            return None
        if message is None:
            return None
        self.messages_seen += 1
        kind = message.kind
        if kind is MessageKind.START_EMULATION:
            if self.emulating:
                # Lenient recovery: the matching STOP was lost; keep the
                # window open and let the session continue.
                self._anomaly(
                    "spurious-start", "START_EMULATION while already emulating"
                )
                return message
            self.emulating = True
            # A new emulation session: the progress counters are
            # session-relative (back-to-back runs restart from zero).
            self.instructions_retired = 0
            self.cycles_completed = 0
        elif kind is MessageKind.STOP_EMULATION:
            if not self.emulating:
                # Lenient recovery: drop the unmatched STOP; the window
                # reopens on the next START.
                self._anomaly("orphan-stop", "STOP_EMULATION while not emulating")
                return message
            self.emulating = False
        elif kind is MessageKind.CORE_ID:
            self.current_core = message.payload
        elif kind is MessageKind.INSTRUCTIONS_RETIRED:
            if message.payload < self.instructions_retired:
                # Lenient recovery: a reordered counter message; keep
                # the monotone high-water mark.
                self._anomaly(
                    "counter-regression",
                    "instructions-retired counter moved backwards: "
                    f"{message.payload} < {self.instructions_retired}",
                )
                return message
            self.instructions_retired = message.payload
        elif kind is MessageKind.CYCLES_COMPLETED:
            if message.payload < self.cycles_completed:
                self._anomaly(
                    "counter-regression",
                    "cycles-completed counter moved backwards: "
                    f"{message.payload} < {self.cycles_completed}",
                )
                return message
            self.cycles_completed = message.payload
        return message


@dataclass
class PerformanceData:
    """What the host reads from the CB board."""

    config: DragonheadConfig
    stats: CacheStats
    instructions_retired: int
    cycles_completed: int
    samples: list[WindowSample] = field(default_factory=list)
    filtered_transactions: int = 0
    #: Anomalies the emulator recovered from (lenient mode only; empty
    #: on a strict, fault-free run).
    degradation: tuple[DegradationRecord, ...] = ()

    @property
    def mpki(self) -> float:
        """Misses per 1000 retired instructions, the paper's metric."""
        return self.stats.mpki(self.instructions_retired)

    @property
    def miss_ratio(self) -> float:
        return self.stats.miss_ratio


class DragonheadEmulator:
    """The full emulator: AF in front of four CC banks, CB collecting.

    Attach to a :class:`~repro.core.fsb.FrontSideBus` as a snooper, or
    feed it trace chunks directly via :meth:`snoop_chunk`.

    ``strict=False`` selects the lenient channel model: the AF
    resynchronizes over protocol anomalies and the sampler interpolates
    missed stat windows, with every recovery reported through
    :attr:`degradation` instead of an exception — how the physical
    platform, which could not raise on a flaky bus, had to behave.
    """

    def __init__(self, config: DragonheadConfig, strict: bool = True) -> None:
        self.strict = strict
        self._oracle = None
        self._build(config)

    def _build(self, config: DragonheadConfig) -> None:
        """(Re)program the FPGAs: fresh AF, CC banks, and CB sampler."""
        self.config = config
        self.af = AddressFilter(strict=self.strict)
        self.banks = [
            SetAssociativeCache(config.bank_config(bank)) for bank in range(NUM_BANKS)
        ]
        self.sampler = self._new_sampler()
        self._line_shift = config.line_size.bit_length() - 1

    def _new_sampler(self) -> WindowSampler:
        """A fresh CB sampler, tapped into the live window stream.

        With telemetry off the tap is None and the sampler behaves as an
        untapped one; with it on, every closed 500 µs window publishes
        into the registry under this emulator's geometry label — the
        software analog of the host's periodic CB read.
        """
        return WindowSampler(
            frequency_hz=self.config.frequency_hz,
            interval_us=self.config.host_read_interval_us,
            interpolate=not self.strict,
            on_sample=telemetry.window_publisher(
                f"{format_size(self.config.cache_size)}/{self.config.line_size}B",
                self.config.line_size,
                self.config.frequency_hz,
            ),
        )

    # -- snooping -------------------------------------------------------

    def snoop(self, transaction) -> None:
        """Observe one bus transaction (message or data)."""
        address = transaction.address
        if MessageCodec.is_message(address):
            self._apply_message(address)
            return
        if not self.af.emulating:
            self.af.filtered_transactions += 1
            return
        if self._oracle is not None:
            self._oracle.observe(
                np.array([address >> self._line_shift], dtype=np.uint64)
            )
        self._access(address, transaction.kind, self.af.current_core)

    def snoop_chunk(self, chunk: TraceChunk) -> None:
        """Observe a chunk of data transactions.

        Chunks never span DEX slice boundaries (the scheduler emits
        CORE_ID messages between slices), so the AF's current core id
        applies to the whole chunk.
        """
        if not self.af.emulating:
            self.af.filtered_transactions += len(chunk)
            return
        if not len(chunk):
            return
        lines = chunk.lines(self.config.line_size)
        if self._oracle is not None:
            self._oracle.observe(lines)
        self._banked_probe(lines, chunk.kinds, self.af.current_core)

    def snoop_batch(self, chunk: TraceChunk) -> None:
        """Observe a core-tagged batch of data transactions.

        Unlike :meth:`snoop_chunk`, the chunk's per-access ``cores``
        tags are honoured, so one batch may span what would otherwise
        be several CORE_ID-delimited chunks.  Per-bank access order is
        the stream order (stable grouping), so CC bank state evolves
        exactly as it would under per-chunk dispatch.
        """
        if not self.af.emulating:
            self.af.filtered_transactions += len(chunk)
            return
        if not len(chunk):
            return
        lines = chunk.lines(self.config.line_size)
        if self._oracle is not None:
            self._oracle.observe(lines)
        self._banked_probe(lines, chunk.kinds, chunk.cores)

    def _banked_probe(self, lines, kinds, cores, collect_hits: bool = False):
        """Route one line batch to the CC banks, vectorized.

        One stable argsort groups the batch by bank; ``searchsorted``
        over the sorted bank indices yields each bank's contiguous
        slice, probed with a single batch call.  The stable sort
        preserves per-bank access order, which is all LRU state depends
        on — so this is bit-identical to per-access dispatch.

        ``cores`` may be a scalar (whole batch one core) or a
        per-access array.  With ``collect_hits`` the per-access hit
        mask is gathered back to stream order and returned.
        """
        bank_index = (lines & _BANK_MASK).astype(np.uint8)
        order = np.argsort(bank_index, kind="stable")
        sorted_banks = bank_index[order]
        bounds = np.searchsorted(
            sorted_banks, np.arange(NUM_BANKS + 1, dtype=np.uint8), side="left"
        )
        sorted_lines = lines[order] >> _BANK_SHIFT_U64
        sorted_kinds = kinds[order]
        per_access_cores = not np.isscalar(cores) and getattr(cores, "ndim", 0) > 0
        sorted_cores = cores[order] if per_access_cores else cores
        hits_sorted = np.empty(len(lines), dtype=bool) if collect_hits else None
        for b in range(NUM_BANKS):
            lo, hi = int(bounds[b]), int(bounds[b + 1])
            if lo == hi:
                continue
            bank_cores = sorted_cores[lo:hi] if per_access_cores else sorted_cores
            if collect_hits:
                hits_sorted[lo:hi] = self.banks[b].probe_lines_batch(
                    sorted_lines[lo:hi], sorted_kinds[lo:hi], bank_cores
                )
            else:
                self.banks[b].access_lines_batch(
                    sorted_lines[lo:hi], sorted_kinds[lo:hi], bank_cores
                )
        if not collect_hits:
            return None
        hits = np.empty(len(lines), dtype=bool)
        hits[order] = hits_sorted
        return hits

    def emulate_stream(
        self, chunk: TraceChunk, progress: np.ndarray, filtered: int = 0
    ) -> None:
        """Run one whole emulation session as a single batched pass.

        Equivalent — counter for counter, window for window, LRU state
        for LRU state — to issuing START, then interleaving CORE_ID
        switches, data chunks, and INSTRUCTIONS_RETIRED /
        CYCLES_COMPLETED progress messages per ``progress``, then STOP.

        Args:
            chunk: the full core-tagged data stream of the session.
            progress: int array of shape ``(P, 3)`` — rows of
                ``(offset, instructions, cycles)`` meaning "after
                ``offset`` data accesses, a progress report carrying
                these cumulative counters arrived".  Offsets and both
                counters must be non-decreasing, as any AF-captured
                session satisfies.
            filtered: out-of-window transaction count to restore (what
                the AF dropped before/around the captured session).

        The 500 µs windows are aggregated by ``searchsorted`` over the
        progress series (one cumulative-miss prefix sum supplies every
        window's counters) instead of a per-message clock check.  Only
        available on a strict emulator: the lenient channel model
        (anomaly resynchronization, window interpolation) keeps the
        per-message path.
        """
        if not self.strict:
            raise ConfigurationError(
                "emulate_stream requires a strict emulator; lenient runs "
                "keep the per-message path"
            )
        af = self.af
        if af.emulating:
            raise RecoverableProtocolError("START_EMULATION while already emulating")
        progress = np.asarray(progress, dtype=np.int64).reshape(-1, 3)
        n = len(chunk)
        offsets = progress[:, 0]
        instructions = progress[:, 1]
        cycles = progress[:, 2]
        if len(progress):
            if (
                int(offsets[0]) < 0
                or int(offsets[-1]) > n
                or np.any(np.diff(offsets) < 0)
            ):
                raise ConfigurationError(
                    "progress offsets must be non-decreasing and within the stream"
                )
            if np.any(np.diff(instructions) < 0) or int(instructions[0]) < 0:
                raise RecoverableProtocolError(
                    "instructions-retired counter moved backwards"
                )
            if np.any(np.diff(cycles) < 0) or int(cycles[0]) < 0:
                raise RecoverableProtocolError(
                    "cycles-completed counter moved backwards"
                )
        af.filtered_transactions += int(filtered)
        af.emulating = True
        af.instructions_retired = 0
        af.cycles_completed = 0
        if n:
            lines = chunk.lines(self.config.line_size)
            if self._oracle is not None:
                self._oracle.observe(lines)
            hits = self._banked_probe(
                lines, chunk.kinds, chunk.cores, collect_hits=True
            )
            af.current_core = int(chunk.cores[-1])
            core_messages = 1 + int(
                np.count_nonzero(chunk.cores[1:] != chunk.cores[:-1])
            )
            telemetry.counter("repro_cosim_batched_accesses_total").inc(n)
        else:
            hits = np.empty(0, dtype=bool)
            core_messages = 0
        if len(progress):
            cumulative_misses = np.concatenate(
                ([0], np.cumsum(~hits, dtype=np.int64))
            )
            self.sampler.advance_series(
                cycles, instructions, offsets, cumulative_misses[offsets]
            )
            af.instructions_retired = int(instructions[-1])
            af.cycles_completed = int(cycles[-1])
        # START + STOP + two counter messages per progress report +
        # one CORE_ID per core run (continuation words of wide payloads
        # decode to None and never count).
        af.messages_seen += 2 + 2 * len(progress) + core_messages
        af.emulating = False

    def _access(self, address: int, kind: AccessKind, core: int) -> None:
        line = address >> self._line_shift
        bank = self.banks[line % NUM_BANKS]
        bank.access_line(line >> BANK_SHIFT, kind, core)

    def _apply_message(self, address: int) -> None:
        message = self.af.handle_message(address)
        if message is None:
            return
        if message.kind is MessageKind.CYCLES_COMPLETED:
            self.sampler.advance(
                self.af.cycles_completed, self.af.instructions_retired, self.stats
            )

    # -- audit oracle -----------------------------------------------------

    def attach_oracle(self, tap) -> None:
        """Hook a differential-oracle tap into the snoop path.

        The tap sees exactly the line-number stream the CC banks see —
        after the AF's window gating, so the oracle and the banks stay
        access-for-access aligned.  Pass ``None`` to detach.
        """
        self._oracle = tap

    @property
    def oracle(self):
        """The attached differential-oracle tap, if any."""
        return self._oracle

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> dict[str, object]:
        """Full emulator state (AF + CC banks + CB sampler + oracle)."""
        state: dict[str, object] = {
            "config": self.config,
            "af": self.af.state_dict(),
            "banks": [bank.state_dict() for bank in self.banks],
            "sampler": self.sampler.state_dict(),
        }
        if self._oracle is not None:
            state["oracle"] = self._oracle.state_dict()
        return state

    def load_state_dict(self, state: dict[str, object]) -> None:
        """Restore emulator state captured by :meth:`state_dict`."""
        from repro.errors import CheckpointError

        if state["config"] != self.config:
            raise CheckpointError(
                f"checkpoint emulator config {state['config']!r} does not "
                f"match this emulator's {self.config!r}"
            )
        self.af.load_state_dict(state["af"])  # type: ignore[arg-type]
        banks = state["banks"]
        if len(banks) != len(self.banks):  # type: ignore[arg-type]
            raise CheckpointError(
                f"checkpoint has {len(banks)} CC banks, expected {len(self.banks)}"  # type: ignore[arg-type]
            )
        for bank, bank_state in zip(self.banks, banks):  # type: ignore[arg-type]
            bank.load_state_dict(bank_state)
        self.sampler.load_state_dict(state["sampler"])  # type: ignore[arg-type]
        if self._oracle is not None:
            if "oracle" not in state:
                raise CheckpointError(
                    "checkpoint was written without an audit oracle but this "
                    "run audits; rerun without --audit or from scratch"
                )
            self._oracle.load_state_dict(state["oracle"])

    # -- control-board interface -----------------------------------------

    @property
    def stats(self) -> CacheStats:
        """Aggregate counters across the four CC banks (what CB collects)."""
        total = CacheStats()
        for bank in self.banks:
            total = total.merge(bank.stats)
        return total

    @property
    def degradation(self) -> tuple[DegradationRecord, ...]:
        """Recovered-anomaly records from the AF and the CB sampler."""
        counts = dict(self.af.anomalies)
        if self.sampler.interpolated_windows:
            counts["window-interpolated"] = self.sampler.interpolated_windows
        return records_from_counts(counts, RECOVERED)

    def read_performance_data(self) -> PerformanceData:
        """The host's CB read: configuration, counters, window samples."""
        self.sampler.finalize(
            self.af.cycles_completed, self.af.instructions_retired, self.stats
        )
        return PerformanceData(
            config=self.config,
            stats=self.stats,
            instructions_retired=self.af.instructions_retired,
            cycles_completed=self.af.cycles_completed,
            samples=list(self.sampler.samples),
            filtered_transactions=self.af.filtered_transactions,
            degradation=self.degradation,
        )

    def reset_statistics(self) -> None:
        """Clear the CB counters without flushing cache state.

        The host uses this to exclude warm-up: run a prefix of the
        workload, clear, then measure steady-state behaviour.
        """
        for bank in self.banks:
            bank.reset_stats()
        self.sampler = self._new_sampler()

    def reconfigure(self, config: DragonheadConfig) -> None:
        """Reprogram the FPGAs with a new cache configuration.

        Rebuilds the AF, the CC banks, and the CB sampler explicitly
        (rather than re-running ``__init__`` on a live object), so no
        emulation state — counters, residency, window samples, or the
        AF's session flags — can survive a reconfiguration.
        """
        self._build(config)
