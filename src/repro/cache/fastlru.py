"""Batched exact-LRU kernel for chunked trace replay.

The per-access simulation path (``LRUPolicy.lookup`` driven from a
Python ``for`` loop) spends most of its time on interpreter overhead:
one method call, one ``list.remove`` scan of up to ``associativity``
elements, and several numpy scalar extractions per access.
:class:`FastLRUKernel` replaces that with a kernel that processes a
whole :class:`~repro.trace.record.TraceChunk` per call:

* address-to-line and line-to-set arithmetic happens once, vectorized,
  on the chunk's numpy arrays;
* the inherently sequential recency updates run over native Python ints
  (one ``ndarray.tolist`` bulk conversion) against per-set insertion-
  ordered dicts, so every lookup, touch, and eviction is O(1) instead
  of an O(associativity) list scan;
* the per-access outcomes come back as a hit mask plus eviction count,
  so statistics accounting (:meth:`repro.cache.stats.CacheStats.
  note_batch`) is vectorized too.

The logical state is the classic timestamp matrix — ``tags[num_sets,
associativity]`` with ``stamps[num_sets, associativity]`` recording the
recency order — and :meth:`tag_matrix` / :meth:`stamp_matrix`
materialize exactly that view for inspection and tests.  Internally
each set's (tag, stamp) row is stored as one insertion-ordered dict
(LRU first, MRU last), which is the same structure with the stamps kept
implicit: CPython dicts preserve insertion order, making
delete-and-reinsert the fastest recency update available without a C
extension.

Two further optimizations matter on real chunk shapes:

* Consecutive same-line repeats are collapsed before the loop.  A
  chunk access whose (set, tag) equals the immediately-previous
  access's is always an MRU hit that leaves the LRU state untouched:
  the previous access left the tag at the MRU end, and an eviction
  never removes the tag just inserted (the victim is the LRU head, and
  a set that evicts holds at least two tags).  Strided scans — the
  dominant pattern in the paper's workloads — repeat each line
  ``line_size/stride`` times back to back, so this one vectorized
  compare removes most of their accesses from the Python loop.
* The per-set container is chosen by geometry.  Plain dicts are
  fastest for normal associativities, but their eviction pattern
  (delete the head, insert at the tail) leaves tombstones that
  ``next(iter(...))`` must scan past, which for huge single-set
  caches (the fully-associative oracle) degrades evictions to ~O(n)
  until the next rehash.  ``collections.OrderedDict`` keeps a real
  linked list, making head removal O(1) at any size, and accepts the
  exact same dict operations — so sets wider than
  ``_ORDERED_SET_MIN_ASSOC`` ways use it instead.

The kernel is an exact drop-in for :class:`~repro.cache.replacement.
LRUPolicy`: identical hits, identical victims, identical order, plus
the full scalar :class:`~repro.cache.replacement.ReplacementPolicy`
interface (``lookup``/``contains``/``invalidate``/``flush``/
``resident_tags``), so the coherence, victim-cache, and write-back
layers that inspect recency order keep working unchanged.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.cache.replacement import ReplacementPolicy

#: Sentinel used in the exported tag matrix for empty ways.
EMPTY_WAY = -1

#: Miss sentinel for the pop-then-reinsert hit test: stored way values
#: are always ``None``, so ``ways.pop(tag, _ABSENT) is None`` decides
#: hit/miss in a single hash probe.
_ABSENT = object()

#: Above this many ways a set uses ``OrderedDict`` instead of ``dict``:
#: plain-dict eviction cost is amortized O(associativity) (tombstone
#: scan), OrderedDict's is O(1) but each access pays a little more.
#: Measured on the throughput benchmark: dict wins 13.8ms vs 19.0ms at
#: 16 ways, OrderedDict wins 14.2ms vs 239ms at 16384 ways.
_ORDERED_SET_MIN_ASSOC = 128


@dataclass(frozen=True, slots=True)
class BatchResult:
    """Outcome of one :meth:`FastLRUKernel.lookup_batch` call.

    Attributes:
        hits: boolean per-access hit mask, in chunk order.
        evictions: number of capacity evictions the batch caused.
        victims: per-access evicted tag (``EMPTY_WAY`` where the access
            evicted nothing); only populated when the batch was run with
            ``collect_victims=True``, else None.
    """

    hits: np.ndarray
    evictions: int
    victims: np.ndarray | None = None

    @property
    def misses(self) -> int:
        return int(self.hits.size - np.count_nonzero(self.hits))


class FastLRUKernel(ReplacementPolicy):
    """Exact LRU with O(1) scalar operations and a batched lookup path."""

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self._set_factory = (
            OrderedDict if associativity > _ORDERED_SET_MIN_ASSOC else dict
        )
        # Per-set dicts are allocated lazily on first touch: a design-
        # space sweep replays one short trace through many large
        # geometries, and eagerly building (say) 16 k dicts per 64 MB
        # bank costs more than the replay itself.  ``None`` marks a
        # never-touched (empty) set.
        self._sets: list[dict[int, None] | None] = [None] * num_sets

    # -- scalar path (ReplacementPolicy interface) ----------------------

    def lookup(self, set_index: int, tag: int) -> tuple[bool, int | None]:
        ways = self._sets[set_index]
        if ways is None:
            ways = self._sets[set_index] = self._set_factory()
        if tag in ways:
            del ways[tag]
            ways[tag] = None
            return True, None
        ways[tag] = None
        if len(ways) > self.associativity:
            victim = next(iter(ways))
            del ways[victim]
            return False, victim
        return False, None

    def contains(self, set_index: int, tag: int) -> bool:
        ways = self._sets[set_index]
        return ways is not None and tag in ways

    def invalidate(self, set_index: int, tag: int) -> bool:
        ways = self._sets[set_index]
        if ways is not None and tag in ways:
            del ways[tag]
            return True
        return False

    def flush(self) -> None:
        self._sets = [None] * self.num_sets

    def resident_tags(self, set_index: int) -> list[int]:
        """LRU→MRU tags of one set (same contract as ``LRUPolicy``)."""
        ways = self._sets[set_index]
        return [] if ways is None else list(ways)

    # -- batched path ---------------------------------------------------

    def lookup_batch(
        self,
        tags: np.ndarray,
        set_indices: np.ndarray | None = None,
        *,
        collect_victims: bool = False,
    ) -> BatchResult:
        """Replay a whole chunk of accesses through the LRU state.

        Args:
            tags: line numbers (``uint64``), one per access, chunk order.
            set_indices: set index per access; None means every access
                maps to set 0 (the fully-associative case).
            collect_victims: also record the evicted tag per access,
                for the exact-equivalence differential tests.

        Returns:
            A :class:`BatchResult` whose outcomes are identical, access
            by access, to calling :meth:`lookup` in a loop.
        """
        tag_arr = np.asarray(tags)
        n = int(tag_arr.size)
        set_arr = None if set_indices is None else np.asarray(set_indices)
        # Collapse consecutive same-(set, tag) repeats: each is an MRU
        # hit with no eviction and no state change (see module docstring
        # for why), so only the first access of a run enters the loop.
        keep = None
        if n > 1:
            repeat = np.empty(n, dtype=bool)
            repeat[0] = False
            np.equal(tag_arr[1:], tag_arr[:-1], out=repeat[1:])
            if set_arr is not None:
                repeat[1:] &= set_arr[1:] == set_arr[:-1]
            if repeat.any():
                keep = ~repeat
                tag_arr = tag_arr[keep]
                if set_arr is not None:
                    set_arr = set_arr[keep]
        tag_list = tag_arr.tolist()
        hits: list[bool] = []
        note_hit = hits.append
        evictions = 0
        assoc = self.associativity
        sets = self._sets
        if collect_victims:
            victims: list[int] = []
            note_victim = victims.append
            if set_arr is None:
                pairs = ((0, tag) for tag in tag_list)
            else:
                pairs = zip(set_arr.tolist(), tag_list)
            for set_index, tag in pairs:
                ways = sets[set_index]
                if ways is None:
                    ways = sets[set_index] = self._set_factory()
                # pop-then-reinsert: one hash probe fewer per hit than
                # membership-test + delete + insert, same LRU order.
                if ways.pop(tag, _ABSENT) is None:
                    ways[tag] = None
                    note_hit(True)
                    note_victim(EMPTY_WAY)
                    continue
                ways[tag] = None
                note_hit(False)
                if len(ways) > assoc:
                    victim = next(iter(ways))
                    del ways[victim]
                    evictions += 1
                    note_victim(victim)
                else:
                    note_victim(EMPTY_WAY)
            hit_arr = np.array(hits, dtype=bool)
            victim_arr = np.array(victims, dtype=np.int64)
            if keep is not None:
                full_hits = np.ones(n, dtype=bool)
                full_hits[keep] = hit_arr
                full_victims = np.full(n, EMPTY_WAY, dtype=np.int64)
                full_victims[keep] = victim_arr
                hit_arr, victim_arr = full_hits, full_victims
            return BatchResult(hits=hit_arr, evictions=evictions, victims=victim_arr)
        if set_arr is None:
            ways = sets[0]
            if ways is None:
                ways = sets[0] = self._set_factory()
            for tag in tag_list:
                if ways.pop(tag, _ABSENT) is None:
                    ways[tag] = None
                    note_hit(True)
                else:
                    ways[tag] = None
                    note_hit(False)
                    if len(ways) > assoc:
                        del ways[next(iter(ways))]
                        evictions += 1
        else:
            for set_index, tag in zip(set_arr.tolist(), tag_list):
                ways = sets[set_index]
                if ways is None:
                    ways = sets[set_index] = self._set_factory()
                if ways.pop(tag, _ABSENT) is None:
                    ways[tag] = None
                    note_hit(True)
                else:
                    ways[tag] = None
                    note_hit(False)
                    if len(ways) > assoc:
                        del ways[next(iter(ways))]
                        evictions += 1
        hit_arr = np.array(hits, dtype=bool)
        if keep is not None:
            full_hits = np.ones(n, dtype=bool)
            full_hits[keep] = hit_arr
            hit_arr = full_hits
        return BatchResult(hits=hit_arr, evictions=evictions)

    # -- checkpointing --------------------------------------------------

    def resident_count(self) -> int:
        """Total lines currently resident across all sets."""
        return sum(len(ways) for ways in self._sets if ways)

    def dump_state(self) -> dict[str, np.ndarray]:
        """Dense numpy dump of the full directory state.

        Two arrays: ``lengths[num_sets]`` (``int64``, resident lines per
        set; never-touched sets recorded as ``-1`` so lazy allocation
        survives a round trip) and ``tags`` (``uint64``, every resident
        tag concatenated set by set, LRU→MRU within each set).  This is
        the checkpoint representation: two contiguous buffers instead of
        millions of pickled dict entries, and byte-stable for a given
        logical state.
        """
        lengths = np.empty(self.num_sets, dtype=np.int64)
        chunks: list[list[int]] = []
        for set_index, ways in enumerate(self._sets):
            if ways is None:
                lengths[set_index] = -1
            else:
                lengths[set_index] = len(ways)
                if ways:
                    chunks.append(list(ways))
        if chunks:
            tags = np.fromiter(
                (tag for chunk in chunks for tag in chunk),
                dtype=np.uint64,
                count=sum(len(chunk) for chunk in chunks),
            )
        else:
            tags = np.empty(0, dtype=np.uint64)
        return {"lengths": lengths, "tags": tags}

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore the directory from a :meth:`dump_state` dump."""
        lengths = np.asarray(state["lengths"], dtype=np.int64)
        tags = np.asarray(state["tags"], dtype=np.uint64)
        if lengths.size != self.num_sets:
            from repro.errors import CheckpointError

            raise CheckpointError(
                f"checkpoint directory has {lengths.size} sets, "
                f"this kernel has {self.num_sets}"
            )
        sets: list[dict[int, None] | None] = [None] * self.num_sets
        factory = self._set_factory
        tag_list = tags.tolist()
        offset = 0
        for set_index, length in enumerate(lengths.tolist()):
            if length < 0:
                continue
            ways = factory()
            for tag in tag_list[offset : offset + length]:
                ways[tag] = None
            offset += length
            sets[set_index] = ways
        self._sets = sets

    # -- timestamp-matrix view -----------------------------------------

    def tag_matrix(self) -> np.ndarray:
        """``tags[num_sets, associativity]``, LRU→MRU, ``EMPTY_WAY`` padded."""
        matrix = np.full((self.num_sets, self.associativity), EMPTY_WAY, dtype=np.int64)
        for set_index, ways in enumerate(self._sets):
            if ways:
                matrix[set_index, : len(ways)] = list(ways)
        return matrix

    def stamp_matrix(self) -> np.ndarray:
        """``stamps[num_sets, associativity]``: recency rank per way.

        0 is least-recently used; empty ways carry ``EMPTY_WAY``.  The
        ranks are relative (what LRU ordering needs), not absolute
        access times.
        """
        matrix = np.full((self.num_sets, self.associativity), EMPTY_WAY, dtype=np.int64)
        for set_index, ways in enumerate(self._sets):
            n = 0 if ways is None else len(ways)
            if n:
                matrix[set_index, :n] = np.arange(n, dtype=np.int64)
        return matrix

    def __repr__(self) -> str:
        resident = sum(len(ways) for ways in self._sets if ways is not None)
        return (
            f"FastLRUKernel(sets={self.num_sets}, assoc={self.associativity}, "
            f"resident={resident})"
        )
