"""Two-level cache hierarchy: private L1s feeding a shared LLC.

Table 2 of the paper was gathered on a Pentium 4 with an 8 KB L1 data
cache and a 512 KB L2; the CMP studies use per-core L1s with Dragonhead
emulating the shared last-level cache.  This module provides the
composition: each core owns an L1; L1 misses are forwarded to the shared
LLC, so LLC statistics reflect the post-L1 miss stream — the same stream
Dragonhead observes on the front-side bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.errors import ConfigurationError
from repro.trace.record import AccessKind, TraceChunk
from repro.units import KB


@dataclass(frozen=True, slots=True)
class HierarchyConfig:
    """Configuration of the L1 + shared LLC hierarchy.

    ``l1`` is instantiated once per core; ``llc`` is shared.  L1s are
    write-through no-write-allocate by default (writes always propagate
    to the LLC, write misses do not allocate in L1) — the simplest
    policy consistent with a passive bus-snooping LLC emulator seeing
    all write traffic.
    """

    l1: CacheConfig
    llc: CacheConfig
    cores: int = 1
    write_allocate_l1: bool = False
    #: When True, L1s are write-back write-allocate: writes dirty the L1
    #: line and reach the LLC only when the dirty line is evicted —
    #: trading LLC write traffic for writeback bursts.  The default
    #: write-through mode matches what a passive bus snooper observes.
    write_back_l1: bool = False

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError(f"cores must be positive, got {self.cores}")
        if self.l1.line_size > self.llc.line_size:
            raise ConfigurationError(
                "L1 line size must not exceed LLC line size "
                f"({self.l1.line_size} > {self.llc.line_size})"
            )

    @classmethod
    def pentium4_like(cls) -> "HierarchyConfig":
        """The Table 2 measurement machine: 8 KB L1, 512 KB L2."""
        return cls(
            l1=CacheConfig(size=8 * KB, line_size=64, associativity=4, name="DL1"),
            llc=CacheConfig(size=512 * KB, line_size=64, associativity=8, name="DL2"),
            cores=1,
        )

    @classmethod
    def cmp(cls, cores: int, llc_size: int, llc_line: int = 64) -> "HierarchyConfig":
        """A CMP with 32 KB per-core L1s and a shared LLC (Figures 4-7)."""
        assoc = 16
        # Keep geometry legal for small LLCs and very large lines.
        while llc_size % (llc_line * assoc) or (llc_size // (llc_line * assoc)) & (
            llc_size // (llc_line * assoc) - 1
        ):
            assoc //= 2
            if assoc == 0:
                raise ConfigurationError(
                    f"cannot find legal associativity for size={llc_size} line={llc_line}"
                )
        return cls(
            l1=CacheConfig(size=32 * KB, line_size=64, associativity=8, name="L1"),
            llc=CacheConfig(
                size=llc_size, line_size=llc_line, associativity=assoc, name="LLC"
            ),
            cores=cores,
        )


@dataclass(slots=True)
class HierarchyResult:
    """Statistics of one hierarchy run."""

    l1: list[CacheStats] = field(default_factory=list)
    llc: CacheStats = field(default_factory=CacheStats)
    accesses: int = 0

    @property
    def l1_total(self) -> CacheStats:
        total = CacheStats()
        for stats in self.l1:
            total = total.merge(stats)
        return total


class CacheHierarchy:
    """Per-core L1 caches in front of one shared LLC."""

    def __init__(self, config: HierarchyConfig) -> None:
        self.config = config
        self.l1s = [
            SetAssociativeCache(config.l1) for _ in range(config.cores)
        ]
        self.llc = SetAssociativeCache(config.llc)
        #: Dirty-line writebacks delivered to the LLC (write-back mode).
        self.writebacks = 0
        self._dirty: list[set[int]] = [set() for _ in range(config.cores)]

    def access(self, address: int, kind: AccessKind = AccessKind.READ, core: int = 0) -> bool:
        """Issue one access from ``core``; returns True when L1 hits."""
        if not 0 <= core < self.config.cores:
            raise ConfigurationError(
                f"core {core} out of range for {self.config.cores}-core hierarchy"
            )
        l1 = self.l1s[core]
        if self.config.write_back_l1:
            return self._access_write_back(l1, address, kind, core)
        if kind == AccessKind.WRITE and not self.config.write_allocate_l1:
            # Write-through, no-write-allocate: update L1 only if present,
            # and always send the write to the LLC.
            line = address >> l1._line_shift
            if l1.contains_line(line):
                l1.access_line(line, kind, core)
            else:
                l1.stats.note_access(core, False, False)
            self.llc.access(address, kind, core)
            return False
        hit = l1.access(address, kind, core)
        if not hit:
            self.llc.access(address, kind, core)
        return hit

    def _access_write_back(
        self, l1: SetAssociativeCache, address: int, kind: AccessKind, core: int
    ) -> bool:
        """Write-back write-allocate L1: LLC sees misses and writebacks."""
        line = address >> l1._line_shift
        dirty = self._dirty[core]
        # Capture the victim before the access installs the new line.
        set_index = line & l1._set_mask
        victim = None
        policy = l1._policy
        if hasattr(policy, "resident_tags") and not l1.contains_line(line):
            tags = policy.resident_tags(set_index)
            if len(tags) == l1.config.associativity:
                victim = tags[0]
        hit = l1.access_line(line, kind, core)
        if kind == AccessKind.WRITE:
            dirty.add(line)
        if victim is not None and victim in dirty:
            dirty.discard(victim)
            self.writebacks += 1
            self.llc.access_line(victim, AccessKind.WRITE, core)
        if not hit:
            self.llc.access_line(line, AccessKind.READ, core)
        return hit

    def access_chunk(self, chunk: TraceChunk) -> None:
        """Process a core-tagged trace chunk through the hierarchy."""
        addresses = chunk.addresses
        kinds = chunk.kinds
        cores = chunk.cores
        for i in range(len(chunk)):
            self.access(int(addresses[i]), AccessKind(int(kinds[i])), int(cores[i]))

    def access_stream(self, stream) -> HierarchyResult:
        """Drain a trace stream; returns per-level statistics."""
        total = 0
        for chunk in stream:
            self.access_chunk(chunk)
            total += len(chunk)
        return HierarchyResult(
            l1=[c.stats for c in self.l1s], llc=self.llc.stats, accesses=total
        )

    def result(self) -> HierarchyResult:
        return HierarchyResult(
            l1=[c.stats for c in self.l1s],
            llc=self.llc.stats,
            accesses=sum(c.stats.accesses for c in self.l1s),
        )
