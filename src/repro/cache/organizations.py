"""Shared versus private last-level-cache organizations.

The paper's related work is full of this design question — Liu et al.
(private LLC allocation), Chishti et al. (replication/capacity trade),
Zhang & Asanovic (victim replication), and Nurvitadhi et al.'s PHA$E
study of "shared vs private L3 cache behavior".  The paper itself
emulates one shared LLC; this module extends the substrate so the same
workload models answer the shared-versus-private question:

* **shared** — one LLC of capacity ``C`` serves all cores: private
  working sets dilate into each other (the baseline everywhere else in
  this repository);
* **private** — each core owns ``C / cores``: private data enjoys an
  interference-free slice, but shared structures are *replicated* into
  every slice, wasting aggregate capacity.

Both organizations are evaluated analytically from the same calibrated
components: per-component miss rates under the organization's effective
capacity and dilation rules.  The classic result — private wins for
private-heavy workloads at small scale, shared wins once replication
waste dominates — falls out of the paper's own workload taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.workloads.models import WorkloadMemoryModel
from repro.workloads.profiles import memory_model


@dataclass(frozen=True)
class OrganizationComparison:
    """Shared versus private LLC MPKI for one workload/geometry."""

    workload: str
    cores: int
    total_capacity: int
    shared_mpki: float
    private_mpki: float

    @property
    def private_wins(self) -> bool:
        return self.private_mpki < self.shared_mpki

    @property
    def winner(self) -> str:
        return "private" if self.private_wins else "shared"


def shared_llc_mpki(
    model: WorkloadMemoryModel, total_capacity: int, cores: int, line_size: int = 64
) -> float:
    """One shared LLC: the baseline model."""
    return model.llc_mpki(total_capacity, line_size, cores)


def private_llc_mpki(
    model: WorkloadMemoryModel, total_capacity: int, cores: int, line_size: int = 64
) -> float:
    """Per-core private LLCs of ``total_capacity / cores`` each.

    Per component:

    * private structures see a single-thread profile against the
      per-core slice (no cross-thread dilation — the organization's
      whole point);
    * shared structures are replicated per core: each slice must hold
      its own copy, so the component competes for ``capacity / cores``
      exactly as it would in a small single-core cache.
    """
    if cores <= 0:
        raise ConfigurationError(f"cores must be positive, got {cores}")
    slice_capacity = total_capacity / cores
    mpki = 0.0
    for component in model.components:
        profile = component.profile(line_size, threads=1)
        mpki += profile.miss_rate(slice_capacity / line_size)
    return mpki


def compare_organizations(
    workload: str, total_capacity: int, cores: int, line_size: int = 64
) -> OrganizationComparison:
    """Evaluate both organizations for one workload."""
    model = memory_model(workload)
    return OrganizationComparison(
        workload=workload,
        cores=cores,
        total_capacity=total_capacity,
        shared_mpki=shared_llc_mpki(model, total_capacity, cores, line_size),
        private_mpki=private_llc_mpki(model, total_capacity, cores, line_size),
    )


def organization_study(
    total_capacity: int, cores: int, line_size: int = 64
) -> list[OrganizationComparison]:
    """Shared-versus-private across all eight workloads."""
    from repro.workloads.profiles import WORKLOAD_NAMES

    return [
        compare_organizations(name, total_capacity, cores, line_size)
        for name in WORKLOAD_NAMES
    ]
