"""Hardware stride prefetcher.

Section 4.4 of the paper measures the benefit of the Xeon's stride-based
hardware prefetcher.  This module implements the classic
reference-prediction-table design: streams are tracked per program
counter (per core); after a stride repeats, the prefetcher enters a
steady state and issues ``degree`` prefetches ahead of the demand
stream, in either direction (the paper notes forward *and* backward
linear patterns).

:class:`PrefetchingCache` wraps any :class:`SetAssociativeCache` and
feeds prefetched lines into it, so prefetch *coverage* (fraction of
would-be misses eliminated) and *accuracy* (fraction of prefetched lines
actually used) are measured directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cache.cache import SetAssociativeCache
from repro.errors import ConfigurationError
from repro.trace.record import AccessKind, TraceChunk


class StreamState(enum.Enum):
    """Reference-prediction-table entry states (Chen & Baer style)."""

    INITIAL = "initial"
    TRANSIENT = "transient"
    STEADY = "steady"


@dataclass(slots=True)
class StreamEntry:
    last_address: int
    stride: int = 0
    state: StreamState = StreamState.INITIAL


@dataclass(slots=True)
class PrefetchStats:
    """Prefetcher effectiveness counters."""

    issued: int = 0
    useful: int = 0
    demand_hits_on_prefetch: int = 0

    @property
    def accuracy(self) -> float:
        return self.useful / self.issued if self.issued else 0.0


class StridePrefetcher:
    """Per-PC stride detection with a bounded prediction table."""

    def __init__(self, table_size: int = 256, degree: int = 2, max_stride: int = 4096) -> None:
        if table_size <= 0 or degree <= 0:
            raise ConfigurationError("table_size and degree must be positive")
        self.table_size = table_size
        self.degree = degree
        self.max_stride = max_stride
        self._table: dict[int, StreamEntry] = {}
        self.stats = PrefetchStats()

    def observe(self, pc: int, address: int) -> list[int]:
        """Observe a demand access; returns addresses to prefetch."""
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_size:
                # Evict the oldest entry (dict preserves insertion order).
                self._table.pop(next(iter(self._table)))
            self._table[pc] = StreamEntry(last_address=address)
            return []
        stride = address - entry.last_address
        prefetches: list[int] = []
        if stride == 0:
            entry.last_address = address
            return []
        if abs(stride) > self.max_stride:
            entry.last_address = address
            entry.stride = 0
            entry.state = StreamState.INITIAL
            return []
        if stride == entry.stride:
            if entry.state is StreamState.STEADY:
                # In steady state the stream window advances one line per
                # access: issue only the new address `degree` ahead.
                prefetches = [address + stride * self.degree]
            else:
                entry.state = (
                    StreamState.STEADY
                    if entry.state is StreamState.TRANSIENT
                    else StreamState.TRANSIENT
                )
                if entry.state is StreamState.STEADY:
                    # Ramp-up burst: fill the whole lookahead window once.
                    prefetches = [address + stride * (i + 1) for i in range(self.degree)]
        else:
            entry.stride = stride
            entry.state = StreamState.TRANSIENT
        entry.last_address = address
        self.stats.issued += len(prefetches)
        return [p for p in prefetches if p >= 0]

    def reset(self) -> None:
        self._table.clear()
        self.stats = PrefetchStats()


class PrefetchingCache:
    """A cache with an attached stride prefetcher.

    Demand accesses go to the cache as usual; each access also trains
    the prefetcher, whose predictions are installed into the cache as
    non-demand fills.  A shadow set of prefetched-but-unreferenced lines
    tracks accuracy.
    """

    def __init__(self, cache: SetAssociativeCache, prefetcher: StridePrefetcher) -> None:
        self.cache = cache
        self.prefetcher = prefetcher
        self._pending: set[int] = set()
        self.demand_misses_without_prefetch = 0

    def access(
        self, address: int, kind: AccessKind = AccessKind.READ, core: int = 0, pc: int = 0
    ) -> bool:
        line = address >> self.cache._line_shift
        was_resident = self.cache.contains_line(line)
        hit = self.cache.access_line(line, kind, core)
        if not was_resident:
            self.demand_misses_without_prefetch += 1
        if was_resident and line in self._pending:
            self._pending.discard(line)
            self.prefetcher.stats.useful += 1
            self.prefetcher.stats.demand_hits_on_prefetch += 1
        for target in self.prefetcher.observe(pc if pc else core, address):
            target_line = target >> self.cache._line_shift
            if not self.cache.contains_line(target_line):
                self.cache.install_line(target_line)
                self.cache.stats.prefetches += 1
                self._pending.add(target_line)
        return hit

    def access_chunk(self, chunk: TraceChunk) -> None:
        addresses = chunk.addresses
        kinds = chunk.kinds
        cores = chunk.cores
        pcs = chunk.pcs
        for i in range(len(chunk)):
            self.access(
                int(addresses[i]), AccessKind(int(kinds[i])), int(cores[i]), int(pcs[i])
            )

    @property
    def coverage(self) -> float:
        """Fraction of would-be misses eliminated by prefetching.

        ``demand_misses_without_prefetch`` counts lines that were absent
        at access time; the difference between that and a prefetch-free
        run of the same trace is the covered-miss count.  The simpler
        online estimate used here: useful prefetches / (useful
        prefetches + observed misses).
        """
        useful = self.prefetcher.stats.useful
        misses = self.cache.stats.misses
        denominator = useful + misses
        return useful / denominator if denominator else 0.0
