"""Replacement policies for set-associative caches.

Dragonhead implements LRU in its CC FPGAs; we provide LRU as the default
plus tree-PLRU (what real LLCs often approximate LRU with), FIFO, and
random, so the emulator substrate supports policy studies beyond the
paper's configuration.

A policy owns the per-set bookkeeping.  The cache calls
:meth:`ReplacementPolicy.lookup` for each access; the policy reports a
hit or selects a victim way.  Tags are opaque integers.
"""

from __future__ import annotations

import abc
import random


class ReplacementPolicy(abc.ABC):
    """Per-set replacement bookkeeping.

    Subclasses manage ``num_sets`` sets of ``associativity`` ways each.
    """

    def __init__(self, num_sets: int, associativity: int) -> None:
        self.num_sets = num_sets
        self.associativity = associativity

    @abc.abstractmethod
    def lookup(self, set_index: int, tag: int) -> tuple[bool, int | None]:
        """Access ``tag`` in ``set_index``.

        Returns ``(hit, evicted_tag)``: on a hit the tag's recency state
        is updated and ``evicted_tag`` is None; on a miss the tag is
        installed and ``evicted_tag`` is the displaced tag, or None if a
        way was free.
        """

    @abc.abstractmethod
    def contains(self, set_index: int, tag: int) -> bool:
        """Whether ``tag`` currently resides in ``set_index`` (no state change)."""

    @abc.abstractmethod
    def invalidate(self, set_index: int, tag: int) -> bool:
        """Remove ``tag`` from ``set_index``; returns whether it was present."""

    def flush(self) -> None:
        """Drop all cached tags (emulator reconfiguration)."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used, the policy Dragonhead emulates.

    Each set is an ordered list with the MRU tag at the end; hits move
    the tag to the end, misses evict the head.
    """

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self._sets: list[list[int]] = [[] for _ in range(num_sets)]

    def lookup(self, set_index: int, tag: int) -> tuple[bool, int | None]:
        ways = self._sets[set_index]
        try:
            ways.remove(tag)
            ways.append(tag)
            return True, None
        except ValueError:
            pass
        ways.append(tag)
        if len(ways) > self.associativity:
            return False, ways.pop(0)
        return False, None

    def contains(self, set_index: int, tag: int) -> bool:
        return tag in self._sets[set_index]

    def invalidate(self, set_index: int, tag: int) -> bool:
        try:
            self._sets[set_index].remove(tag)
            return True
        except ValueError:
            return False

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]

    def resident_tags(self, set_index: int) -> list[int]:
        """LRU→MRU tags of one set (for tests and the coherence layer)."""
        return list(self._sets[set_index])


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: hits do not update recency."""

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self._sets: list[list[int]] = [[] for _ in range(num_sets)]

    def lookup(self, set_index: int, tag: int) -> tuple[bool, int | None]:
        ways = self._sets[set_index]
        if tag in ways:
            return True, None
        ways.append(tag)
        if len(ways) > self.associativity:
            return False, ways.pop(0)
        return False, None

    def contains(self, set_index: int, tag: int) -> bool:
        return tag in self._sets[set_index]

    def invalidate(self, set_index: int, tag: int) -> bool:
        try:
            self._sets[set_index].remove(tag)
            return True
        except ValueError:
            return False

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]


class RandomPolicy(ReplacementPolicy):
    """Random victim selection with a deterministic seed."""

    def __init__(self, num_sets: int, associativity: int, seed: int = 0) -> None:
        super().__init__(num_sets, associativity)
        self._sets: list[list[int]] = [[] for _ in range(num_sets)]
        self._rng = random.Random(seed)

    def lookup(self, set_index: int, tag: int) -> tuple[bool, int | None]:
        ways = self._sets[set_index]
        if tag in ways:
            return True, None
        if len(ways) < self.associativity:
            ways.append(tag)
            return False, None
        victim_index = self._rng.randrange(self.associativity)
        evicted = ways[victim_index]
        ways[victim_index] = tag
        return False, evicted

    def contains(self, set_index: int, tag: int) -> bool:
        return tag in self._sets[set_index]

    def invalidate(self, set_index: int, tag: int) -> bool:
        try:
            self._sets[set_index].remove(tag)
            return True
        except ValueError:
            return False

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]


class TreePLRUPolicy(ReplacementPolicy):
    """Tree pseudo-LRU over a power-of-two associativity.

    Each set keeps ``associativity - 1`` tree bits; an access flips the
    bits along its way's path to point away from it, and the victim is
    found by following the bits from the root.
    """

    def __init__(self, num_sets: int, associativity: int) -> None:
        if associativity & (associativity - 1):
            raise ValueError("TreePLRU requires power-of-two associativity")
        super().__init__(num_sets, associativity)
        self._tags: list[list[int | None]] = [
            [None] * associativity for _ in range(num_sets)
        ]
        self._bits: list[list[int]] = [
            [0] * max(1, associativity - 1) for _ in range(num_sets)
        ]

    def _touch(self, set_index: int, way: int) -> None:
        bits = self._bits[set_index]
        node = 0
        span = self.associativity
        while span > 1:
            half = span // 2
            go_right = way >= half
            bits[node] = 0 if go_right else 1  # point away from touched way
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                way -= half
            span = half

    def _victim(self, set_index: int) -> int:
        bits = self._bits[set_index]
        node = 0
        way = 0
        span = self.associativity
        while span > 1:
            half = span // 2
            go_right = bits[node] == 1
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                way += half
            span = half
        return way

    def lookup(self, set_index: int, tag: int) -> tuple[bool, int | None]:
        tags = self._tags[set_index]
        for way, resident in enumerate(tags):
            if resident == tag:
                self._touch(set_index, way)
                return True, None
        for way, resident in enumerate(tags):
            if resident is None:
                tags[way] = tag
                self._touch(set_index, way)
                return False, None
        way = self._victim(set_index)
        evicted = tags[way]
        tags[way] = tag
        self._touch(set_index, way)
        return False, evicted

    def contains(self, set_index: int, tag: int) -> bool:
        return tag in self._tags[set_index]

    def invalidate(self, set_index: int, tag: int) -> bool:
        tags = self._tags[set_index]
        for way, resident in enumerate(tags):
            if resident == tag:
                tags[way] = None
                return True
        return False

    def flush(self) -> None:
        for tags in self._tags:
            for way in range(self.associativity):
                tags[way] = None
        for bits in self._bits:
            for i in range(len(bits)):
                bits[i] = 0


POLICIES: dict[str, type[ReplacementPolicy]] = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
    "plru": TreePLRUPolicy,
}


def make_policy(name: str, num_sets: int, associativity: int) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (``lru``/``fifo``/``random``/``plru``)."""
    try:
        cls = POLICIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
    return cls(num_sets, associativity)
