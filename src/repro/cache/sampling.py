"""Time- and instruction-synchronized statistic windows.

Section 3.1: "A host computer reads performance data from CB every 500
microseconds."  Section 3.3 explains why the instructions-retired and
cycles-completed messages exist: simulation and emulation run in two
separate time domains, so computing MPKI and miss rates requires
synchronizing counters against both retired instructions and elapsed
cycles.

:class:`WindowSampler` reproduces that mechanism: every time the
emulated clock crosses a 500 µs boundary it snapshots the cache
counters, yielding the per-window series a host reading the CB board
would log.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cache.stats import CacheStats


@dataclass(frozen=True, slots=True)
class WindowSample:
    """Counters accumulated during one host read interval."""

    index: int
    cycles: int
    instructions: int
    accesses: int
    misses: int

    @property
    def mpki(self) -> float:
        """Misses per 1000 instructions within this window."""
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.misses / self.instructions

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class WindowSampler:
    """Samples a :class:`CacheStats` counter block on a cycle schedule.

    Args:
        frequency_hz: emulated platform clock (Dragonhead emulates the
            shared LLC at 100 MHz; the guest cores are faster — the
            clock chosen here only sets the window granularity).
        interval_us: host read interval (paper: 500 µs).
        interpolate: lenient-mode recovery for missed host reads.  When
            one progress report crosses several window boundaries (the
            host skipped a 500 µs poll), the default attributes the
            whole delta to the first window and emits empty windows for
            the rest; with ``interpolate=True`` the delta is spread
            evenly across the missed windows instead, and each repaired
            window is counted in :attr:`interpolated_windows`.
    """

    def __init__(
        self,
        frequency_hz: float = 100e6,
        interval_us: float = 500.0,
        interpolate: bool = False,
        on_sample=None,
    ) -> None:
        window = frequency_hz * interval_us * 1e-6
        self.cycles_per_window = max(1, int(window))
        #: Exact (possibly fractional) window width in cycles.  Keeping
        #: the float and placing boundary k at ``ceil(k * width)`` stops
        #: the series drifting against the host-pull clock when
        #: ``frequency_hz * interval_us`` is not an integral number of
        #: cycles — truncating once and striding by the truncated width
        #: accumulates a full window of error every ``1/frac`` windows.
        #: For integral widths (the 100 MHz x 500 µs default) every
        #: boundary is identical to the old ``k * cycles_per_window``.
        self._window_cycles = max(1.0, float(window))
        self.interpolate = interpolate
        self.interpolated_windows = 0
        self.samples: list[WindowSample] = []
        #: Live-stream hook: called with each closed window's sample,
        #: the same object appended to :attr:`samples` — the software CB
        #: host-pull.  None (the default) costs one test per window.
        self.on_sample = on_sample
        self._last_stats = CacheStats()
        self._last_instructions = 0
        self._last_cycles = 0
        self._window_index = 0
        self._next_boundary = self._boundary(1)

    def _boundary(self, k: int) -> int:
        """Cycle count at which window ``k`` (1-based) closes."""
        return int(math.ceil(k * self._window_cycles))

    def _boundaries_upto(self, cycles_completed: int) -> int:
        """Index of the last window boundary at or before ``cycles_completed``."""
        k = max(0, int(cycles_completed / self._window_cycles))
        while self._boundary(k + 1) <= cycles_completed:
            k += 1
        while k > 0 and self._boundary(k) > cycles_completed:
            k -= 1
        return k

    def _emit(self, sample: WindowSample) -> None:
        """Close one window: accumulate it, then publish it if tapped.

        Every append site routes through here, so a live subscriber sees
        exactly the series :attr:`samples` accumulates — the final
        partial window from :meth:`finalize` included.
        """
        self.samples.append(sample)
        if self.on_sample is not None:
            self.on_sample(sample)

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict[str, object]:
        """Full sampler state for a checkpoint.

        ``cycles_per_window`` and ``interpolate`` come from construction
        and travel along only so :meth:`load_state_dict` can verify the
        resuming run was configured identically — a sampler resumed at a
        different window granularity would integrate to different finals
        and break the bit-identical-resume contract.
        """
        return {
            "cycles_per_window": self.cycles_per_window,
            "window_cycles": self._window_cycles,
            "interpolate": self.interpolate,
            "interpolated_windows": self.interpolated_windows,
            "samples": list(self.samples),
            "last_stats": self._last_stats.snapshot(),
            "last_instructions": self._last_instructions,
            "last_cycles": self._last_cycles,
            "window_index": self._window_index,
            "next_boundary": self._next_boundary,
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        """Restore sampler state captured by :meth:`state_dict`."""
        from repro.errors import CheckpointError

        if state["cycles_per_window"] != self.cycles_per_window:
            raise CheckpointError(
                "checkpoint sampler window "
                f"({state['cycles_per_window']} cycles) does not match this "
                f"sampler's ({self.cycles_per_window} cycles)"
            )
        if bool(state["interpolate"]) != self.interpolate:
            raise CheckpointError(
                "checkpoint sampler interpolate mode "
                f"({state['interpolate']}) does not match this sampler's "
                f"({self.interpolate})"
            )
        if float(state.get("window_cycles", self._window_cycles)) != self._window_cycles:
            raise CheckpointError(
                "checkpoint sampler window width "
                f"({state['window_cycles']} cycles) does not match this "
                f"sampler's ({self._window_cycles} cycles)"
            )
        self.interpolated_windows = int(state["interpolated_windows"])  # type: ignore[arg-type]
        self.samples = list(state["samples"])  # type: ignore[arg-type]
        self._last_stats = state["last_stats"].snapshot()  # type: ignore[union-attr]
        self._last_instructions = int(state["last_instructions"])  # type: ignore[arg-type]
        self._last_cycles = int(state["last_cycles"])  # type: ignore[arg-type]
        self._next_boundary = int(state["next_boundary"])  # type: ignore[arg-type]
        self._window_index = int(
            state.get("window_index", len(self.samples))  # type: ignore[arg-type]
        )
        if "window_index" not in state:
            # Pre-window-index checkpoint: recover the boundary index
            # from the boundary itself (exact for integral widths).
            self._window_index = max(
                0, round(self._next_boundary / self._window_cycles) - 1
            )

    def advance(self, cycles_completed: int, instructions_retired: int, stats: CacheStats) -> None:
        """Report progress of the emulated clock.

        Called whenever a cycles-completed message arrives; emits one
        sample per crossed window boundary (several boundaries may be
        crossed by a single coarse-grained message).
        """
        crossed = 0
        if self.interpolate and cycles_completed >= self._next_boundary:
            crossed = self._boundaries_upto(cycles_completed) - self._window_index
        if crossed > 1:
            self._advance_interpolated(crossed, instructions_retired, stats)
            return
        while cycles_completed >= self._next_boundary:
            delta = stats.delta(self._last_stats)
            self._emit(
                WindowSample(
                    index=len(self.samples),
                    cycles=self._next_boundary - self._last_cycles,
                    instructions=instructions_retired - self._last_instructions,
                    accesses=delta.accesses,
                    misses=delta.misses,
                )
            )
            self._last_stats = stats.snapshot()
            self._last_instructions = instructions_retired
            self._last_cycles = self._next_boundary
            self._window_index += 1
            self._next_boundary = self._boundary(self._window_index + 1)

    def _advance_interpolated(
        self, windows: int, instructions_retired: int, stats: CacheStats
    ) -> None:
        """Spread one oversized delta evenly over the windows it spans.

        The host missed ``windows - 1`` reads; rather than reporting one
        fat window followed by empties, reconstruct a plausible series
        (integer division, remainders to the earliest windows — exactly
        reproducible from the counters alone).
        """
        delta = stats.delta(self._last_stats)
        instructions = instructions_retired - self._last_instructions

        def split(total: int, index: int) -> int:
            return total // windows + (1 if index < total % windows else 0)

        for i in range(windows):
            self._emit(
                WindowSample(
                    index=len(self.samples),
                    cycles=self._next_boundary - self._last_cycles,
                    instructions=split(instructions, i),
                    accesses=split(delta.accesses, i),
                    misses=split(delta.misses, i),
                )
            )
            self._last_cycles = self._next_boundary
            self._window_index += 1
            self._next_boundary = self._boundary(self._window_index + 1)
        self.interpolated_windows += windows - 1
        self._last_stats = stats.snapshot()
        self._last_instructions = instructions_retired

    def advance_series(
        self,
        cycles: np.ndarray,
        instructions: np.ndarray,
        accesses: np.ndarray,
        misses: np.ndarray,
    ) -> None:
        """Batched :meth:`advance`: one call covering a whole progress series.

        Equivalent to calling :meth:`advance` once per progress report
        ``i`` with a stats block whose cumulative access/miss counters
        equal ``accesses[i]`` / ``misses[i]``.  Window boundaries are
        located with one ``searchsorted`` over the (non-decreasing)
        cycle series instead of a per-report clock comparison;
        ``side='left'`` preserves the exact-boundary contract — a report
        landing exactly on a boundary closes that window *with* its
        delta, just as the ``>=`` test in the scalar loop does.

        Only valid in non-interpolate (strict) mode.  After a series
        the snapshot carried in ``_last_stats`` holds only the counters
        window samples read (accesses, hits, misses) — :meth:`finalize`
        and further :meth:`advance` calls observe identical deltas, but
        checkpoints should not be cut between a batched series and the
        end of its run.
        """
        if self.interpolate:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "advance_series requires non-interpolate mode; lenient "
                "runs keep the per-report loop"
            )
        cycles = np.asarray(cycles, dtype=np.int64)
        if cycles.size == 0:
            return
        final_cycles = int(cycles[-1])
        last = self._boundaries_upto(final_cycles)
        if last <= self._window_index:
            # No boundary crossed: the scalar loop would only have
            # advanced counters it reads lazily; nothing to record.
            return
        instructions = np.asarray(instructions, dtype=np.int64)
        accesses = np.asarray(accesses, dtype=np.int64)
        misses = np.asarray(misses, dtype=np.int64)
        ks = np.arange(self._window_index + 1, last + 1, dtype=np.int64)
        boundaries = np.ceil(ks * self._window_cycles).astype(np.int64)
        closers = np.searchsorted(cycles, boundaries, side="left")
        prev_accesses = self._last_stats.accesses
        prev_hits = self._last_stats.hits
        prev_misses = self._last_stats.misses
        prev_instructions = self._last_instructions
        prev_cycles = self._last_cycles
        for boundary, closer in zip(boundaries.tolist(), closers.tolist()):
            at_accesses = int(accesses[closer])
            at_misses = int(misses[closer])
            at_instructions = int(instructions[closer])
            self._emit(
                WindowSample(
                    index=len(self.samples),
                    cycles=boundary - prev_cycles,
                    instructions=at_instructions - prev_instructions,
                    accesses=at_accesses - prev_accesses,
                    misses=at_misses - prev_misses,
                )
            )
            prev_accesses, prev_misses = at_accesses, at_misses
            prev_hits = at_accesses - at_misses
            prev_instructions, prev_cycles = at_instructions, boundary
        snapshot = CacheStats()
        snapshot.accesses = prev_accesses
        snapshot.hits = prev_hits
        snapshot.misses = prev_misses
        self._last_stats = snapshot
        self._last_instructions = prev_instructions
        self._last_cycles = prev_cycles
        self._window_index = last
        self._next_boundary = self._boundary(last + 1)

    def finalize(self, cycles_completed: int, instructions_retired: int, stats: CacheStats) -> None:
        """Emit a final partial window at end of run, if non-empty."""
        delta = stats.delta(self._last_stats)
        if delta.accesses or instructions_retired > self._last_instructions:
            self._emit(
                WindowSample(
                    index=len(self.samples),
                    cycles=cycles_completed - self._last_cycles,
                    instructions=instructions_retired - self._last_instructions,
                    accesses=delta.accesses,
                    misses=delta.misses,
                )
            )
            self._last_stats = stats.snapshot()
            self._last_instructions = instructions_retired
            self._last_cycles = cycles_completed
