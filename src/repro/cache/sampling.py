"""Time- and instruction-synchronized statistic windows.

Section 3.1: "A host computer reads performance data from CB every 500
microseconds."  Section 3.3 explains why the instructions-retired and
cycles-completed messages exist: simulation and emulation run in two
separate time domains, so computing MPKI and miss rates requires
synchronizing counters against both retired instructions and elapsed
cycles.

:class:`WindowSampler` reproduces that mechanism: every time the
emulated clock crosses a 500 µs boundary it snapshots the cache
counters, yielding the per-window series a host reading the CB board
would log.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.stats import CacheStats


@dataclass(frozen=True, slots=True)
class WindowSample:
    """Counters accumulated during one host read interval."""

    index: int
    cycles: int
    instructions: int
    accesses: int
    misses: int

    @property
    def mpki(self) -> float:
        """Misses per 1000 instructions within this window."""
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.misses / self.instructions

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class WindowSampler:
    """Samples a :class:`CacheStats` counter block on a cycle schedule.

    Args:
        frequency_hz: emulated platform clock (Dragonhead emulates the
            shared LLC at 100 MHz; the guest cores are faster — the
            clock chosen here only sets the window granularity).
        interval_us: host read interval (paper: 500 µs).
        interpolate: lenient-mode recovery for missed host reads.  When
            one progress report crosses several window boundaries (the
            host skipped a 500 µs poll), the default attributes the
            whole delta to the first window and emits empty windows for
            the rest; with ``interpolate=True`` the delta is spread
            evenly across the missed windows instead, and each repaired
            window is counted in :attr:`interpolated_windows`.
    """

    def __init__(
        self,
        frequency_hz: float = 100e6,
        interval_us: float = 500.0,
        interpolate: bool = False,
        on_sample=None,
    ) -> None:
        self.cycles_per_window = max(1, int(frequency_hz * interval_us * 1e-6))
        self.interpolate = interpolate
        self.interpolated_windows = 0
        self.samples: list[WindowSample] = []
        #: Live-stream hook: called with each closed window's sample,
        #: the same object appended to :attr:`samples` — the software CB
        #: host-pull.  None (the default) costs one test per window.
        self.on_sample = on_sample
        self._last_stats = CacheStats()
        self._last_instructions = 0
        self._last_cycles = 0
        self._next_boundary = self.cycles_per_window

    def _emit(self, sample: WindowSample) -> None:
        """Close one window: accumulate it, then publish it if tapped.

        Every append site routes through here, so a live subscriber sees
        exactly the series :attr:`samples` accumulates — the final
        partial window from :meth:`finalize` included.
        """
        self.samples.append(sample)
        if self.on_sample is not None:
            self.on_sample(sample)

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict[str, object]:
        """Full sampler state for a checkpoint.

        ``cycles_per_window`` and ``interpolate`` come from construction
        and travel along only so :meth:`load_state_dict` can verify the
        resuming run was configured identically — a sampler resumed at a
        different window granularity would integrate to different finals
        and break the bit-identical-resume contract.
        """
        return {
            "cycles_per_window": self.cycles_per_window,
            "interpolate": self.interpolate,
            "interpolated_windows": self.interpolated_windows,
            "samples": list(self.samples),
            "last_stats": self._last_stats.snapshot(),
            "last_instructions": self._last_instructions,
            "last_cycles": self._last_cycles,
            "next_boundary": self._next_boundary,
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        """Restore sampler state captured by :meth:`state_dict`."""
        from repro.errors import CheckpointError

        if state["cycles_per_window"] != self.cycles_per_window:
            raise CheckpointError(
                "checkpoint sampler window "
                f"({state['cycles_per_window']} cycles) does not match this "
                f"sampler's ({self.cycles_per_window} cycles)"
            )
        if bool(state["interpolate"]) != self.interpolate:
            raise CheckpointError(
                "checkpoint sampler interpolate mode "
                f"({state['interpolate']}) does not match this sampler's "
                f"({self.interpolate})"
            )
        self.interpolated_windows = int(state["interpolated_windows"])  # type: ignore[arg-type]
        self.samples = list(state["samples"])  # type: ignore[arg-type]
        self._last_stats = state["last_stats"].snapshot()  # type: ignore[union-attr]
        self._last_instructions = int(state["last_instructions"])  # type: ignore[arg-type]
        self._last_cycles = int(state["last_cycles"])  # type: ignore[arg-type]
        self._next_boundary = int(state["next_boundary"])  # type: ignore[arg-type]

    def advance(self, cycles_completed: int, instructions_retired: int, stats: CacheStats) -> None:
        """Report progress of the emulated clock.

        Called whenever a cycles-completed message arrives; emits one
        sample per crossed window boundary (several boundaries may be
        crossed by a single coarse-grained message).
        """
        crossed = 0
        if self.interpolate and cycles_completed >= self._next_boundary:
            crossed = 1 + (cycles_completed - self._next_boundary) // self.cycles_per_window
        if crossed > 1:
            self._advance_interpolated(crossed, instructions_retired, stats)
            return
        while cycles_completed >= self._next_boundary:
            delta = stats.delta(self._last_stats)
            self._emit(
                WindowSample(
                    index=len(self.samples),
                    cycles=self._next_boundary - self._last_cycles,
                    instructions=instructions_retired - self._last_instructions,
                    accesses=delta.accesses,
                    misses=delta.misses,
                )
            )
            self._last_stats = stats.snapshot()
            self._last_instructions = instructions_retired
            self._last_cycles = self._next_boundary
            self._next_boundary += self.cycles_per_window

    def _advance_interpolated(
        self, windows: int, instructions_retired: int, stats: CacheStats
    ) -> None:
        """Spread one oversized delta evenly over the windows it spans.

        The host missed ``windows - 1`` reads; rather than reporting one
        fat window followed by empties, reconstruct a plausible series
        (integer division, remainders to the earliest windows — exactly
        reproducible from the counters alone).
        """
        delta = stats.delta(self._last_stats)
        instructions = instructions_retired - self._last_instructions

        def split(total: int, index: int) -> int:
            return total // windows + (1 if index < total % windows else 0)

        for i in range(windows):
            self._emit(
                WindowSample(
                    index=len(self.samples),
                    cycles=self._next_boundary - self._last_cycles,
                    instructions=split(instructions, i),
                    accesses=split(delta.accesses, i),
                    misses=split(delta.misses, i),
                )
            )
            self._last_cycles = self._next_boundary
            self._next_boundary += self.cycles_per_window
        self.interpolated_windows += windows - 1
        self._last_stats = stats.snapshot()
        self._last_instructions = instructions_retired

    def finalize(self, cycles_completed: int, instructions_retired: int, stats: CacheStats) -> None:
        """Emit a final partial window at end of run, if non-empty."""
        delta = stats.delta(self._last_stats)
        if delta.accesses or instructions_retired > self._last_instructions:
            self._emit(
                WindowSample(
                    index=len(self.samples),
                    cycles=cycles_completed - self._last_cycles,
                    instructions=instructions_retired - self._last_instructions,
                    accesses=delta.accesses,
                    misses=delta.misses,
                )
            )
            self._last_stats = stats.snapshot()
            self._last_instructions = instructions_retired
            self._last_cycles = cycles_completed
