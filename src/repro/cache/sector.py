"""Sector (sub-blocked) caches: big lines without big fills.

Figure 7 shows large lines slashing miss counts, but a 4 KB line moves
4 KB per miss — the bandwidth cost that makes naive large lines
impractical and that sector caches were invented for: allocate tags at
a large *sector* granularity, transfer data at a small *sub-block*
granularity, and fetch sub-blocks on demand.

:class:`SectorCache` models that organization: hits require both the
sector tag and the accessed sub-block to be present; a sector miss
allocates the sector with only the touched sub-block valid; a sub-block
miss within a resident sector fetches just that sub-block.  The stats
separate the two miss flavours and count bytes transferred, so the
spatial-locality benefit (fewer sector allocations) and the bandwidth
cost (bytes moved) can be traded off explicitly — the quantitative
backdrop to the paper's "256 byte line provides the maximum benefit".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.cache.replacement import LRUPolicy
from repro.errors import ConfigurationError
from repro.trace.record import AccessKind, TraceChunk
from repro.units import is_power_of_two


@dataclass(frozen=True, slots=True)
class SectorCacheConfig:
    """Geometry of a sector cache."""

    size: int
    sector_size: int = 1024  # tag granularity
    subblock_size: int = 64  # transfer granularity
    associativity: int = 8

    def __post_init__(self) -> None:
        if not is_power_of_two(self.sector_size) or not is_power_of_two(self.subblock_size):
            raise ConfigurationError("sector and sub-block sizes must be powers of two")
        if self.subblock_size > self.sector_size:
            raise ConfigurationError(
                f"sub-block ({self.subblock_size}B) cannot exceed sector "
                f"({self.sector_size}B)"
            )

    @property
    def subblocks_per_sector(self) -> int:
        return self.sector_size // self.subblock_size


@dataclass(slots=True)
class SectorStats:
    """Outcome counters, separated by miss flavour."""

    accesses: int = 0
    hits: int = 0
    sector_misses: int = 0  # tag not present: allocate sector
    subblock_misses: int = 0  # sector resident, block absent: fetch block
    bytes_transferred: int = 0

    @property
    def misses(self) -> int:
        return self.sector_misses + self.subblock_misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SectorCache:
    """A set-associative sector cache with demand sub-block fetch."""

    def __init__(self, config: SectorCacheConfig) -> None:
        self.config = config
        self._tags = SetAssociativeCache(
            CacheConfig(
                size=config.size,
                line_size=config.sector_size,
                associativity=config.associativity,
                name="sectors",
            )
        )
        self._valid: dict[int, int] = {}  # sector id -> sub-block bitmap
        self.stats = SectorStats()
        self._sector_shift = config.sector_size.bit_length() - 1
        self._sub_shift = config.subblock_size.bit_length() - 1

    def access(self, address: int, kind: AccessKind = AccessKind.READ, core: int = 0) -> bool:
        """Access one address; returns True on a full (tag+block) hit."""
        self.stats.accesses += 1
        sector = address >> self._sector_shift
        sub_index = (address >> self._sub_shift) & (self.config.subblocks_per_sector - 1)
        sub_bit = 1 << sub_index
        resident = self._tags.contains_line(sector)
        # Track eviction: accessing may displace another sector.
        evictions_before = self._tags.stats.evictions
        self._tags.access_line(sector, kind, core)
        if self._tags.stats.evictions > evictions_before:
            self._garbage_collect_bitmaps()
        if resident:
            bitmap = self._valid.get(sector, 0)
            if bitmap & sub_bit:
                self.stats.hits += 1
                return True
            self._valid[sector] = bitmap | sub_bit
            self.stats.subblock_misses += 1
            self.stats.bytes_transferred += self.config.subblock_size
            return False
        self._valid[sector] = sub_bit
        self.stats.sector_misses += 1
        self.stats.bytes_transferred += self.config.subblock_size
        return False

    def _garbage_collect_bitmaps(self) -> None:
        """Drop validity bitmaps of sectors no longer resident."""
        if len(self._valid) < 2 * self._tags.config.num_lines:
            return
        self._valid = {
            sector: bitmap
            for sector, bitmap in self._valid.items()
            if self._tags.contains_line(sector)
        }

    def access_chunk(self, chunk: TraceChunk) -> SectorStats:
        addresses = chunk.addresses
        kinds = chunk.kinds
        cores = chunk.cores
        for i in range(len(chunk)):
            self.access(int(addresses[i]), AccessKind(int(kinds[i])), int(cores[i]))
        return self.stats


def monolithic_line_traffic(misses: int, line_size: int) -> int:
    """Bytes a conventional cache moves for the same miss count."""
    return misses * line_size
