"""Cache performance counters.

Dragonhead's CC FPGAs maintain hit/miss counters that the CB board
collects; the figures of the paper are all derived from these counters
normalized by retired instructions (misses per 1000 instructions).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class CacheStats:
    """Hit/miss counters for one cache (or one emulator bank)."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0
    evictions: int = 0
    prefetches: int = 0
    prefetch_hits: int = 0
    per_core_accesses: dict[int, int] = field(default_factory=dict)
    per_core_misses: dict[int, int] = field(default_factory=dict)

    @property
    def miss_ratio(self) -> float:
        """Misses per access (0 when no accesses were observed)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_ratio(self) -> float:
        return 1.0 - self.miss_ratio if self.accesses else 0.0

    def mpki(self, instructions: int) -> float:
        """Misses per 1000 instructions, the paper's y-axis metric."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.misses / instructions

    def apki(self, instructions: int) -> float:
        """Accesses per 1000 instructions (Table 2's DL1 accesses column)."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.accesses / instructions

    def note_access(self, core: int, is_read: bool, hit: bool) -> None:
        """Account one access outcome."""
        self.accesses += 1
        if is_read:
            self.reads += 1
        else:
            self.writes += 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            if is_read:
                self.read_misses += 1
            else:
                self.write_misses += 1
        self.per_core_accesses[core] = self.per_core_accesses.get(core, 0) + 1
        if not hit:
            self.per_core_misses[core] = self.per_core_misses.get(core, 0) + 1

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return the sum of two counter sets (bank aggregation)."""
        merged = CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            read_misses=self.read_misses + other.read_misses,
            write_misses=self.write_misses + other.write_misses,
            evictions=self.evictions + other.evictions,
            prefetches=self.prefetches + other.prefetches,
            prefetch_hits=self.prefetch_hits + other.prefetch_hits,
        )
        for src in (self, other):
            for core, n in src.per_core_accesses.items():
                merged.per_core_accesses[core] = merged.per_core_accesses.get(core, 0) + n
            for core, n in src.per_core_misses.items():
                merged.per_core_misses[core] = merged.per_core_misses.get(core, 0) + n
        return merged

    def snapshot(self) -> "CacheStats":
        """Return an independent copy of the current counters."""
        return CacheStats(
            accesses=self.accesses,
            hits=self.hits,
            misses=self.misses,
            reads=self.reads,
            writes=self.writes,
            read_misses=self.read_misses,
            write_misses=self.write_misses,
            evictions=self.evictions,
            prefetches=self.prefetches,
            prefetch_hits=self.prefetch_hits,
            per_core_accesses=dict(self.per_core_accesses),
            per_core_misses=dict(self.per_core_misses),
        )

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since ``earlier`` (window sampling)."""
        return CacheStats(
            accesses=self.accesses - earlier.accesses,
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            read_misses=self.read_misses - earlier.read_misses,
            write_misses=self.write_misses - earlier.write_misses,
            evictions=self.evictions - earlier.evictions,
            prefetches=self.prefetches - earlier.prefetches,
            prefetch_hits=self.prefetch_hits - earlier.prefetch_hits,
        )
