"""Cache performance counters.

Dragonhead's CC FPGAs maintain hit/miss counters that the CB board
collects; the figures of the paper are all derived from these counters
normalized by retired instructions (misses per 1000 instructions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace.record import AccessKind


def _dict_delta(now: dict[int, int], before: dict[int, int]) -> dict[int, int]:
    """Per-core counter differences, dropping cores with no new activity."""
    delta: dict[int, int] = {}
    for core, count in now.items():
        changed = count - before.get(core, 0)
        if changed:
            delta[core] = changed
    return delta


@dataclass(slots=True)
class CacheStats:
    """Hit/miss counters for one cache (or one emulator bank)."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0
    evictions: int = 0
    prefetches: int = 0
    prefetch_hits: int = 0
    per_core_accesses: dict[int, int] = field(default_factory=dict)
    per_core_misses: dict[int, int] = field(default_factory=dict)

    @property
    def miss_ratio(self) -> float:
        """Misses per access (0 when no accesses were observed)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_ratio(self) -> float:
        return 1.0 - self.miss_ratio if self.accesses else 0.0

    def mpki(self, instructions: int) -> float:
        """Misses per 1000 instructions, the paper's y-axis metric."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.misses / instructions

    def apki(self, instructions: int) -> float:
        """Accesses per 1000 instructions (Table 2's DL1 accesses column)."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.accesses / instructions

    def note_access(self, core: int, is_read: bool, hit: bool) -> None:
        """Account one access outcome."""
        self.accesses += 1
        if is_read:
            self.reads += 1
        else:
            self.writes += 1
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            if is_read:
                self.read_misses += 1
            else:
                self.write_misses += 1
        self.per_core_accesses[core] = self.per_core_accesses.get(core, 0) + 1
        if not hit:
            self.per_core_misses[core] = self.per_core_misses.get(core, 0) + 1

    def note_batch(
        self,
        kinds: np.ndarray,
        cores: np.ndarray | int,
        hits: np.ndarray,
    ) -> None:
        """Account a whole chunk of access outcomes, vectorized.

        Equivalent to calling :meth:`note_access` once per access with
        ``kinds[i] == AccessKind.READ`` / ``cores[i]`` / ``hits[i]``,
        but using numpy reductions.  ``cores`` may be a scalar when the
        whole chunk was issued by one core (the emulator's DEX slices).
        """
        hits = np.asarray(hits, dtype=bool)
        n = int(hits.size)
        if n == 0:
            return
        kinds = np.asarray(kinds)
        read_mask = kinds == int(AccessKind.READ)
        reads = int(np.count_nonzero(read_mask))
        hit_count = int(np.count_nonzero(hits))
        miss_count = n - hit_count
        miss_mask = ~hits
        read_misses = int(np.count_nonzero(read_mask & miss_mask))
        self.accesses += n
        self.reads += reads
        self.writes += n - reads
        self.hits += hit_count
        self.misses += miss_count
        self.read_misses += read_misses
        self.write_misses += miss_count - read_misses
        if isinstance(cores, (int, np.integer)):
            core = int(cores)
            self.per_core_accesses[core] = self.per_core_accesses.get(core, 0) + n
            if miss_count:
                self.per_core_misses[core] = (
                    self.per_core_misses.get(core, 0) + miss_count
                )
            return
        cores = np.asarray(cores)
        access_counts = np.bincount(cores)
        for core in np.nonzero(access_counts)[0]:
            core = int(core)
            self.per_core_accesses[core] = self.per_core_accesses.get(core, 0) + int(
                access_counts[core]
            )
        if miss_count:
            miss_counts = np.bincount(cores[miss_mask])
            for core in np.nonzero(miss_counts)[0]:
                core = int(core)
                self.per_core_misses[core] = self.per_core_misses.get(core, 0) + int(
                    miss_counts[core]
                )

    def conservation_violations(self, label: str = "") -> list[str]:
        """Conservation identities this counter block must satisfy.

        Returns a human-readable description per violated identity
        (empty list == consistent).  The identities assume a demand-only
        access stream — the emulator banks never prefetch, so every
        access is a read or a write, every access hits or misses, and an
        eviction can only be caused by a miss fill.  A prefetching
        wrapper installs lines outside :meth:`note_access` and must not
        be audited with these identities.
        """
        prefix = f"{label}: " if label else ""
        violations: list[str] = []
        if self.hits + self.misses != self.accesses:
            violations.append(
                f"{prefix}hits+misses != accesses "
                f"({self.hits}+{self.misses} != {self.accesses})"
            )
        if self.reads + self.writes != self.accesses:
            violations.append(
                f"{prefix}reads+writes != accesses "
                f"({self.reads}+{self.writes} != {self.accesses})"
            )
        if self.read_misses + self.write_misses != self.misses:
            violations.append(
                f"{prefix}read_misses+write_misses != misses "
                f"({self.read_misses}+{self.write_misses} != {self.misses})"
            )
        if self.evictions > self.misses:
            violations.append(
                f"{prefix}evictions > misses ({self.evictions} > {self.misses})"
            )
        core_accesses = sum(self.per_core_accesses.values())
        if core_accesses != self.accesses:
            violations.append(
                f"{prefix}per-core access sum != accesses "
                f"({core_accesses} != {self.accesses})"
            )
        core_misses = sum(self.per_core_misses.values())
        if core_misses != self.misses:
            violations.append(
                f"{prefix}per-core miss sum != misses "
                f"({core_misses} != {self.misses})"
            )
        for core, misses in self.per_core_misses.items():
            if misses > self.per_core_accesses.get(core, 0):
                violations.append(
                    f"{prefix}core {core} misses > accesses "
                    f"({misses} > {self.per_core_accesses.get(core, 0)})"
                )
        return violations

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return the sum of two counter sets (bank aggregation)."""
        merged = CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            read_misses=self.read_misses + other.read_misses,
            write_misses=self.write_misses + other.write_misses,
            evictions=self.evictions + other.evictions,
            prefetches=self.prefetches + other.prefetches,
            prefetch_hits=self.prefetch_hits + other.prefetch_hits,
        )
        for src in (self, other):
            for core, n in src.per_core_accesses.items():
                merged.per_core_accesses[core] = merged.per_core_accesses.get(core, 0) + n
            for core, n in src.per_core_misses.items():
                merged.per_core_misses[core] = merged.per_core_misses.get(core, 0) + n
        return merged

    def snapshot(self) -> "CacheStats":
        """Return an independent copy of the current counters."""
        return CacheStats(
            accesses=self.accesses,
            hits=self.hits,
            misses=self.misses,
            reads=self.reads,
            writes=self.writes,
            read_misses=self.read_misses,
            write_misses=self.write_misses,
            evictions=self.evictions,
            prefetches=self.prefetches,
            prefetch_hits=self.prefetch_hits,
            per_core_accesses=dict(self.per_core_accesses),
            per_core_misses=dict(self.per_core_misses),
        )

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since ``earlier`` (window sampling).

        Per-core dictionaries are differenced like every other counter;
        cores with no activity inside the window are omitted, matching
        what :meth:`note_access` would have recorded during the window.
        """
        return CacheStats(
            accesses=self.accesses - earlier.accesses,
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            read_misses=self.read_misses - earlier.read_misses,
            write_misses=self.write_misses - earlier.write_misses,
            evictions=self.evictions - earlier.evictions,
            prefetches=self.prefetches - earlier.prefetches,
            prefetch_hits=self.prefetch_hits - earlier.prefetch_hits,
            per_core_accesses=_dict_delta(
                self.per_core_accesses, earlier.per_core_accesses
            ),
            per_core_misses=_dict_delta(self.per_core_misses, earlier.per_core_misses),
        )
