"""Victim caching.

The paper's related work includes Zhang & Asanovic's *victim
replication* ("achieve the benefits of private caches with shared
caches"); the primitive underneath is the classic Jouppi victim cache —
a small fully-associative buffer holding recently evicted lines, so
conflict evictions get a second chance before going to the next level.

:class:`VictimCachedHierarchy` attaches one victim buffer to a primary
cache: misses probe the victim buffer, a victim hit swaps the line back
(no next-level traffic), and every primary eviction is deposited into
the buffer.  The paper's configuration does not use one; this is a
substrate extension for design-space studies on the same traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.errors import ConfigurationError
from repro.trace.record import AccessKind, TraceChunk


@dataclass(slots=True)
class VictimStats:
    """Victim-buffer effectiveness counters."""

    probes: int = 0
    victim_hits: int = 0
    deposits: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.victim_hits / self.probes if self.probes else 0.0


class VictimCachedHierarchy:
    """A primary cache with a small fully-associative victim buffer."""

    def __init__(self, primary: CacheConfig, victim_lines: int = 16) -> None:
        if victim_lines <= 0:
            raise ConfigurationError(f"victim_lines must be positive, got {victim_lines}")
        self.primary = SetAssociativeCache(primary)
        self.victim_lines = victim_lines
        self._victims: dict[int, None] = {}  # insertion-ordered LRU
        self.stats = VictimStats()

    # -- operations ---------------------------------------------------------

    def _deposit(self, line: int) -> None:
        if line in self._victims:
            del self._victims[line]
        self._victims[line] = None
        if len(self._victims) > self.victim_lines:
            del self._victims[next(iter(self._victims))]
        self.stats.deposits += 1

    def access(self, address: int, kind: AccessKind = AccessKind.READ, core: int = 0) -> bool:
        """Access through primary + victim; True when either hits.

        A victim hit re-installs the line in the primary (displacing a
        new victim into the buffer) — the swap the hardware performs.
        """
        primary = self.primary
        line = address >> primary._line_shift
        if primary.contains_line(line):
            primary.access_line(line, kind, core)
            return True
        # Primary miss: probe the victim buffer.
        self.stats.probes += 1
        victim_hit = line in self._victims
        if victim_hit:
            del self._victims[line]
            self.stats.victim_hits += 1
        # Install into the primary either way; capture the displaced line.
        set_index = line & primary._set_mask
        displaced = None
        policy = primary._policy
        if hasattr(policy, "resident_tags"):
            tags = policy.resident_tags(set_index)
            if len(tags) == primary.config.associativity:
                displaced = tags[0]
        primary.access_line(line, kind, core)
        if displaced is not None:
            self._deposit(displaced)
        # Victim hits are hits of the combined structure: correct stats.
        if victim_hit:
            stats = primary.stats
            stats.misses -= 1
            stats.hits += 1
            if kind == AccessKind.READ:
                stats.read_misses -= 1
            else:
                stats.write_misses -= 1
        return victim_hit

    def access_chunk(self, chunk: TraceChunk) -> None:
        addresses = chunk.addresses
        kinds = chunk.kinds
        cores = chunk.cores
        for i in range(len(chunk)):
            self.access(int(addresses[i]), AccessKind(int(kinds[i])), int(cores[i]))

    @property
    def misses(self) -> int:
        """Misses of the combined primary + victim structure."""
        return self.primary.stats.misses
