"""Checkpoint/resume for long co-simulation points.

PR 3 made sweeps survive crashed *points*; this package makes a single
point survive its own death.  A snapshot captures everything the
deterministic replay of a run depends on — DEX scheduler position and
per-core counters, the AF's protocol session state (including the
codec's stashed wide-payload words), the CC banks' full directory
contents as dense numpy dumps, the CB sampler's window accumulators,
and the audit oracle's shadow directories — so a resumed run continues
*bit-identically* to one that was never interrupted (a differential
test enforces field-for-field `CoSimResult` equality).

Snapshots are versioned and CRC-32 guarded, written atomically
(tmp + rename), and carry an identity block so a checkpoint can never
be resumed against a different workload, core count, or cache
configuration.
"""

from __future__ import annotations

from repro.checkpoint.snapshot import (
    SNAPSHOT_VERSION,
    DeferredInterrupt,
    read_snapshot,
    write_snapshot,
)

__all__ = [
    "SNAPSHOT_VERSION",
    "DeferredInterrupt",
    "read_snapshot",
    "write_snapshot",
]
