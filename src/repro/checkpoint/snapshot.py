"""The snapshot container format and the SIGINT-drain helper.

Layout of a ``.ckpt`` file::

    MAGIC (4 bytes, b"RPCK")
    header length (4 bytes, big-endian)
    header (JSON): {"version", "crc32", "length"}
    payload (pickle): {"identity": {...}, "state": {...}}

The header is JSON so a future version bump can be detected — and
reported — without being able to unpickle the payload; the CRC-32 is
over the payload bytes, so torn or bit-flipped files fail *before*
anything is unpickled.  Writes go to a ``.tmp`` sibling and
``os.replace`` into place, so a reader never observes a half-written
snapshot and a crash mid-write leaves the previous snapshot intact —
the same discipline the PR-2 trace cache uses for its entries.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import threading
import zlib

from repro.errors import CheckpointError
from repro.telemetry import runtime as telemetry

MAGIC = b"RPCK"
SNAPSHOT_VERSION = 1

_HEADER_LEN_BYTES = 4


def write_snapshot(path: str, state: dict, identity: dict) -> None:
    """Atomically write one snapshot file.

    Args:
        path: destination; the parent directory must exist.
        state: the full platform state (pickled into the payload).
        identity: what run this snapshot belongs to (workload name,
            cores, config, mode...); verified on resume.
    """
    with telemetry.span("checkpoint.write"):
        payload = pickle.dumps(
            {"identity": identity, "state": state}, protocol=pickle.HIGHEST_PROTOCOL
        )
        header = json.dumps(
            {
                "version": SNAPSHOT_VERSION,
                "crc32": zlib.crc32(payload),
                "length": len(payload),
            },
            sort_keys=True,
        ).encode("utf-8")
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                handle.write(MAGIC)
                handle.write(len(header).to_bytes(_HEADER_LEN_BYTES, "big"))
                handle.write(header)
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            # A checkpoint interrupted mid-write (including KeyboardInterrupt)
            # must not leave a tmp file to be mistaken for progress.
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        telemetry.counter("repro_checkpoints_written_total").inc()
        telemetry.counter("repro_checkpoint_bytes_total").inc(len(payload))


def read_snapshot(path: str, expect_identity: dict | None = None) -> dict:
    """Read, validate, and return the ``state`` dict of a snapshot.

    Raises :class:`CheckpointError` on any damage (bad magic, unknown
    version, truncation, CRC mismatch) or when ``expect_identity``
    differs from the identity recorded at write time.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    if len(blob) < len(MAGIC) + _HEADER_LEN_BYTES or not blob.startswith(MAGIC):
        raise CheckpointError(f"{path} is not a checkpoint file (bad magic)")
    offset = len(MAGIC)
    header_len = int.from_bytes(blob[offset : offset + _HEADER_LEN_BYTES], "big")
    offset += _HEADER_LEN_BYTES
    try:
        header = json.loads(blob[offset : offset + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CheckpointError(f"{path} has a damaged header: {error}") from error
    version = header.get("version")
    if version != SNAPSHOT_VERSION:
        raise CheckpointError(
            f"{path} is snapshot format version {version!r}; this build reads "
            f"version {SNAPSHOT_VERSION}"
        )
    payload = blob[offset + header_len :]
    if len(payload) != header.get("length"):
        raise CheckpointError(
            f"{path} is truncated: payload {len(payload)} bytes, header "
            f"declares {header.get('length')}"
        )
    if zlib.crc32(payload) != header.get("crc32"):
        raise CheckpointError(f"{path} failed its CRC-32 check (corrupt payload)")
    content = pickle.loads(payload)
    if expect_identity is not None and content["identity"] != expect_identity:
        raise CheckpointError(
            f"{path} belongs to a different run: snapshot identity "
            f"{content['identity']!r}, this run is {expect_identity!r}"
        )
    return content["state"]


class DeferredInterrupt:
    """Hold SIGINT until the run loop reaches a consistent boundary.

    A Ctrl-C landing mid-chunk would abandon the transactions already
    snooped but not yet checkpointed.  Inside this context manager the
    default SIGINT handler is replaced by one that only sets a flag; the
    run loop polls :attr:`pending` at each checkpoint boundary, writes a
    final snapshot, and then calls :meth:`deliver` to raise the held
    ``KeyboardInterrupt``.  On exit the previous handler is restored,
    and a still-pending interrupt is re-raised so it is never lost.

    Signal handlers can only be installed from the main thread; from
    worker threads/processes this becomes a no-op whose ``pending`` is
    always False (workers are interrupted by the supervisor instead).
    """

    def __init__(self) -> None:
        self.pending = False
        self._previous = None
        self._installed = False

    def __enter__(self) -> "DeferredInterrupt":
        if threading.current_thread() is threading.main_thread():
            self._previous = signal.getsignal(signal.SIGINT)
            signal.signal(signal.SIGINT, self._handle)
            self._installed = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._installed:
            signal.signal(signal.SIGINT, self._previous)
            self._installed = False
        if self.pending and exc_type is None:
            self.pending = False
            raise KeyboardInterrupt

    def _handle(self, signum, frame) -> None:
        self.pending = True

    def deliver(self) -> None:
        """Raise the held interrupt (call after the drain snapshot)."""
        if self.pending:
            self.pending = False
            raise KeyboardInterrupt
