"""Co-simulation platform: the SoftSDV + Dragonhead analog.

* :mod:`repro.protocol` — the FSB message protocol with which the
  software simulator signals the cache emulator;
* :mod:`repro.core.fsb` — front-side-bus transactions and snooping;
* :mod:`repro.core.dex` — the DEX virtual-core time-slice scheduler;
* :mod:`repro.core.softsdv` — the full-system-simulator facade;
* :mod:`repro.core.cosim` — wiring of simulator and emulator;
* :mod:`repro.cache.sampling` — 500 µs statistic windows;
* :mod:`repro.core.experiment` — CMP configurations and sweep drivers.
"""

from repro.protocol import Message, MessageKind, MessageCodec
from repro.core.fsb import FSBTransaction, FrontSideBus
from repro.core.dex import DEXScheduler, VirtualCore
from repro.core.softsdv import SoftSDV, GuestWorkload
from repro.core.cosim import CoSimPlatform, CoSimResult
from repro.core.experiment import CMPConfig, SCMP, MCMP, LCMP

__all__ = [
    "Message",
    "MessageKind",
    "MessageCodec",
    "FSBTransaction",
    "FrontSideBus",
    "DEXScheduler",
    "VirtualCore",
    "SoftSDV",
    "GuestWorkload",
    "CoSimPlatform",
    "CoSimResult",
    "CMPConfig",
    "SCMP",
    "MCMP",
    "LCMP",
]
