"""Hardware-software co-simulation: SoftSDV driving Dragonhead.

Section 3.3: "We use a new co-simulation methodology to run SoftSDV in
DEX mode while enabling it to drive a performance model through
integrated Dragonhead emulation."  The wiring is the front-side bus:
SoftSDV issues guest transactions and protocol messages on the FSB; the
Dragonhead emulator snoops them.

:class:`CoSimPlatform` assembles the three pieces and exposes one call,
:meth:`run`, which executes a workload to completion on a chosen core
count and returns the emulator's performance data, instruction-
synchronized the way the real platform computes MPKI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.emulator import DragonheadConfig, DragonheadEmulator, PerformanceData
from repro.cache.stats import CacheStats
from repro.core.fsb import FrontSideBus
from repro.cache.sampling import WindowSample
from repro.core.softsdv import GuestWorkload, SoftSDV
from repro.faults.report import DegradationRecord, merge_records
from repro.faults.spec import FaultSpec


@dataclass(frozen=True)
class CoSimResult:
    """Outcome of one co-simulated run."""

    workload: str
    cores: int
    performance: PerformanceData
    instructions: int
    accesses: int
    filtered: int
    #: Injected faults plus recovered anomalies for this run; empty on
    #: a strict, fault-free run (the common case).
    degradation: tuple[DegradationRecord, ...] = ()

    @property
    def llc_stats(self) -> CacheStats:
        return self.performance.stats

    @property
    def mpki(self) -> float:
        """Shared-LLC misses per 1000 instructions (the figures' metric)."""
        return self.performance.mpki

    @property
    def samples(self) -> list[WindowSample]:
        """Per-500 µs window statistics, as the host reads from CB."""
        return self.performance.samples

    @property
    def degraded(self) -> bool:
        """Whether anything was injected into or recovered during the run."""
        return bool(self.degradation)


class CoSimPlatform:
    """A complete co-simulation platform instance.

    Create one per (cache configuration, run): like the hardware, the
    emulator's cache state and counters belong to a single experiment.

    ``strict=False`` puts the emulator in lenient resync mode, and
    ``fault_spec`` interposes a :class:`~repro.faults.injector.FaultInjector`
    between the bus and the emulator's snoop port — together they model
    the paper's real operating point: a lossy channel in front of a
    filter built to survive it.
    """

    def __init__(
        self,
        dragonhead: DragonheadConfig,
        quantum: int = 4096,
        boot_noise_accesses: int = 8192,
        strict: bool = True,
        fault_spec: FaultSpec | None = None,
    ) -> None:
        self.bus = FrontSideBus()
        self.emulator = DragonheadEmulator(dragonhead, strict=strict)
        self.injector = None
        if fault_spec is not None and fault_spec.touches_bus:
            from repro.faults.injector import FaultInjector

            self.injector = FaultInjector(
                self.emulator,
                fault_spec,
                point=(dragonhead.cache_size, dragonhead.line_size),
            )
        self.bus.attach(self.injector if self.injector is not None else self.emulator)
        self.softsdv = SoftSDV(
            self.bus, quantum=quantum, boot_noise_accesses=boot_noise_accesses
        )

    def run(self, workload: GuestWorkload, cores: int) -> CoSimResult:
        """Run ``workload`` to completion on ``cores`` virtual cores."""
        scheduler = self.softsdv.run_workload(workload, cores)
        if self.injector is not None:
            self.injector.flush()
        performance = self.emulator.read_performance_data()
        injected = self.injector.records if self.injector is not None else ()
        return CoSimResult(
            workload=workload.name,
            cores=cores,
            performance=performance,
            instructions=scheduler.instructions_retired,
            accesses=performance.stats.accesses,
            filtered=performance.filtered_transactions,
            degradation=merge_records(injected, performance.degradation),
        )


def cosim_cache_sweep(
    workload: GuestWorkload,
    cores: int,
    cache_sizes: list[int],
    line_size: int = 64,
    quantum: int = 4096,
) -> list[tuple[int, float]]:
    """Run one co-simulation per cache size; returns (size, MPKI) pairs.

    This is the exact-path analog of the Figure 4-6 sweeps, usable at
    the reduced scales the instrumented kernels execute at.  Each size
    gets a fresh platform, as reprogramming the FPGAs would.
    """
    results: list[tuple[int, float]] = []
    for size in cache_sizes:
        platform = CoSimPlatform(
            DragonheadConfig(cache_size=size, line_size=line_size), quantum=quantum
        )
        outcome = platform.run(workload, cores)
        results.append((size, outcome.mpki))
    return results
