"""Hardware-software co-simulation: SoftSDV driving Dragonhead.

Section 3.3: "We use a new co-simulation methodology to run SoftSDV in
DEX mode while enabling it to drive a performance model through
integrated Dragonhead emulation."  The wiring is the front-side bus:
SoftSDV issues guest transactions and protocol messages on the FSB; the
Dragonhead emulator snoops them.

:class:`CoSimPlatform` assembles the three pieces and exposes one call,
:meth:`run`, which executes a workload to completion on a chosen core
count and returns the emulator's performance data, instruction-
synchronized the way the real platform computes MPKI.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass

from repro.audit import AUDIT_FULL, AUDIT_OFF, OracleTap, resolve_audit_mode, run_audit
from repro.audit.oracle import SAMPLE_EVERY
from repro.audit.report import AuditReport
from repro.cache.emulator import (
    BANK_SHIFT,
    NUM_BANKS,
    DragonheadConfig,
    DragonheadEmulator,
    PerformanceData,
)
from repro.cache.stats import CacheStats
from repro.checkpoint import DeferredInterrupt, read_snapshot, write_snapshot
from repro.core.fsb import FrontSideBus
from repro.cache.sampling import WindowSample
from repro.core.softsdv import GuestWorkload, SoftSDV
from repro.errors import AuditError, CheckpointError
from repro.faults.report import DegradationRecord, collect_run_degradation, merge_records
from repro.faults.spec import FaultSpec
from repro.telemetry import runtime as telemetry


@dataclass(frozen=True)
class CoSimResult:
    """Outcome of one co-simulated run."""

    workload: str
    cores: int
    performance: PerformanceData
    instructions: int
    accesses: int
    filtered: int
    #: Injected faults plus recovered anomalies for this run; empty on
    #: a strict, fault-free run (the common case).
    degradation: tuple[DegradationRecord, ...] = ()
    #: End-of-run invariant audit; None when auditing was off.
    audit: AuditReport | None = None

    @property
    def llc_stats(self) -> CacheStats:
        return self.performance.stats

    @property
    def mpki(self) -> float:
        """Shared-LLC misses per 1000 instructions (the figures' metric)."""
        return self.performance.mpki

    @property
    def samples(self) -> list[WindowSample]:
        """Per-500 µs window statistics, as the host reads from CB."""
        return self.performance.samples

    @property
    def degraded(self) -> bool:
        """Whether anything was injected into or recovered during the run."""
        return bool(self.degradation)


class CoSimPlatform:
    """A complete co-simulation platform instance.

    Create one per (cache configuration, run): like the hardware, the
    emulator's cache state and counters belong to a single experiment.

    ``strict=False`` puts the emulator in lenient resync mode, and
    ``fault_spec`` interposes a :class:`~repro.faults.injector.FaultInjector`
    between the bus and the emulator's snoop port — together they model
    the paper's real operating point: a lossy channel in front of a
    filter built to survive it.
    """

    def __init__(
        self,
        dragonhead: DragonheadConfig,
        quantum: int = 4096,
        boot_noise_accesses: int = 8192,
        strict: bool = True,
        fault_spec: FaultSpec | None = None,
    ) -> None:
        self.strict = strict
        self.quantum = quantum
        self.bus = FrontSideBus()
        self.emulator = DragonheadEmulator(dragonhead, strict=strict)
        self.injector = None
        if fault_spec is not None and fault_spec.touches_bus:
            from repro.faults.injector import FaultInjector

            self.injector = FaultInjector(
                self.emulator,
                fault_spec,
                point=(dragonhead.cache_size, dragonhead.line_size),
            )
        self.bus.attach(self.injector if self.injector is not None else self.emulator)
        self.softsdv = SoftSDV(
            self.bus, quantum=quantum, boot_noise_accesses=boot_noise_accesses
        )

    def _identity(self, workload: GuestWorkload, cores: int, audit_mode: str) -> dict:
        """What a checkpoint of this run must match to be resumable."""
        return {
            "workload": workload.name,
            "cores": cores,
            "config": repr(self.emulator.config),
            "quantum": self.quantum,
            "boot_noise": self.softsdv.boot_noise_accesses,
            "strict": self.strict,
            "audit": audit_mode,
        }

    def _attach_audit_oracle(self, mode: str) -> None:
        """Hook the differential LRU oracle for the chosen audit mode.

        Non-LRU replacement policies have no generic-LRU reference, so
        they run the audit without the oracle check.
        """
        if mode == AUDIT_OFF or self.emulator.config.policy.lower() != "lru":
            return
        bank_config = self.emulator.config.bank_config(0)
        self.emulator.attach_oracle(
            OracleTap(
                num_sets=bank_config.num_sets,
                associativity=bank_config.associativity,
                num_banks=NUM_BANKS,
                bank_shift=BANK_SHIFT,
                every=1 if mode == AUDIT_FULL else SAMPLE_EVERY,
            )
        )

    def run(
        self,
        workload: GuestWorkload,
        cores: int,
        *,
        checkpoint_every: int | None = None,
        checkpoint_path: str | None = None,
        resume_from: str | None = None,
        audit: str | None = None,
    ) -> CoSimResult:
        """Run ``workload`` to completion on ``cores`` virtual cores.

        Args:
            checkpoint_every: snapshot the full platform state every N
                issued guest transactions (at the next DEX round
                boundary).  Requires ``checkpoint_path``.
            checkpoint_path: where snapshots go (atomic write-rename;
                removed once the run completes).  Defaults to
                ``resume_from`` when only that is given.
            resume_from: resume from this snapshot if it exists; the
                resumed run is bit-identical to an uninterrupted one.
                A missing file starts from scratch (first attempt of a
                supervised point); a damaged or mismatched one raises
                :class:`CheckpointError`.
            audit: ``"off"``/``"sample"``/``"full"`` end-of-run
                invariant audit; None reads ``$REPRO_AUDIT``.
                Violations raise :class:`AuditError` in strict mode and
                become ``audit``-source degradation records in lenient
                mode.
        """
        audit_mode = resolve_audit_mode(audit)
        self._attach_audit_oracle(audit_mode)
        if checkpoint_path is None:
            checkpoint_path = resume_from
        checkpointing = checkpoint_every is not None and checkpoint_path is not None
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise CheckpointError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        if checkpointing and self.injector is not None:
            raise CheckpointError(
                "checkpointing is not supported with bus fault injection: the "
                "injector's decision stream is positional and would diverge "
                "on resume"
            )
        identity = self._identity(workload, cores, audit_mode)
        scheduler = self.softsdv.prepare_workload(workload, cores)
        if resume_from is not None and os.path.exists(resume_from):
            state = read_snapshot(resume_from, expect_identity=identity)
            scheduler.restore(state["scheduler"])
            self.emulator.load_state_dict(state["emulator"])
        if checkpointing:
            guard: DeferredInterrupt | contextlib.AbstractContextManager = (
                DeferredInterrupt()
            )
        else:
            guard = contextlib.nullcontext()
        with guard as interrupt, telemetry.span("cosim"):
            if checkpointing:
                last_snapshot = scheduler.transactions_issued

                def on_round(sched) -> None:
                    nonlocal last_snapshot
                    due = (
                        sched.transactions_issued - last_snapshot
                        >= checkpoint_every
                    )
                    if due or interrupt.pending:
                        write_snapshot(
                            checkpoint_path,
                            {
                                "scheduler": sched.state_dict(),
                                "emulator": self.emulator.state_dict(),
                            },
                            identity,
                        )
                        last_snapshot = sched.transactions_issued
                    # A held Ctrl-C is delivered only after the drain
                    # snapshot above has landed.
                    interrupt.deliver()

                scheduler.run(on_round=on_round)
            else:
                scheduler.run()
        if self.injector is not None:
            self.injector.flush()
        performance = self.emulator.read_performance_data()
        degradation = collect_run_degradation(self.injector, performance)
        audit_report: AuditReport | None = None
        if audit_mode != AUDIT_OFF:
            audit_report = run_audit(
                self.emulator,
                performance,
                mode=audit_mode,
                expected_instructions=scheduler.instructions_retired,
                expected_cycles=scheduler.cycles_completed,
            )
            if not audit_report.ok:
                if self.strict:
                    raise AuditError(audit_report)
                degradation = merge_records(
                    degradation, audit_report.degradation_records()
                )
        if checkpointing:
            # The run completed; a leftover snapshot would only invite a
            # stale resume of a finished point.
            try:
                os.unlink(checkpoint_path)
            except OSError:
                pass
        return CoSimResult(
            workload=workload.name,
            cores=cores,
            performance=performance,
            instructions=scheduler.instructions_retired,
            accesses=performance.stats.accesses,
            filtered=performance.filtered_transactions,
            degradation=degradation,
            audit=audit_report,
        )


def cosim_cache_sweep(
    workload: GuestWorkload,
    cores: int,
    cache_sizes: list[int],
    line_size: int = 64,
    quantum: int = 4096,
) -> list[tuple[int, float]]:
    """Run one co-simulation per cache size; returns (size, MPKI) pairs.

    This is the exact-path analog of the Figure 4-6 sweeps, usable at
    the reduced scales the instrumented kernels execute at.  The
    simulator side (trace generation, DEX scheduling, protocol
    encoding) runs once; each size then replays the captured stream
    through a fresh emulator — field-for-field identical to giving each
    size its own platform (``tests/test_harness_replay.py``), minus the
    N-1 redundant generation passes.
    """
    # Imported here: the replay engine sits above this module and
    # imports CoSimResult from it.
    from repro.harness.replay import capture_replay_log, replay

    log = capture_replay_log(workload, cores, quantum=quantum)
    results: list[tuple[int, float]] = []
    for size in cache_sizes:
        config = DragonheadConfig(cache_size=size, line_size=line_size)
        results.append((size, replay(log, config).mpki))
    return results
