"""DEX: direct-execution scheduling of virtual cores.

SoftSDV's DEX mode runs guest code natively and "schedule[s] MP
workloads on a UP system by time slicing the processor execution and
exposing it as an MP system to the OS" (Section 3.2).  During each time
slice Dragonhead "is aware of the core ID that is being run natively in
that time slot", because SoftSDV sends a CORE_ID message at every slice
switch (Section 3.3).

:class:`DEXScheduler` reproduces this: it owns one
:class:`VirtualCore` per simulated core, rotates through them in fixed
quanta, and brackets the run with START/STOP emulation messages.  It
also emits INSTRUCTIONS_RETIRED and CYCLES_COMPLETED messages so the
emulator can compute instruction- and time-synchronized statistics, and
optionally injects host-OS noise traffic *outside* the emulation window
to demonstrate the AF's filtering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fsb import FrontSideBus, FSBTransaction
from repro.protocol import Message, MessageCodec, MessageKind
from repro.errors import CheckpointError, ConfigurationError
from repro.telemetry import runtime as telemetry
from repro.trace.record import AccessKind, TraceChunk
from repro.trace.stream import StreamCursor, TraceStream

#: Fast-forward bite size when replaying a stream up to a checkpointed
#: position: bounds peak memory, since each bite's chunk is discarded.
_FAST_FORWARD_BITE = 1 << 16


@dataclass
class VirtualCore:
    """One simulated core: a core id plus its thread's memory trace.

    ``instructions_per_access`` converts transaction counts into retired
    instructions (a workload with 50% memory instructions retires two
    instructions per memory transaction).
    """

    core_id: int
    stream: TraceStream
    instructions_per_access: float = 2.0

    def __post_init__(self) -> None:
        if self.instructions_per_access < 1.0:
            raise ConfigurationError(
                "instructions_per_access must be >= 1 (every access is an instruction), "
                f"got {self.instructions_per_access}"
            )


class DEXScheduler:
    """Round-robin time-slice scheduler driving the front-side bus.

    Args:
        bus: the FSB both the guest traffic and the protocol messages go
            out on.
        cores: the virtual cores, in core-id order.
        quantum: transactions issued per time slice.  The real platform
            slices on timer interrupts; transaction count is the
            deterministic analog.
        cycles_per_instruction: nominal guest CPI used to synthesize the
            cycles-completed counter (the emulated time domain).
        frequency_hz: nominal guest clock, fixing the cycle↔time scale.
        os_noise_accesses: host/OS transactions issued *before* START
            and *after* STOP, which the emulator must filter out.
    """

    def __init__(
        self,
        bus: FrontSideBus,
        cores: list[VirtualCore],
        quantum: int = 4096,
        cycles_per_instruction: float = 1.0,
        frequency_hz: float = 3e9,
        os_noise_accesses: int = 0,
        noise_seed: int = 12345,
    ) -> None:
        if not cores:
            raise ConfigurationError("DEXScheduler needs at least one virtual core")
        if quantum <= 0:
            raise ConfigurationError(f"quantum must be positive, got {quantum}")
        ids = [c.core_id for c in cores]
        if ids != sorted(set(ids)):
            raise ConfigurationError(f"virtual core ids must be unique and sorted, got {ids}")
        self.bus = bus
        self.cores = cores
        self.quantum = quantum
        self.cycles_per_instruction = cycles_per_instruction
        self.frequency_hz = frequency_hz
        self.os_noise_accesses = os_noise_accesses
        self._noise_rng = np.random.default_rng(noise_seed)
        self.instructions_retired = 0
        self.cycles_completed = 0
        self.slices_executed = 0
        self.transactions_issued = 0
        self._cursors: dict[int, StreamCursor] | None = None
        self._consumed: dict[int, int] = {}
        self._active: list[int] = []
        self._started = False

    # -- protocol helpers ---------------------------------------------------

    def _send(self, message: Message) -> None:
        for address in MessageCodec.encode(message):
            self.bus.issue(FSBTransaction(address=address, kind=AccessKind.WRITE))

    def _send_progress(self) -> None:
        self._send(Message(MessageKind.INSTRUCTIONS_RETIRED, self.instructions_retired))
        self._send(Message(MessageKind.CYCLES_COMPLETED, self.cycles_completed))

    def _issue_noise(self) -> None:
        """Host-OS traffic outside the emulation window (to be filtered)."""
        if self.os_noise_accesses <= 0:
            return
        addresses = self._noise_rng.integers(
            0x7000_0000, 0x7800_0000, size=self.os_noise_accesses, dtype=np.uint64
        )
        self.bus.issue_chunk(TraceChunk(addresses))

    # -- the run loop ----------------------------------------------------------

    def _start(self) -> None:
        """Open the emulation session: pre-window noise, START, cursors."""
        self._issue_noise()
        self._send(Message(MessageKind.START_EMULATION))
        self._cursors = {core.core_id: StreamCursor(core.stream) for core in self.cores}
        self._consumed = {core.core_id: 0 for core in self.cores}
        self._active = [core.core_id for core in self.cores]
        self._started = True

    def run(self, on_round=None) -> None:
        """Execute all virtual cores to completion.

        Emits: noise, START, then per slice [CORE_ID, data chunk,
        INSTRUCTIONS_RETIRED, CYCLES_COMPLETED], then STOP, then noise —
        the full Section 3.3 protocol.

        Args:
            on_round: called with the scheduler after each complete
                rotation over the active cores, except the last.  Round
                boundaries are the *only* consistent checkpoint points:
                mid-round, a chunk may be on the bus whose progress
                messages have not been sent yet.
        """
        if not self._started:
            self._start()
        cursors = self._cursors
        assert cursors is not None
        by_id = {core.core_id: core for core in self.cores}
        rounds = 0
        slices_before = self.slices_executed
        transactions_before = self.transactions_issued
        while self._active:
            rounds += 1
            still_active: list[int] = []
            for core_id in self._active:
                piece = cursors[core_id].take(self.quantum)
                if len(piece):
                    self._consumed[core_id] += len(piece)
                    self.transactions_issued += len(piece)
                    self._send(Message(MessageKind.CORE_ID, core_id))
                    self.bus.issue_chunk(piece.with_core(core_id))
                    self.slices_executed += 1
                    instructions = int(
                        len(piece) * by_id[core_id].instructions_per_access
                    )
                    self.instructions_retired += instructions
                    self.cycles_completed += int(
                        instructions * self.cycles_per_instruction
                    )
                    self._send_progress()
                if not cursors[core_id].done or len(piece) == self.quantum:
                    still_active.append(core_id)
            self._active = still_active
            if on_round is not None and self._active:
                on_round(self)
        self._send(Message(MessageKind.STOP_EMULATION))
        self._issue_noise()
        if telemetry.enabled():
            # Totals published once per run, outside the slice loop, so
            # the instrumented path adds nothing to the per-slice cost.
            telemetry.counter("repro_dex_rounds_total").inc(rounds)
            telemetry.counter("repro_dex_slices_total").inc(
                self.slices_executed - slices_before
            )
            telemetry.counter("repro_dex_transactions_total").inc(
                self.transactions_issued - transactions_before
            )

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict[str, object]:
        """Scheduler position for a checkpoint (round boundary only)."""
        return {
            "quantum": self.quantum,
            "instructions_retired": self.instructions_retired,
            "cycles_completed": self.cycles_completed,
            "slices_executed": self.slices_executed,
            "transactions_issued": self.transactions_issued,
            "consumed": dict(self._consumed),
            "active": list(self._active),
        }

    def restore(self, state: dict[str, object]) -> None:
        """Rebuild a mid-run position from :meth:`state_dict`.

        The trace streams themselves are not checkpointed — they are
        deterministic, so each core's fresh stream is fast-forwarded by
        the number of transactions the checkpointed run had consumed.
        The pre-window noise and the START message are *not* re-issued
        (the AF session state is restored separately), but the noise RNG
        is advanced past the draw the original pre-window burst made, so
        the post-STOP noise matches the uninterrupted run's exactly.
        """
        if self._started:
            raise CheckpointError(
                "cannot restore into a scheduler that has already started"
            )
        if state["quantum"] != self.quantum:
            raise CheckpointError(
                f"checkpoint quantum {state['quantum']} does not match this "
                f"scheduler's {self.quantum}"
            )
        self.instructions_retired = int(state["instructions_retired"])  # type: ignore[arg-type]
        self.cycles_completed = int(state["cycles_completed"])  # type: ignore[arg-type]
        self.slices_executed = int(state["slices_executed"])  # type: ignore[arg-type]
        self.transactions_issued = int(state["transactions_issued"])  # type: ignore[arg-type]
        self._cursors = {
            core.core_id: StreamCursor(core.stream) for core in self.cores
        }
        consumed: dict[int, int] = state["consumed"]  # type: ignore[assignment]
        self._consumed = {}
        for core in self.cores:
            target = int(consumed.get(core.core_id, 0))
            cursor = self._cursors[core.core_id]
            remaining = target
            while remaining > 0:
                piece = cursor.take(min(remaining, _FAST_FORWARD_BITE))
                if len(piece) == 0:
                    raise CheckpointError(
                        f"stream for core {core.core_id} exhausted after "
                        f"{target - remaining} of {target} checkpointed "
                        f"transactions — the workload is not the one that "
                        f"was checkpointed"
                    )
                remaining -= len(piece)
            self._consumed[core.core_id] = target
        self._active = [int(core_id) for core_id in state["active"]]  # type: ignore[union-attr]
        if self.os_noise_accesses > 0:
            # Burn the draw the original run's pre-window noise made.
            self._noise_rng.integers(
                0x7000_0000,
                0x7800_0000,
                size=self.os_noise_accesses,
                dtype=np.uint64,
            )
        self._started = True

    @property
    def elapsed_seconds(self) -> float:
        """Guest time elapsed, from the synthesized cycle counter."""
        return self.cycles_completed / self.frequency_hz
