"""Experiment configurations: the paper's three CMP design points.

Section 4.1: "we run the data-mining workloads on three simulated CMP
systems: a small-scale CMP (8 cores, SCMP), a medium-scale CMP (16
cores, MCMP), and a large-scale CMP (32 cores, LCMP).  All cores of the
CMP are assumed to be single-threaded."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.units import MB, PAPER_CACHE_SWEEP, PAPER_LINE_SWEEP


@dataclass(frozen=True, slots=True)
class CMPConfig:
    """One simulated chip multiprocessor."""

    name: str
    cores: int

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"cores must be positive, got {self.cores}")

    @property
    def threads(self) -> int:
        """One single-threaded workload thread per core."""
        return self.cores


#: The paper's three design points.
SCMP = CMPConfig("SCMP", 8)
MCMP = CMPConfig("MCMP", 16)
LCMP = CMPConfig("LCMP", 32)

ALL_CMPS: tuple[CMPConfig, ...] = (SCMP, MCMP, LCMP)

#: The projection target discussed in Section 4.3 ("even on 128 cores").
XLCMP = CMPConfig("128-core projection", 128)


class MemoryModelLike(Protocol):
    """Anything that predicts LLC MPKI for a cache configuration.

    Implemented by :class:`repro.workloads.models.WorkloadMemoryModel`;
    kept as a protocol here so sweep drivers stay decoupled from the
    model layer.
    """

    def llc_mpki(self, cache_size: int, line_size: int, threads: int) -> float: ...


def cache_size_sweep(
    model: MemoryModelLike,
    cmp_config: CMPConfig,
    sizes: Sequence[int] = PAPER_CACHE_SWEEP,
    line_size: int = 64,
) -> list[tuple[int, float]]:
    """The Figure 4/5/6 sweep: LLC MPKI across cache sizes."""
    return [
        (size, model.llc_mpki(size, line_size, cmp_config.threads)) for size in sizes
    ]


def line_size_sweep(
    model: MemoryModelLike,
    cmp_config: CMPConfig = LCMP,
    cache_size: int = 32 * MB,
    line_sizes: Sequence[int] = PAPER_LINE_SWEEP,
) -> list[tuple[int, float]]:
    """The Figure 7 sweep: LLC MPKI across line sizes at a 32 MB LLC."""
    return [
        (line, model.llc_mpki(cache_size, line, cmp_config.threads))
        for line in line_sizes
    ]


def working_set_knee(
    sweep: Sequence[tuple[int, float]], drop_fraction: float = 0.35
) -> int | None:
    """Locate a working-set knee in an MPKI-vs-size sweep.

    The paper reads working sets off the curves: the size where misses
    drop sharply.  We report the first size whose MPKI is at least
    ``drop_fraction`` below the previous point's, or None for flat
    curves (MDS).
    """
    for (prev_size, prev_mpki), (size, mpki) in zip(sweep, sweep[1:]):
        if prev_mpki > 0 and (prev_mpki - mpki) / prev_mpki >= drop_fraction:
            return size
    return None
