"""Front-side bus model.

The physical channel between the simulation host and Dragonhead: every
memory transaction the host issues is visible to passive *snoopers*
attached to the bus.  Ordinary data transactions and protocol messages
(addresses inside the reserved window, see
:mod:`repro.protocol`) share the same wires — exactly the trick the
paper's platform uses to let SoftSDV talk to the emulator without a
side channel.

The wires are not assumed perfect: a
:class:`~repro.faults.injector.FaultInjector` implements the same
:class:`BusSnooper` interface and can be attached in a snooper's place,
modelling the lossy logic-analyzer channel the real platform's AF
regulator was built to survive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.protocol import MessageCodec
from repro.trace.record import AccessKind, TraceChunk


@dataclass(frozen=True, slots=True)
class FSBTransaction:
    """One bus transaction."""

    address: int
    kind: AccessKind = AccessKind.READ
    pc: int = 0

    @property
    def is_message(self) -> bool:
        """Whether this transaction encodes a protocol message."""
        return MessageCodec.is_message(self.address)

    @property
    def message_opcode(self) -> int | None:
        """The raw opcode field for message transactions, else None.

        A classification peek (no decoder state): lossy-channel shims
        like :class:`~repro.faults.injector.FaultInjector` use it to
        route stat-read messages to their own fault channel.
        """
        if not self.is_message:
            return None
        return MessageCodec.peek_opcode(self.address)


class BusSnooper(Protocol):
    """Anything that passively observes bus traffic (e.g. Dragonhead)."""

    def snoop(self, transaction: FSBTransaction) -> None: ...

    def snoop_chunk(self, chunk: TraceChunk) -> None: ...


class FrontSideBus:
    """A bus with attached passive snoopers.

    The bus does not model timing or arbitration — Dragonhead is
    passive, so transaction *order* is the only architectural content.
    Chunked issue is provided so bulk traces avoid per-transaction
    Python overhead where the snooper supports it.
    """

    def __init__(self) -> None:
        self._snoopers: list[BusSnooper] = []
        self.transactions_issued: int = 0

    def attach(self, snooper: BusSnooper) -> None:
        """Attach a passive snooper; it sees every subsequent transaction."""
        self._snoopers.append(snooper)

    def detach(self, snooper: BusSnooper) -> None:
        self._snoopers.remove(snooper)

    def issue(self, transaction: FSBTransaction) -> None:
        """Place one transaction on the bus."""
        self.transactions_issued += 1
        for snooper in self._snoopers:
            snooper.snoop(transaction)

    def issue_address(self, address: int, kind: AccessKind = AccessKind.READ) -> None:
        """Convenience wrapper for message transactions."""
        self.issue(FSBTransaction(address=address, kind=kind))

    def issue_chunk(self, chunk: TraceChunk) -> None:
        """Place a whole trace chunk on the bus, in order."""
        self.transactions_issued += len(chunk)
        for snooper in self._snoopers:
            snooper.snoop_chunk(chunk)
