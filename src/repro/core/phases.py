"""Phase detection from emulator window samples.

Section 1 argues for full-run co-simulation precisely because it
"supports changing application phase behavior and also helps choose
representative regions for detailed simulation".  This module supplies
that analysis: given the 500 µs window samples the CB board collects, it
segments the run into phases of stable MPKI and ranks windows by how
representative they are of their phase — the "choose representative
regions" workflow.

The detector is a simple online change-point scheme: a new phase opens
when the windowed MPKI departs from the running phase mean by more than
``threshold`` (relative), sustained for ``confirm`` windows so single
outliers do not fragment the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.sampling import WindowSample
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Phase:
    """One detected execution phase."""

    index: int
    start_window: int
    end_window: int  # exclusive
    mean_mpki: float
    instructions: int

    @property
    def windows(self) -> int:
        return self.end_window - self.start_window


def detect_phases(
    samples: list[WindowSample],
    threshold: float = 0.5,
    confirm: int = 2,
    min_instructions: int = 1,
) -> list[Phase]:
    """Segment window samples into stable-MPKI phases.

    Args:
        samples: the emulator's per-window statistics, in order.
        threshold: relative MPKI deviation that opens a new phase.
        confirm: consecutive deviating windows required to confirm the
            transition (absorbs one-window spikes).
        min_instructions: windows below this retire count are treated
            as idle and attached to the current phase.
    """
    if threshold <= 0 or confirm < 1:
        raise ConfigurationError("threshold must be positive and confirm >= 1")
    phases: list[Phase] = []
    if not samples:
        return phases

    start = 0
    mpki_sum = 0.0
    weight = 0
    instructions = 0
    pending: list[int] = []  # candidate-transition window indices

    def close(end: int) -> None:
        nonlocal start, mpki_sum, weight, instructions
        if end > start:
            phases.append(
                Phase(
                    index=len(phases),
                    start_window=start,
                    end_window=end,
                    mean_mpki=mpki_sum / weight if weight else 0.0,
                    instructions=instructions,
                )
            )
        start = end
        mpki_sum = 0.0
        weight = 0
        instructions = 0

    for i, sample in enumerate(samples):
        if sample.instructions < min_instructions:
            instructions += sample.instructions
            continue
        mean = mpki_sum / weight if weight else None
        deviates = (
            mean is not None
            and abs(sample.mpki - mean) > threshold * max(mean, 1e-9)
        )
        if deviates:
            pending.append(i)
            if len(pending) >= confirm:
                close(pending[0])
                for j in pending:
                    mpki_sum += samples[j].mpki
                    weight += 1
                    instructions += samples[j].instructions
                pending = []
        else:
            for j in pending:  # outliers rejoin the current phase
                mpki_sum += samples[j].mpki
                weight += 1
                instructions += samples[j].instructions
            pending = []
            mpki_sum += sample.mpki
            weight += 1
            instructions += sample.instructions
    for j in pending:
        mpki_sum += samples[j].mpki
        weight += 1
        instructions += samples[j].instructions
    close(len(samples))
    return phases


def representative_window(samples: list[WindowSample], phase: Phase) -> int:
    """The window whose MPKI is closest to its phase mean.

    This is the "representative region for detailed simulation" the
    paper's methodology section describes selecting.
    """
    best = phase.start_window
    best_distance = float("inf")
    for i in range(phase.start_window, phase.end_window):
        distance = abs(samples[i].mpki - phase.mean_mpki)
        if distance < best_distance:
            best_distance = distance
            best = i
    return best


def phase_summary(samples: list[WindowSample], **kwargs) -> list[tuple[Phase, int]]:
    """Detected phases with their representative windows."""
    phases = detect_phases(samples, **kwargs)
    return [(phase, representative_window(samples, phase)) for phase in phases]
