"""SoftSDV facade: the full-system-simulator side of the platform.

SoftSDV "provides functional models that can boot real BIOS, unmodified
versions of an OS" and, in DEX mode, natively executes guest code
(Section 3.2).  Our facade models the pieces that matter to the memory
study:

* *boot* — a burst of non-workload traffic before the emulation window
  opens (BIOS/OS activity Dragonhead must ignore);
* *guest workloads* — per-thread memory-trace streams produced either
  by the instrumented mining kernels or by the calibrated synthetic
  models;
* *MP-on-UP scheduling* — delegated to :class:`~repro.core.dex.DEXScheduler`.

The paper's platform scales "from 1 to 32" virtual cores on a DP host;
:meth:`SoftSDV.run_workload` accepts any core count and raises above the
platform's 64-hardware-thread limit noted in Section 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.dex import DEXScheduler, VirtualCore
from repro.core.fsb import FrontSideBus
from repro.errors import ConfigurationError
from repro.trace.stream import TraceStream

#: "This enables the OS to be booted and workloads to be run in
#: multi-core environments with up to 64 HW threads." (Section 3.2)
MAX_HW_THREADS = 64


@dataclass(frozen=True)
class GuestWorkload:
    """A guest application, as SoftSDV sees it.

    Attributes:
        name: workload label (e.g. ``"FIMI"``).
        thread_streams: factory mapping a thread count to one trace
            stream per thread.  Implementations come from
            :mod:`repro.workloads` (instrumented kernels or synthetic
            models).
        instructions_per_access: retired instructions per memory
            transaction (the reciprocal of the memory-instruction
            fraction in Table 2).  A sequence gives per-core values —
            multiprogrammed mixes run different workloads on different
            cores.
        nominal_cpi: guest cycles per instruction used for the emulated
            clock.
    """

    name: str
    thread_streams: Callable[[int], list[TraceStream]]
    instructions_per_access: float | Sequence[float] = 2.0
    nominal_cpi: float = 1.0

    def instruction_ratio(self, core: int) -> float:
        """Instructions per access for ``core``."""
        if isinstance(self.instructions_per_access, (int, float)):
            return float(self.instructions_per_access)
        return float(self.instructions_per_access[core])


class SoftSDV:
    """Execution-driven full-system simulator facade."""

    def __init__(
        self,
        bus: FrontSideBus,
        quantum: int = 4096,
        boot_noise_accesses: int = 8192,
        frequency_hz: float = 3e9,
    ) -> None:
        self.bus = bus
        self.quantum = quantum
        self.boot_noise_accesses = boot_noise_accesses
        self.frequency_hz = frequency_hz
        self.booted = False
        self._last_scheduler: DEXScheduler | None = None

    def boot(self) -> None:
        """Model BIOS + OS boot: pre-window bus traffic only."""
        self.booted = True

    def prepare_workload(self, workload: GuestWorkload, cores: int) -> DEXScheduler:
        """Build the scheduler for ``workload`` without running it.

        Checkpoint-resume needs the built-but-unstarted scheduler so a
        snapshot can be restored into it before any bus traffic is
        issued; :meth:`run_workload` remains the one-call path.
        """
        if not self.booted:
            self.boot()
        if not 1 <= cores <= MAX_HW_THREADS:
            raise ConfigurationError(
                f"SoftSDV DEX supports 1-{MAX_HW_THREADS} hardware threads, got {cores}"
            )
        streams = workload.thread_streams(cores)
        if len(streams) != cores:
            raise ConfigurationError(
                f"workload {workload.name!r} produced {len(streams)} streams "
                f"for {cores} cores"
            )
        virtual_cores = [
            VirtualCore(
                core_id=i,
                stream=stream,
                instructions_per_access=workload.instruction_ratio(i),
            )
            for i, stream in enumerate(streams)
        ]
        scheduler = DEXScheduler(
            bus=self.bus,
            cores=virtual_cores,
            quantum=self.quantum,
            cycles_per_instruction=workload.nominal_cpi,
            frequency_hz=self.frequency_hz,
            os_noise_accesses=self.boot_noise_accesses,
        )
        self._last_scheduler = scheduler
        return scheduler

    def run_workload(self, workload: GuestWorkload, cores: int) -> DEXScheduler:
        """Launch ``workload`` with one guest thread per virtual core.

        Returns the scheduler after it has run to completion; its
        counters give the simulated-time denominators.
        """
        scheduler = self.prepare_workload(workload, cores)
        scheduler.run()
        return scheduler
