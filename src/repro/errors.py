"""Exception hierarchy for the repro package.

Every error raised by the package derives from :class:`ReproError` so
callers can catch package failures with a single ``except`` clause while
still distinguishing configuration mistakes from protocol violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An object was constructed with parameters outside its supported range.

    Mirrors the hardware limits of the modelled platform: for example the
    Dragonhead emulator only supports cache sizes from 1 MB to 256 MB and
    line sizes from 64 B to 4096 B, so configuring it outside that envelope
    raises this error rather than silently emulating unsupported hardware.
    """


class ProtocolError(ReproError):
    """A front-side-bus message stream violated the co-simulation protocol.

    Raised, for example, when a ``STOP_EMULATION`` message arrives while no
    emulation window is open, or when a message transaction carries an
    opcode outside the defined set.
    """


class TraceError(ReproError):
    """A memory trace was malformed or streams could not be combined."""


class CalibrationError(ReproError):
    """A workload memory model could not satisfy its calibration targets."""
