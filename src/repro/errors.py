"""Exception hierarchy for the repro package.

Every error raised by the package derives from :class:`ReproError` so
callers can catch package failures with a single ``except`` clause while
still distinguishing configuration mistakes from protocol violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An object was constructed with parameters outside its supported range.

    Mirrors the hardware limits of the modelled platform: for example the
    Dragonhead emulator only supports cache sizes from 1 MB to 256 MB and
    line sizes from 64 B to 4096 B, so configuring it outside that envelope
    raises this error rather than silently emulating unsupported hardware.
    """


class ProtocolError(ReproError):
    """A front-side-bus message stream violated the co-simulation protocol.

    Raised, for example, when a ``STOP_EMULATION`` message arrives while no
    emulation window is open, or when a message transaction carries an
    opcode outside the defined set.
    """


class RecoverableProtocolError(ProtocolError):
    """A protocol anomaly the lenient address filter resynchronized over.

    The real platform's channel is lossy — Dragonhead passively snoops a
    live front-side bus, so a message transaction can be dropped or
    delayed in flight.  In lenient mode the address filter does not
    raise on such anomalies; it records them as degradation and keeps
    emulating.  This class exists so callers that *want* the anomaly as
    an exception (strict mode, diagnostics) can still distinguish a
    survivable de-synchronization from a hard protocol violation.
    """


class FaultInjectionError(ReproError):
    """A fault-injection plan was malformed or deliberately fired.

    Raised when a ``--inject`` FAULTSPEC cannot be parsed, and by the
    harness-level fault channels (worker crash/hang) when a plan tells a
    sweep worker to fail — the software analog of a host CPU seizing
    mid-run while the FPGAs keep snooping.
    """


class SweepPointError(ReproError):
    """A sweep grid point failed; carries the offending item and cause.

    A bare worker exception says nothing about *which* (workload ×
    geometry) point died, which makes a 100-point sweep failure opaque.
    The supervisor and ``parallel_map`` wrap worker errors in this class
    so the failing point travels with the traceback.
    """

    def __init__(self, point: object, cause: BaseException, attempts: int = 1) -> None:
        self.point = point
        self.cause = cause
        self.attempts = attempts
        suffix = f" after {attempts} attempts" if attempts > 1 else ""
        super().__init__(
            f"sweep point {point!r} failed{suffix}: {type(cause).__name__}: {cause}"
        )


class SweepInterrupted(ReproError):
    """A supervised sweep was interrupted (SIGINT) before completion.

    Carries the partial results so the caller can print a drain report;
    completed points are already journaled and a ``--resume`` run will
    skip them.
    """

    def __init__(self, completed: int, total: int) -> None:
        self.completed = completed
        self.total = total
        super().__init__(f"sweep interrupted: {completed}/{total} points completed")


class DeadlineExpired(SweepInterrupted):
    """A run-level ``--deadline`` expired before the sweep completed.

    A subclass of :class:`SweepInterrupted` because the semantics are
    identical to SIGINT by design: in-flight work is cancelled with the
    same grace, completed points are already journaled, and a
    ``--resume`` run finishes the sweep byte-identically.  The distinct
    type exists so CLIs can exit 124 (the ``timeout(1)`` convention)
    instead of 130.
    """

    def __init__(self, completed: int, total: int) -> None:
        super().__init__(completed, total)
        # Overwrite the SweepInterrupted message with the deadline one.
        self.args = (
            f"deadline expired: {completed}/{total} points completed",
        )


class RemotePointError(ReproError):
    """A sweep point failed on a fabric worker in another process.

    The original exception cannot cross the ledger (only its rendered
    text can), so the driver re-raises it as this type, carrying the
    worker's identity and the original ``Type: message`` text.
    """

    def __init__(self, text: str, worker: str | None = None) -> None:
        self.worker = worker
        suffix = f" (on worker {worker})" if worker else ""
        super().__init__(f"{text}{suffix}")


class QuarantinedPointError(ReproError):
    """A sweep point was quarantined as poison.

    The point's lease expired under K distinct workers — each one
    presumably killed mid-execution — so the fabric stops feeding it
    workers and records it as quarantined instead of retrying forever.
    """

    def __init__(self, key: str, dead_workers: list[str]) -> None:
        self.key = key
        self.dead_workers = list(dead_workers)
        super().__init__(
            f"point {key[:12]}… quarantined after its lease expired under "
            f"{len(self.dead_workers)} worker(s): {', '.join(self.dead_workers)}"
        )


class FabricError(ReproError):
    """The distributed sweep fabric lost a guarantee it cannot degrade.

    Raised when a re-executed point's result is not byte-identical to
    the first recording (the task broke the pure-function contract that
    makes work-stealing retries idempotent), or when the worker fleet
    cannot be kept alive (every respawn dies immediately — a bad
    interpreter or launch template, not a transient fault).  Point-level
    failures never raise this: they retry, degrade, or quarantine.
    """


class CheckpointError(ReproError):
    """A co-simulation checkpoint could not be written, read, or applied.

    Raised when a snapshot file is damaged (bad magic, version, or CRC),
    or when a checkpoint is resumed against a platform whose identity
    (workload, core count, cache configuration, replay-log fingerprint)
    does not match the one that wrote it.  Resuming a mismatched
    snapshot would silently blend two different experiments, which is
    exactly the class of corruption the audit layer exists to catch —
    so the mismatch is an error, never a best-effort merge.
    """


class AuditError(ReproError):
    """A completed run failed its end-of-run consistency audit.

    Carries the full :class:`~repro.audit.report.AuditReport` so the
    caller can see every violated invariant, not just the first.  Only
    raised in strict mode; lenient runs convert the violations into
    degradation records instead.
    """

    def __init__(self, report) -> None:
        self.report = report
        names = ", ".join(check.name for check in report.violations)
        super().__init__(
            f"run failed {len(report.violations)} audit check(s): {names}"
        )

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the message) into
        # ``__init__``, which expects a report — rebuild from the report
        # instead so the error survives the worker→parent hop intact.
        return (AuditError, (self.report,))


class TraceError(ReproError):
    """A memory trace was malformed or streams could not be combined."""


class TelemetryError(ReproError):
    """The telemetry subsystem was misused or misconfigured.

    Raised when a metric name is re-registered under a different type,
    a counter is decremented, or a sink file cannot be written.  Never
    raised from the disabled path — with telemetry off every telemetry
    entry point is a no-op by construction.
    """


class CalibrationError(ReproError):
    """A workload memory model could not satisfy its calibration targets."""


class SamplingError(ReproError):
    """A sampled-simulation request was malformed or cannot be satisfied.

    Raised by :mod:`repro.simpoint` for an unparseable ``--sample``
    spec, a non-positive interval, or a sampling request that conflicts
    with per-message semantics (fault injection, lenient resync,
    checkpointing) — the sampled path replays representatives through
    the batched strict pipeline only.
    """


class JobSpecError(ConfigurationError):
    """A job specification was malformed or outside the platform envelope.

    Raised by :mod:`repro.serve.jobspec` for unknown fields, values of
    the wrong type, geometry outside the Dragonhead envelope, or option
    combinations the run paths reject (for example ``sample`` together
    with ``inject``).  A :class:`ConfigurationError` subclass so the
    serving layer can map it to a 400 response while library callers
    keep catching configuration mistakes with one clause.
    """


class ServeError(ReproError):
    """The job server could not admit, schedule, or execute a request.

    Carries an HTTP-ish status so the daemon can answer clients
    precisely: 429 for admission-queue backpressure, 503 while
    draining, 404 for unknown job ids.
    """

    def __init__(self, message: str, status: int = 500) -> None:
        self.status = status
        super().__init__(message)
