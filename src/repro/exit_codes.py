"""Process exit codes shared by every repro command-line entry point.

``repro-cosim``, ``repro-runall``, ``repro-serve``, and the traffic
harness all exit through this one table, so an operator (or a CI step)
can tell *why* a run stopped without parsing its output.  Before this
module several distinct failures collapsed to a generic nonzero exit:
a sweep point that exhausted its retries escaped as a traceback (exit
1, indistinguishable from a crash in the harness itself), while
argument errors, audit violations, and degradation each had their own
ad-hoc constant scattered across the CLIs.

========================  =============================================
code                      meaning
========================  =============================================
:data:`EXIT_OK`           the run completed
:data:`EXIT_INTERNAL`     an unexpected internal error (a traceback —
                          a bug in the platform, never a user mistake)
:data:`EXIT_USAGE`        argument errors (argparse's own convention)
:data:`EXIT_AUDIT`        a strict-mode invariant audit failed
:data:`EXIT_DEGRADED`     ``--fail-on-degraded`` found degradation
:data:`EXIT_SWEEP`        a sweep point (or a served batch) exhausted
                          its retries
:data:`EXIT_DEADLINE`     the ``--deadline`` budget expired — the
                          ``timeout(1)`` convention
:data:`EXIT_INTERRUPTED`  SIGINT drain — the shell's ``128 + SIGINT``
========================  =============================================
"""

from __future__ import annotations

EXIT_OK = 0
EXIT_INTERNAL = 1
EXIT_USAGE = 2
EXIT_AUDIT = 3
EXIT_DEGRADED = 4
EXIT_SWEEP = 5
EXIT_DEADLINE = 124
EXIT_INTERRUPTED = 130

_NAMES = {
    EXIT_OK: "ok",
    EXIT_INTERNAL: "internal error",
    EXIT_USAGE: "usage error",
    EXIT_AUDIT: "audit violation",
    EXIT_DEGRADED: "degraded (--fail-on-degraded)",
    EXIT_SWEEP: "sweep point failed",
    EXIT_DEADLINE: "deadline expired",
    EXIT_INTERRUPTED: "interrupted",
}


def describe(code: int) -> str:
    """Human name of an exit code (``"exit N"`` for unknown codes)."""
    return _NAMES.get(code, f"exit {code}")
