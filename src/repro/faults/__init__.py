"""Deterministic fault injection for the co-simulation platform.

The paper's platform was engineered around an imperfect channel: the
Dragonhead FPGAs passively snoop a live front-side bus, the AF FPGA
regulates traffic precisely because transactions can be lost or
delayed, and the host polls the CB statistics board on a 500 µs clock
it can miss.  This package reproduces those failure modes in software
so the reproduction can *study* them instead of crashing on them:

* :class:`~repro.faults.spec.FaultSpec` — a parsed, seed-driven
  ``--inject`` plan: per-channel rates plus one seed from which every
  injection decision derives deterministically;
* :class:`~repro.faults.injector.FaultInjector` — a shim implementing
  the bus-snooper interface that sits between the FSB (or the replay
  driver) and the emulator, injecting dropped/duplicated data
  transactions, lost/reordered protocol messages, and missed CB
  stat-window reads;
* :mod:`~repro.faults.report` — degradation records: every injected
  fault and every recovered anomaly, merged into the report the CLIs
  print.

Determinism is the design center: the same seed and the same grid point
always produce the same faults, so two lenient runs of an injected
sweep yield identical recovered statistics (the property the tests
assert), and a ``--resume`` after a crash replays precisely the faults
the interrupted run would have seen.
"""

from repro.faults.injector import FaultInjector, inject_trace_corruption
from repro.faults.report import DegradationRecord, merge_records
from repro.faults.spec import FaultSpec

__all__ = [
    "DegradationRecord",
    "FaultInjector",
    "FaultSpec",
    "inject_trace_corruption",
    "merge_records",
]
