"""The bus-level fault injector: a lossy channel between FSB and emulator.

:class:`FaultInjector` implements the same passive-snooper interface as
the Dragonhead emulator and wraps a downstream snooper (the emulator,
or the replay recorder), perturbing the transaction stream on its way
through:

* **data transactions** can be dropped (the logic-analyzer interface
  missed a bus cycle) or duplicated (a retried bus transaction snooped
  twice);
* **protocol messages** can be lost in flight or delayed past the next
  transaction — the adjacent reordering a deep regulator FIFO produces;
* **CB stat reads** (CYCLES_COMPLETED messages, which pace the 500 µs
  window sampler) can be missed, as a host polling on a soft timer
  does.

Every decision comes from one deterministic stream derived from the
:class:`~repro.faults.spec.FaultSpec` seed and the grid point, and
every injected fault is counted, so the degradation report can prove
that what was injected was survived.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.faults.report import INJECTED, DegradationRecord, records_from_counts
from repro.faults.spec import FaultSpec
from repro.protocol import MessageCodec, MessageKind
from repro.trace.record import TraceChunk

if TYPE_CHECKING:  # import cycle: core.fsb ← core ← cosim ← faults
    from repro.core.fsb import FSBTransaction


class FaultInjector:
    """A faulty bus segment in front of one snooper.

    Attach it to a :class:`~repro.core.fsb.FrontSideBus` in place of the
    snooper it wraps, or hand it to the replay driver as the emulation
    port.  Call :meth:`flush` once the stream ends so a delayed message
    still arrives (merely late) instead of vanishing.
    """

    def __init__(
        self, downstream, spec: FaultSpec, point: object = ""
    ) -> None:
        self.downstream = downstream
        self.spec = spec
        self._rng = spec.rng(point, "bus")
        self._stash: FSBTransaction | None = None
        self.counts: dict[str, int] = {}

    # -- accounting ----------------------------------------------------

    def _count(self, kind: str, n: int = 1) -> None:
        if n:
            self.counts[kind] = self.counts.get(kind, 0) + n

    @property
    def records(self) -> tuple[DegradationRecord, ...]:
        """Everything this injector did to the stream, as records."""
        return records_from_counts(self.counts, INJECTED)

    # -- BusSnooper interface ------------------------------------------

    def snoop(self, transaction: FSBTransaction) -> None:
        if transaction.is_message:
            self._snoop_message(transaction)
        else:
            self._snoop_data(transaction)

    def snoop_chunk(self, chunk: TraceChunk) -> None:
        spec = self.spec
        n = len(chunk)
        if n and (spec.drop_data > 0.0 or spec.dup_data > 0.0):
            draws = self._rng.random(n)
            drop = draws < spec.drop_data
            dup = (draws >= spec.drop_data) & (
                draws < spec.drop_data + spec.dup_data
            )
            if drop.any() or dup.any():
                copies = np.ones(n, dtype=np.intp)
                copies[drop] = 0
                copies[dup] = 2
                chunk = TraceChunk(
                    np.repeat(chunk.addresses, copies),
                    np.repeat(chunk.kinds, copies),
                    np.repeat(chunk.cores, copies),
                    np.repeat(chunk.pcs, copies),
                )
                self._count("data-drop", int(np.count_nonzero(drop)))
                self._count("data-dup", int(np.count_nonzero(dup)))
        self.downstream.snoop_chunk(chunk)
        self._release()

    def flush(self) -> None:
        """Deliver any still-delayed message; call at end of stream."""
        self._release()

    # -- fault channels ------------------------------------------------

    def _snoop_message(self, transaction: FSBTransaction) -> None:
        spec = self.spec
        opcode = MessageCodec.peek_opcode(transaction.address)
        # Stat reads have their own loss channel (the host's 500 µs poll
        # is the thing that misses); every other message rides drop-msg.
        if opcode == int(MessageKind.CYCLES_COMPLETED):
            drop_rate, drop_kind = spec.miss_window, "window-miss"
        else:
            drop_rate, drop_kind = spec.drop_message, "msg-drop"
        draw = float(self._rng.random())
        if draw < drop_rate:
            self._count(drop_kind)
            return
        if self._stash is None and draw < drop_rate + spec.reorder_message:
            self._stash = transaction
            self._count("msg-reorder")
            return
        self._deliver(transaction)

    def _snoop_data(self, transaction: FSBTransaction) -> None:
        spec = self.spec
        if spec.drop_data <= 0.0 and spec.dup_data <= 0.0:
            self._deliver(transaction)
            return
        draw = float(self._rng.random())
        if draw < spec.drop_data:
            self._count("data-drop")
            self._release()  # bus time still passes for a lost cycle
            return
        self._deliver(transaction)
        if draw < spec.drop_data + spec.dup_data:
            self._count("data-dup")
            self.downstream.snoop(transaction)

    # -- delivery ------------------------------------------------------

    def _deliver(self, transaction: FSBTransaction) -> None:
        self.downstream.snoop(transaction)
        self._release()

    def _release(self) -> None:
        """Emit a delayed message after whatever overtook it."""
        if self._stash is not None:
            stashed, self._stash = self._stash, None
            self.downstream.snoop(stashed)


def inject_trace_corruption(cache, key: str, rng: np.random.Generator) -> bool:
    """Flip one payload byte in an on-disk trace-cache entry.

    Models a bit error in the capture archive.  Returns True when an
    entry existed and was damaged; the cache's CRC validation detects
    the flip on the next load, quarantines the entry, and regenerates —
    observable as ``corrupt``/``quarantined`` on its counter line.
    """
    entry = cache.entry_dir(key)
    arrays = sorted(entry.glob("*.npy")) if entry.is_dir() else []
    if not arrays:
        return False
    target = arrays[int(rng.integers(len(arrays)))]
    data = bytearray(target.read_bytes())
    # Stay clear of the .npy header so the flip lands in array payload
    # (header damage would also be caught, but payload damage is the
    # silent kind that only a checksum finds).
    floor = min(128, len(data) - 1)
    offset = int(rng.integers(floor, len(data)))
    data[offset] ^= 0xFF
    target.write_bytes(data)
    return True
