"""Degradation records: what was injected, what was recovered.

Every fault the platform survives leaves a record — either at the
injection site (the :class:`~repro.faults.injector.FaultInjector`
counting what it did to the bus) or at the recovery site (the lenient
address filter, the interpolating window sampler, the trace cache's
quarantine, the sweep supervisor's retry loop).  The records flow into
:class:`~repro.core.cosim.CoSimResult` and up to the CLIs, which render
them as the degradation report — the software analog of the error
counters a hardware bring-up team reads after a flaky run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

#: Record sources.
INJECTED = "injected"
RECOVERED = "recovered"
#: A lenient-mode run whose end-of-run audit found violated invariants
#: (strict mode raises :class:`~repro.errors.AuditError` instead).
AUDIT = "audit"
#: A resource budget fired and the run degraded instead of dying: a
#: trace-cache store fell back to cache-off, a supervised map clamped
#: to serial under memory pressure, a deadline drained the sweep.
GOVERNOR = "governor"


@dataclass(frozen=True, slots=True)
class DegradationRecord:
    """One counted anomaly class from one source.

    Attributes:
        kind: taxonomy key (e.g. ``"msg-drop"``, ``"orphan-stop"``;
            see the table in ``docs/architecture.md``).
        source: :data:`INJECTED` (a fault plan put it on the bus) or
            :data:`RECOVERED` (a lenient component resynchronized over
            it).
        count: occurrences.
        detail: optional human-readable context.
    """

    kind: str
    source: str
    count: int
    detail: str = ""


def records_from_counts(
    counts: Mapping[str, int], source: str, detail: str = ""
) -> tuple[DegradationRecord, ...]:
    """Lift a ``{kind: count}`` counter dict into records (zeros dropped)."""
    return tuple(
        DegradationRecord(kind=kind, source=source, count=count, detail=detail)
        for kind, count in sorted(counts.items())
        if count
    )


def collect_run_degradation(injector, performance) -> tuple[DegradationRecord, ...]:
    """One run's degradation: injection-site plus recovery-site records.

    The single counting path shared by ``CoSimPlatform.run`` and the
    replay engine — both used to walk the injector's records and the
    :class:`~repro.cache.emulator.PerformanceData` degradation
    separately; this helper is now the only place that combination
    lives, so the two paths cannot drift.  ``injector`` may be None
    (no fault plan on the bus).
    """
    injected = injector.records if injector is not None else ()
    return merge_records(injected, performance.degradation)


def merge_records(
    *groups: Iterable[DegradationRecord],
) -> tuple[DegradationRecord, ...]:
    """Combine record groups, summing counts per (kind, source, detail).

    The result is sorted, so merged reports are deterministic no matter
    which order the sources were collected in — a requirement for the
    same-seed-identical-stats contract.
    """
    totals: dict[tuple[str, str, str], int] = {}
    for group in groups:
        for record in group:
            key = (record.kind, record.source, record.detail)
            totals[key] = totals.get(key, 0) + record.count
    return tuple(
        DegradationRecord(kind=kind, source=source, count=count, detail=detail)
        for (kind, source, detail), count in sorted(totals.items())
        if count
    )
