"""``--inject`` FAULTSPEC parsing and deterministic decision streams.

A fault plan is written as a comma-separated list of ``channel=value``
pairs, e.g.::

    --inject "seed=42,drop-data=0.001,drop-msg=0.01,miss-window=0.05"

Each channel models one hardware failure mode of the paper's platform
(see the taxonomy table in ``docs/architecture.md``).  Rates are
per-opportunity probabilities in ``[0, 1]``; ``corrupt-trace`` is a
count of cache entries to damage; ``seed`` anchors every random
decision.

Determinism contract: every decision stream is derived from
``(seed, scope...)`` via SHA-256, never from global state, so the same
spec injects the same faults at the same points regardless of worker
count, submission order, or how a sweep was resumed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, replace

import numpy as np

from repro.errors import FaultInjectionError

#: FAULTSPEC channel name → FaultSpec field, with its value parser.
_CHANNELS: dict[str, tuple[str, type]] = {
    "seed": ("seed", int),
    "drop-data": ("drop_data", float),
    "dup-data": ("dup_data", float),
    "drop-msg": ("drop_message", float),
    "reorder-msg": ("reorder_message", float),
    "miss-window": ("miss_window", float),
    "corrupt-trace": ("corrupt_trace", int),
    "crash": ("crash", float),
    "hang": ("hang", float),
    "hang-seconds": ("hang_seconds", float),
}

_RATE_FIELDS = (
    "drop_data",
    "dup_data",
    "drop_message",
    "reorder_message",
    "miss_window",
    "crash",
    "hang",
)


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """A parsed fault-injection plan (picklable: crosses worker processes).

    Attributes:
        seed: anchor of every decision stream.
        drop_data: probability a data transaction vanishes on the bus.
        dup_data: probability a data transaction is seen twice.
        drop_message: probability a protocol message is lost in flight.
        reorder_message: probability a protocol message is delayed past
            the next transaction (adjacent reordering).
        miss_window: probability one CB stat read (a CYCLES_COMPLETED
            message) is missed by the host.
        corrupt_trace: number of trace-cache entries to bit-flip before
            the sweep loads them.
        crash: probability a sweep worker dies mid-point (first attempt
            only, so retry always converges).
        hang: probability a sweep worker stalls mid-point (first
            attempt only).
        hang_seconds: how long an injected hang sleeps — finite, so an
            untimed sweep still finishes, merely late.
    """

    seed: int = 0
    drop_data: float = 0.0
    dup_data: float = 0.0
    drop_message: float = 0.0
    reorder_message: float = 0.0
    miss_window: float = 0.0
    corrupt_trace: int = 0
    crash: float = 0.0
    hang: float = 0.0
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultInjectionError(
                    f"fault rate {name.replace('_', '-')} must be in [0, 1], got {rate}"
                )
        if self.corrupt_trace < 0:
            raise FaultInjectionError(
                f"corrupt-trace must be a non-negative count, got {self.corrupt_trace}"
            )
        if self.hang_seconds <= 0:
            raise FaultInjectionError(
                f"hang-seconds must be positive, got {self.hang_seconds}"
            )

    # -- parsing -------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse a ``--inject`` FAULTSPEC string."""
        spec = cls()
        for token in text.split(","):
            token = token.strip()
            if not token:
                continue
            name, _, raw = token.partition("=")
            name = name.strip()
            if name not in _CHANNELS:
                known = ", ".join(sorted(_CHANNELS))
                raise FaultInjectionError(
                    f"unknown fault channel {name!r}; valid channels: {known}"
                )
            field_name, parser = _CHANNELS[name]
            try:
                value = parser(raw.strip())
            except ValueError:
                raise FaultInjectionError(
                    f"fault channel {name!r} needs a {parser.__name__}, got {raw!r}"
                ) from None
            spec = replace(spec, **{field_name: value})
        return spec

    def describe(self) -> str:
        """Render the non-default channels back into FAULTSPEC form."""
        default = FaultSpec()
        parts = [f"seed={self.seed}"]
        for name, (field_name, _) in _CHANNELS.items():
            if name == "seed":
                continue
            value = getattr(self, field_name)
            if value != getattr(default, field_name):
                parts.append(f"{name}={value}")
        return ",".join(parts)

    @property
    def touches_bus(self) -> bool:
        """Whether any bus-level channel is active (needs an injector)."""
        return any(
            getattr(self, name) > 0.0
            for name in (
                "drop_data",
                "dup_data",
                "drop_message",
                "reorder_message",
                "miss_window",
            )
        )

    # -- deterministic decision streams --------------------------------

    def rng(self, *scope: object) -> np.random.Generator:
        """A decision stream for one ``scope`` (e.g. a grid point).

        The scope strings are hashed into the seed material, so streams
        for different points (or different channels at one point) are
        independent, yet fully reproducible from the spec alone.
        """
        digest = hashlib.sha256(
            "\x1f".join(str(part) for part in scope).encode("utf-8")
        ).digest()
        words = np.frombuffer(digest[:16], dtype=np.uint32)
        return np.random.default_rng([self.seed, *(int(w) for w in words)])

    def harness_fault(self, point_key: str) -> str | None:
        """Harness-level fate of one grid point: 'crash', 'hang', or None.

        Decided per point, applied only on the first attempt — the
        analog of a transient host failure, which a retry survives.
        """
        if self.crash <= 0.0 and self.hang <= 0.0:
            return None
        draw = float(self.rng(point_key, "harness").random())
        if draw < self.crash:
            return "crash"
        if draw < self.crash + self.hang:
            return "hang"
        return None


def parse_fault_spec(text: str | None) -> FaultSpec | None:
    """CLI helper: None/empty disables injection entirely."""
    if text is None or not text.strip():
        return None
    return FaultSpec.parse(text)
