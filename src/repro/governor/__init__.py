"""Resource governance: budgets, graceful degradation, pressure tooling.

The governor turns three unbounded resources — disk under the trace
cache, process memory, and wall-clock time — into explicit budgets,
and turns every budget breach into a *recorded degradation* instead of
a crash.  See :mod:`repro.governor.budget` for the ambient governor,
:mod:`repro.governor.gc` for quota eviction (imported lazily by the
trace cache — import it explicitly as ``repro.governor.gc``),
:mod:`repro.governor.retry` for the shared transient-I/O policy, and
:mod:`repro.governor.fsshim` for the injectable filesystem faults the
pressure harness uses to prove the degradation paths.
"""

from repro.governor.budget import (
    GovernorState,
    ResourceBudget,
    active_governor,
    govern,
    maxrss_bytes,
)
from repro.governor.fsshim import FsFaultPlan, fault_point
from repro.governor.retry import (
    DEFAULT_RETRIES,
    TRANSIENT_ERRNOS,
    is_transient,
    retry_io,
)

__all__ = [
    "DEFAULT_RETRIES",
    "FsFaultPlan",
    "GovernorState",
    "ResourceBudget",
    "TRANSIENT_ERRNOS",
    "active_governor",
    "fault_point",
    "govern",
    "is_transient",
    "maxrss_bytes",
    "retry_io",
]
