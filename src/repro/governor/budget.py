"""Resource budgets and the ambient run governor.

A long run dies three ways the fault framework never modelled: the
disk under the trace cache fills (ENOSPC mid-store), the process heap
outgrows the machine (the OOM killer is not a recoverable fault), or
the operator's time runs out with nothing checkpointed.  This module
makes all three *budgets* — explicit, operator-set ceilings — and
gives the rest of the codebase one ambient object to ask "am I still
inside them?".

Three budget axes, one :class:`ResourceBudget`:

* ``disk_quota`` — bytes the trace cache (plus the checkpoint
  directory it shares a volume with) may occupy.  Enforced by the
  LRU eviction GC in :mod:`repro.governor.gc`.
* ``mem_budget`` — a high-water mark on the process's ``maxrss``.
  Breaching it does not kill anything; it *degrades*: new supervised
  maps clamp to serial execution (worker processes are the multiplier
  on resident memory) and the breach is recorded.
* ``deadline_s`` — a run-level wall-clock budget.  Expiry drains the
  supervisor exactly like SIGINT: in-flight work is cancelled, the
  journal keeps every completed point, a partial report prints, and
  ``--resume`` finishes the sweep byte-identically.

Every breach produces a :class:`~repro.faults.report.DegradationRecord`
with the :data:`~repro.faults.report.GOVERNOR` source and a
``repro_governor_events_total`` counter increment, so a degraded run is
never silently degraded.

:func:`govern` installs the ambient :class:`GovernorState` the same way
:func:`repro.harness.supervisor.supervise` installs its context, so
budget enforcement reaches the supervisor, the trace cache, and the
sinks without threading a parameter through every signature.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import ConfigurationError
from repro.faults.report import GOVERNOR, DegradationRecord
from repro.telemetry import runtime as telemetry


def maxrss_bytes() -> int:
    """The process's resident-set high-water mark, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS — the one
    platform wrinkle this module owns so nobody else has to.
    """
    import resource

    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss if sys.platform == "darwin" else rss * 1024


@dataclass(frozen=True)
class ResourceBudget:
    """Operator-set ceilings for one run; None disables an axis.

    Attributes:
        disk_quota: bytes the trace cache + checkpoint dir may occupy.
        mem_budget: maxrss high-water mark in bytes.
        deadline_s: run wall-clock budget in seconds, measured from
            :func:`govern` entry.
    """

    disk_quota: int | None = None
    mem_budget: int | None = None
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.disk_quota is not None and self.disk_quota <= 0:
            raise ConfigurationError(
                f"disk quota must be positive, got {self.disk_quota}"
            )
        if self.mem_budget is not None and self.mem_budget <= 0:
            raise ConfigurationError(
                f"memory budget must be positive, got {self.mem_budget}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline must be positive, got {self.deadline_s}"
            )

    @property
    def any_set(self) -> bool:
        return (
            self.disk_quota is not None
            or self.mem_budget is not None
            or self.deadline_s is not None
        )


class GovernorState:
    """One run's budget-enforcement state (latches, records, clock).

    The deadline anchor is taken at construction (monotonic), so a
    governor built at CLI entry measures the whole run, setup included
    — the budget the operator actually meant.
    """

    def __init__(
        self,
        budget: ResourceBudget,
        maxrss_fn: Callable[[], int] = maxrss_bytes,
    ) -> None:
        self.budget = budget
        self.records: list[DegradationRecord] = []
        self.counts: dict[str, int] = {}
        self._maxrss_fn = maxrss_fn
        self._mem_breached = False
        self._deadline_noted = False
        self.deadline_at: float | None = (
            None
            if budget.deadline_s is None
            else time.monotonic() + budget.deadline_s
        )

    # -- bookkeeping ---------------------------------------------------

    def count(self, event: str, n: int = 1) -> None:
        self.counts[event] = self.counts.get(event, 0) + n
        telemetry.counter("repro_governor_events_total", event=event).inc(n)

    def record(self, kind: str, detail: str = "", count: int = 1) -> None:
        """One budget-triggered fallback, counted and kept for the report."""
        self.records.append(
            DegradationRecord(kind=kind, source=GOVERNOR, count=count, detail=detail)
        )
        self.count(kind, count)

    def describe(self) -> str:
        """One-line event summary (empty when no budget ever fired)."""
        return " ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))

    # -- deadline ------------------------------------------------------

    def deadline_expired(self) -> bool:
        return self.deadline_at is not None and time.monotonic() >= self.deadline_at

    def deadline_remaining(self) -> float | None:
        """Seconds left on the clock, or None when no deadline is set."""
        if self.deadline_at is None:
            return None
        return max(0.0, self.deadline_at - time.monotonic())

    def note_deadline(self, completed: int, total: int) -> None:
        """Record the expiry once, no matter how many layers observe it."""
        if self._deadline_noted:
            return
        self._deadline_noted = True
        self.record(
            "deadline",
            detail=f"expired after {self.budget.deadline_s:.3g}s with "
            f"{completed}/{total} points complete",
        )

    # -- memory --------------------------------------------------------

    def memory_pressure(self) -> bool:
        """Whether maxrss has (ever) crossed the budget.

        The breach latches: maxrss is a high-water mark, so once over
        it the process never reads under again — and the degradation
        (serial maps) should stay in force for the rest of the run.
        The first breach leaves a degradation record.
        """
        if self.budget.mem_budget is None:
            return False
        if self._mem_breached:
            return True
        rss = self._maxrss_fn()
        telemetry.gauge("repro_process_maxrss_bytes").set(float(rss))
        if rss > self.budget.mem_budget:
            self._mem_breached = True
            self.record(
                "mem-pressure",
                detail=f"maxrss {rss} > budget {self.budget.mem_budget} bytes; "
                "supervised maps clamped to serial",
            )
        return self._mem_breached


_ACTIVE: GovernorState | None = None


def active_governor() -> GovernorState | None:
    """The installed governor, if a budgeted run is in progress."""
    return _ACTIVE


@contextmanager
def govern(
    budget: ResourceBudget | None,
    maxrss_fn: Callable[[], int] = maxrss_bytes,
) -> Iterator[GovernorState | None]:
    """Install a run governor for the duration of a budgeted run.

    A None (or empty) budget installs nothing and yields None, so CLIs
    can wrap unconditionally — un-budgeted runs stay byte-identical,
    paying one ``is None`` test at each enforcement point.
    """
    global _ACTIVE
    if budget is None or not budget.any_set:
        yield None
        return
    state = GovernorState(budget, maxrss_fn=maxrss_fn)
    previous = _ACTIVE
    _ACTIVE = state
    try:
        yield state
    finally:
        _ACTIVE = previous
