"""Injectable filesystem faults: seeded ENOSPC/EIO at the write sites.

The pressure harness needs to *prove* the degradation paths — evict-
and-retry on ENOSPC, bounded retry on EIO, cache-off as the final
fallback — and proving them requires failures on demand.  Real disks
fail rarely and unreproducibly; this shim fails deterministically.

Every durable write site in the tree calls :func:`fault_point` with a
site label before touching the filesystem::

    fault_point("trace-cache.store")

With no plan installed that call is one global ``is None`` test.  With
a plan installed it draws one decision from a SHA-256-derived stream
keyed by ``(seed, site, per-site call index)`` — the same derivation
discipline as :meth:`repro.faults.spec.FaultSpec.rng` — and raises a
real ``OSError(ENOSPC)`` or ``OSError(EIO)`` when the draw says so.
Same seed, same faults at the same calls, regardless of timing.

Plans install in-process (:func:`install`) or, for CLI subprocess
tests, via the ``REPRO_FS_FAULTS`` environment variable, e.g.::

    REPRO_FS_FAULTS="seed=7,enospc=0.1,eio=0.05,limit=8"

``limit`` caps the total faults delivered, so a shimmed run always
terminates; ``sites`` (``+``-separated) restricts the blast radius.
"""

from __future__ import annotations

import errno
import hashlib
import os
from dataclasses import dataclass, field, replace

from repro.errors import FaultInjectionError

#: Environment variable a CLI subprocess reads a plan from.
FS_FAULTS_ENV = "REPRO_FS_FAULTS"

#: Site labels wired into the tree; :func:`fault_point` accepts any
#: string, but the known set keeps plan ``sites=`` filters honest.
KNOWN_SITES = frozenset(
    {
        "trace-cache.store",
        "trace-cache.load",
        "journal.append",
        "ledger.append",
        "telemetry.emit",
        "telemetry.prometheus",
        "checkpoint.write",
    }
)


@dataclass(frozen=True)
class FsFaultPlan:
    """A parsed filesystem fault plan.

    Attributes:
        seed: anchor of every decision stream.
        enospc: per-call probability of ``OSError(ENOSPC)``.
        eio: per-call probability of ``OSError(EIO)``.
        limit: total faults to deliver before the shim goes quiet
            (None = unbounded; the pressure harness always bounds it).
        sites: site labels the plan applies to (None = all).
    """

    seed: int = 0
    enospc: float = 0.0
    eio: float = 0.0
    limit: int | None = None
    sites: frozenset[str] | None = None

    def __post_init__(self) -> None:
        for name in ("enospc", "eio"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultInjectionError(
                    f"fs fault rate {name} must be in [0, 1], got {rate}"
                )
        if self.limit is not None and self.limit < 0:
            raise FaultInjectionError(
                f"fs fault limit must be non-negative, got {self.limit}"
            )
        if self.sites is not None:
            unknown = self.sites - KNOWN_SITES
            if unknown:
                raise FaultInjectionError(
                    f"unknown fs fault site(s): {sorted(unknown)}; "
                    f"known sites: {sorted(KNOWN_SITES)}"
                )

    @classmethod
    def parse(cls, text: str) -> "FsFaultPlan":
        """Parse a ``key=value`` comma list (the env-var format)."""
        plan = cls()
        for token in text.split(","):
            token = token.strip()
            if not token:
                continue
            name, _, raw = token.partition("=")
            name, raw = name.strip(), raw.strip()
            try:
                if name == "seed":
                    plan = replace(plan, seed=int(raw))
                elif name in ("enospc", "eio"):
                    plan = replace(plan, **{name: float(raw)})
                elif name == "limit":
                    plan = replace(plan, limit=int(raw))
                elif name == "sites":
                    plan = replace(
                        plan, sites=frozenset(s for s in raw.split("+") if s)
                    )
                else:
                    raise FaultInjectionError(
                        f"unknown fs fault field {name!r}; valid: "
                        "seed, enospc, eio, limit, sites"
                    )
            except ValueError:
                raise FaultInjectionError(
                    f"fs fault field {name!r} has a malformed value {raw!r}"
                ) from None
        return plan


class _ShimState:
    """Mutable per-install state: per-site call counters, delivery tally."""

    def __init__(self, plan: FsFaultPlan) -> None:
        self.plan = plan
        self.calls: dict[str, int] = {}
        self.delivered: list[tuple[str, str]] = []  # (site, kind)


_state: _ShimState | None = None
_env_checked = False


def install(plan: FsFaultPlan) -> None:
    """Arm the shim with a plan (replacing any previous one)."""
    global _state, _env_checked
    _state = _ShimState(plan)
    _env_checked = True


def uninstall() -> None:
    """Disarm the shim; :func:`fault_point` returns to the no-op path."""
    global _state, _env_checked
    _state = None
    _env_checked = True


def delivered() -> list[tuple[str, str]]:
    """The ``(site, kind)`` faults delivered since the last install."""
    return [] if _state is None else list(_state.delivered)


def _maybe_install_from_env() -> None:
    """One-shot: arm from ``REPRO_FS_FAULTS`` if set (CLI subprocesses)."""
    global _env_checked
    text = os.environ.get(FS_FAULTS_ENV)
    if text and text.strip():
        install(FsFaultPlan.parse(text))
    _env_checked = True


def _draw(plan: FsFaultPlan, site: str, index: int) -> float:
    """One uniform [0, 1) decision for (seed, site, call index).

    Derived by SHA-256 exactly like the bus fault channels — no global
    RNG state, so worker count and call interleaving cannot change
    which call faults.
    """
    digest = hashlib.sha256(
        f"{plan.seed}\x1f{site}\x1f{index}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def fault_point(site: str) -> None:
    """A durable write is about to happen at ``site``; maybe fail it.

    Raises ``OSError(ENOSPC)`` or ``OSError(EIO)`` per the installed
    plan; returns silently otherwise.  The disarmed fast path is one
    module-global comparison.
    """
    if _state is None:
        if _env_checked:
            return
        _maybe_install_from_env()
        if _state is None:
            return
    state = _state
    plan = state.plan
    if plan.sites is not None and site not in plan.sites:
        return
    if plan.limit is not None and len(state.delivered) >= plan.limit:
        return
    index = state.calls.get(site, 0)
    state.calls[site] = index + 1
    draw = _draw(plan, site, index)
    if draw < plan.enospc:
        state.delivered.append((site, "enospc"))
        raise OSError(errno.ENOSPC, f"injected ENOSPC at {site}")
    if draw < plan.enospc + plan.eio:
        state.delivered.append((site, "eio"))
        raise OSError(errno.EIO, f"injected EIO at {site}")
