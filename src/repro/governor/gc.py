"""Quota-aware garbage collection for the trace cache.

The content-addressed trace cache (:mod:`repro.trace.cache`) was
append-only: every captured log stayed forever, quarantined
``.corrupt`` entries piled up as evidence nobody collected, and a
crashed writer's ``.tmp-*`` staging directory leaked.  A long-running
service cannot run on a cache that only grows.  This module adds the
missing half of the cache's lifecycle:

* **LRU eviction under a disk quota** — entries are ranked by their
  directory mtime (touched on every cache hit, so it is a last-use
  stamp), and the oldest unpinned entries are evicted until usage fits.
  Content addressing makes eviction always-safe for correctness: a
  future reader of an evicted key simply misses and regenerates.
* **Pin-aware eviction** — readers pin a key for the validate-and-mmap
  window (see :func:`repro.trace.cache.pin_entry`); the evictor skips
  pinned keys, so a reader is never yanked between checksum
  verification and ``np.load``.  Readers that already hold mappings
  need no pin: eviction renames the entry directory aside and *then*
  unlinks it, and POSIX keeps established mappings alive after unlink.
* **Crash-debris collection** — age-thresholded removal of quarantined
  ``.corrupt`` entries, orphaned ``.tmp-*``/``.evict-*`` staging
  directories, and stale ``*.ckpt`` files in the checkpoint directory,
  all counted in :class:`~repro.trace.cache.TraceCacheStats`.

Eviction is concurrency-safe by construction: the only mutating step
is one atomic ``os.rename`` per entry, so two processes enforcing the
same quota race harmlessly — the loser's rename fails with ENOENT and
it moves on.  No manifest is ever rewritten in place.
"""

from __future__ import annotations

import os
import shutil
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.telemetry import runtime as telemetry
from repro.trace.cache import (
    PINS_DIR,
    QUARANTINE_SUFFIX,
    TraceCache,
    pinned_keys,
)

#: Default age (seconds) a quarantined entry, orphaned staging dir, or
#: leftover checkpoint must reach before the debris collector removes
#: it — old enough that no live run still owns it.
DEFAULT_GC_AGE_S = 7 * 24 * 3600.0

#: Environment override for that age, so CI (and impatient operators)
#: can collect young debris.
GC_AGE_ENV = "REPRO_GC_AGE_S"


def gc_age_s() -> float:
    value = os.environ.get(GC_AGE_ENV)
    return float(value) if value else DEFAULT_GC_AGE_S


@dataclass(frozen=True)
class EntryInfo:
    """One complete cache entry as the evictor sees it."""

    key: str
    path: Path
    mtime: float
    bytes: int


def _tree_bytes(path: Path) -> int:
    """Total file bytes under ``path`` (missing files tolerated)."""
    total = 0
    for root, _dirs, files in os.walk(path):
        for name in files:
            try:
                total += os.stat(os.path.join(root, name)).st_size
            except OSError:
                continue
    return total


def _subdirs(path: Path) -> Iterable[os.DirEntry]:
    try:
        with os.scandir(path) as it:
            yield from [entry for entry in it]
    except OSError:
        return


def scan_entries(cache: TraceCache) -> list[EntryInfo]:
    """Every published entry in the cache, with size and last-use stamp.

    Quarantined ``.corrupt`` directories and root-level staging
    directories are *not* entries; they are accounted separately by
    :func:`debris_bytes` and collected by :func:`collect_garbage`.
    """
    entries: list[EntryInfo] = []
    for fanout in _subdirs(cache.root):
        if not fanout.is_dir() or len(fanout.name) != 2:
            continue
        for child in _subdirs(Path(fanout.path)):
            if not child.is_dir() or child.name.endswith(QUARANTINE_SUFFIX):
                continue
            try:
                mtime = child.stat().st_mtime
            except OSError:
                continue  # concurrently evicted or quarantined
            entries.append(
                EntryInfo(
                    key=fanout.name + child.name,
                    path=Path(child.path),
                    mtime=mtime,
                    bytes=_tree_bytes(Path(child.path)),
                )
            )
    return entries


def debris_bytes(cache: TraceCache) -> int:
    """Bytes held by quarantine, staging leftovers, and pins.

    All of it counts against the quota — a cache drowning in ``.corrupt``
    specimens is over budget even if its live entries are small.
    """
    total = 0
    for top in _subdirs(cache.root):
        name = top.name
        if top.is_dir() and (
            name.startswith(".tmp-")
            or name.startswith(".evict-")
            or name == PINS_DIR
        ):
            total += _tree_bytes(Path(top.path))
        elif top.is_dir() and len(name) == 2:
            for child in _subdirs(Path(top.path)):
                if child.is_dir() and child.name.endswith(QUARANTINE_SUFFIX):
                    total += _tree_bytes(Path(child.path))
    return total


def cache_usage(
    cache: TraceCache, checkpoint_dir: str | os.PathLike | None = None
) -> tuple[list[EntryInfo], int]:
    """``(entries, total_bytes)`` for the governed footprint.

    The footprint is the trace cache (entries + debris) plus the
    checkpoint directory when one is in use — the two disk consumers a
    budgeted run owns.  Publishes the ``repro_trace_cache_bytes`` and
    ``repro_trace_cache_entries`` gauges as a side effect (free: the
    walk already happened).
    """
    entries = scan_entries(cache)
    entry_bytes = sum(info.bytes for info in entries)
    total = entry_bytes + debris_bytes(cache)
    if checkpoint_dir is not None and os.path.isdir(checkpoint_dir):
        total += _tree_bytes(Path(checkpoint_dir))
    telemetry.gauge("repro_trace_cache_bytes").set(float(entry_bytes))
    telemetry.gauge("repro_trace_cache_entries").set(float(len(entries)))
    return entries, total


def evict_entry(cache: TraceCache, info: EntryInfo) -> int:
    """Evict one entry; returns bytes freed (0 if a race lost it first).

    Rename-then-unlink: one atomic ``os.rename`` moves the directory
    out of the key's address, *then* the moved tree is deleted.  A
    concurrent reader either still holds its established mappings
    (safe after unlink) or observes a clean miss — never a
    half-deleted entry under the key.
    """
    trash = cache.root / f".evict-{os.getpid()}-{uuid.uuid4().hex[:8]}"
    try:
        os.rename(info.path, trash)
    except OSError:
        return 0  # another evictor (or a quarantine) won the race
    freed = _tree_bytes(trash)
    shutil.rmtree(trash, ignore_errors=True)
    cache.stats.count("evictions")
    return freed


def enforce_quota(
    cache: TraceCache,
    quota_bytes: int,
    checkpoint_dir: str | os.PathLike | None = None,
    protect: frozenset[str] | set[str] = frozenset(),
) -> int:
    """Evict LRU entries until the governed footprint fits the quota.

    ``protect`` keys (typically the entry just stored — evicting your
    own working set would thrash) and pinned keys are skipped.
    Returns the number of entries evicted.  If everything evictable is
    gone and usage still exceeds the quota, the overage stands — the
    caller's ENOSPC handling (or the operator) owns that endgame.
    """
    entries, total = cache_usage(cache, checkpoint_dir)
    if total <= quota_bytes:
        return 0
    pinned = pinned_keys(cache.root)
    evicted = 0
    for info in sorted(entries, key=lambda e: (e.mtime, e.key)):
        if total <= quota_bytes:
            break
        if info.key in pinned or info.key in protect:
            continue
        freed = evict_entry(cache, info)
        if freed:
            evicted += 1
            total -= freed
        else:
            # The entry vanished under us — a racing evictor (or a
            # quarantine) already removed it.  Its bytes are out of the
            # footprint either way; without this credit two evictors
            # racing on one quota would each keep walking the LRU list
            # and between them empty the cache.
            total -= info.bytes
    if evicted:
        # Re-publish the gauges from a fresh scan so they track
        # reality, not an arithmetic estimate.
        cache_usage(cache, checkpoint_dir)
    return evicted


def evict_for_enospc(
    cache: TraceCache, protect: frozenset[str] | set[str] = frozenset()
) -> bool:
    """Free space for a store that just hit ENOSPC: evict one LRU entry.

    Returns True if an entry was evicted (the store should retry),
    False when nothing evictable remains (the store should fall back
    to cache-off).
    """
    pinned = pinned_keys(cache.root)
    for info in sorted(scan_entries(cache), key=lambda e: (e.mtime, e.key)):
        if info.key in pinned or info.key in protect:
            continue
        if evict_entry(cache, info):
            return True
    return False


def collect_garbage(
    cache: TraceCache,
    max_age_s: float | None = None,
    checkpoint_dir: str | os.PathLike | None = None,
    now: float | None = None,
) -> dict[str, int]:
    """Remove aged crash debris; returns ``{category: count}``.

    Three categories, all age-thresholded (a *young* ``.corrupt`` entry
    is evidence someone may still want; a young ``.tmp-*`` may belong
    to a live writer; a young ``.ckpt`` may belong to a live point):

    * ``gc_quarantined`` — ``<entry>.corrupt`` quarantine directories;
    * ``gc_orphans`` — root-level ``.tmp-*`` staging and ``.evict-*``
      trash directories a crashed process never cleaned up;
    * ``gc_checkpoints`` — ``*.ckpt`` files in the checkpoint
      directory left by runs that never completed their points.
    """
    age = gc_age_s() if max_age_s is None else max_age_s
    cutoff = (time.time() if now is None else now) - age
    removed = {"gc_quarantined": 0, "gc_orphans": 0, "gc_checkpoints": 0}

    def _aged(path: str) -> bool:
        try:
            return os.stat(path).st_mtime <= cutoff
        except OSError:
            return False

    for top in _subdirs(cache.root):
        name = top.name
        if top.is_dir() and (name.startswith(".tmp-") or name.startswith(".evict-")):
            if _aged(top.path):
                shutil.rmtree(top.path, ignore_errors=True)
                cache.stats.count("gc_orphans")
                removed["gc_orphans"] += 1
        elif top.is_dir() and len(name) == 2:
            for child in _subdirs(Path(top.path)):
                if (
                    child.is_dir()
                    and child.name.endswith(QUARANTINE_SUFFIX)
                    and _aged(child.path)
                ):
                    shutil.rmtree(child.path, ignore_errors=True)
                    cache.stats.count("gc_quarantined")
                    removed["gc_quarantined"] += 1
    if checkpoint_dir is not None and os.path.isdir(checkpoint_dir):
        for entry in _subdirs(Path(checkpoint_dir)):
            if entry.is_file() and entry.name.endswith(".ckpt") and _aged(entry.path):
                try:
                    os.unlink(entry.path)
                except OSError:
                    continue
                cache.stats.count("gc_checkpoints")
                removed["gc_checkpoints"] += 1
    return removed
