"""Bounded retry-with-backoff for transient I/O.

The platform's durable surfaces — the trace cache, the sweep journal,
the fabric ledger, the telemetry sinks — all end in a handful of
``write()``/``rename()`` calls that can fail *transiently*: an NFS
server mid-failover returns EIO, a contended lock returns EAGAIN, a
busy volume returns EBUSY.  Before this module each surface treated
any OSError as final; now they share one policy: retry a short,
bounded number of times with exponential backoff, count every retry,
and only then let the error surface.

Two errno classes are deliberately *not* retried here:

* ``ENOSPC`` — a full disk does not heal by waiting; the trace cache
  answers it with LRU eviction (see :mod:`repro.governor.gc`) and the
  other surfaces let it propagate to their own degradation handling.
* anything non-transient (EACCES, EROFS, ...) — retrying a permission
  error is noise.

Every retry increments ``repro_io_retries_total{operation=...}``, so a
run that limped through a flaky volume says so in its metrics.
"""

from __future__ import annotations

import errno
import time
from typing import Callable, TypeVar

from repro.telemetry import runtime as telemetry

T = TypeVar("T")

#: Errno values worth waiting out: transient device errors, contention,
#: and interrupted calls.  ENOSPC is intentionally absent — see module
#: docstring.
TRANSIENT_ERRNOS = frozenset(
    {
        errno.EIO,
        errno.EAGAIN,
        errno.EBUSY,
        errno.EINTR,
        errno.EDEADLK,
    }
)

#: Default retry shape, shared by every caller unless overridden:
#: 3 re-attempts, 50 ms first backoff, doubling, capped at 1 s.
DEFAULT_RETRIES = 3
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 1.0


def is_transient(error: OSError) -> bool:
    """Whether an OSError is worth retrying (by errno)."""
    return error.errno in TRANSIENT_ERRNOS


def retry_io(
    operation: str,
    fn: Callable[[], T],
    retries: int = DEFAULT_RETRIES,
    backoff_base: float = DEFAULT_BACKOFF_BASE,
    backoff_cap: float = DEFAULT_BACKOFF_CAP,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Run ``fn``, retrying transient OSErrors with bounded backoff.

    ``operation`` labels the retry counter (e.g. ``"journal.append"``)
    so the metrics say *which* surface was flaky.  Non-transient
    OSErrors and non-OSErrors propagate immediately; a transient error
    that survives every retry propagates with its original traceback.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except OSError as error:
            if not is_transient(error):
                raise
            attempt += 1
            if attempt > retries:
                raise
            telemetry.counter(
                "repro_io_retries_total", operation=operation
            ).inc()
            sleep(min(backoff_cap, backoff_base * (2 ** (attempt - 1))))
