"""Experiment harness: regenerate every table and figure of the paper.

One module per exhibit (``table1``, ``table2``, ``fig4`` … ``fig8``),
each exposing ``generate()`` returning the exhibit's data and ``main()``
printing it in the paper's layout.  ``runall`` executes everything and
renders the paper-versus-measured comparison used in EXPERIMENTS.md.
"""
