"""Ablation studies for the design choices DESIGN.md calls out.

Four ablations, each isolating one modelling or platform decision:

1. **replacement policy** — Dragonhead's FPGAs "can implement different
   kinds of cache algorithms"; compare LRU (the paper's configuration)
   against tree-PLRU, FIFO, and random on real workload FSB traffic.
2. **smoothing spread** — the 40 % reuse-mass spread around each cyclic
   working set (DESIGN.md §3): without it, curves are pure steps and
   the paper's "50-60 % more misses at 32 MB going 8→16 cores" for the
   category-C workloads cannot appear.
3. **slice-resident rule** — private structures ≤ 512 KB are re-warmed
   within a DEX quantum and must not dilate; ablating the rule (dilate
   everything) inflates small-cache MPKI at high core counts.
4. **DEX quantum** — the exact-path analog of (3): the same workload
   traffic scheduled with small versus large quanta through the real
   emulator, showing interleaving-induced misses shrink as slices grow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.cache.emulator import DragonheadConfig
from repro.harness.replay import load_or_capture, replay
from repro.harness.report import render_table
from repro.trace.cache import TraceCache, cache_key
from repro.trace.record import TraceChunk
from repro.units import MB, format_size
from repro.workloads.profiles import memory_model
from repro.workloads.registry import get_workload

POLICIES = ("lru", "plru", "fifo", "random")


@dataclass(frozen=True)
class PolicyResult:
    policy: str
    miss_ratio: float


def _policy_trace(
    workload_name: str,
    accesses: int,
    scale: float,
    trace_cache: TraceCache | None,
) -> TraceChunk:
    """The policy ablation's single-thread synthetic trace, cached."""
    if trace_cache is not None:
        key = cache_key(
            {
                "kind": "synthetic-thread-trace",
                "workload": workload_name,
                "thread": 0,
                "threads": 1,
                "accesses": accesses,
                "scale": scale,
            }
        )
        payload = trace_cache.load(key)
        if payload is not None:
            _, arrays = payload
            return TraceChunk(
                np.asarray(arrays["addresses"]),
                np.asarray(arrays["kinds"]),
                np.asarray(arrays["cores"]),
                np.asarray(arrays["pcs"]),
            )
    trace = get_workload(workload_name).synthetic_thread_trace(0, 1, accesses, scale)
    if trace_cache is not None:
        trace_cache.store(
            key,
            {"workload": workload_name, "accesses": accesses, "scale": scale},
            {
                "addresses": trace.addresses,
                "kinds": trace.kinds,
                "cores": trace.cores,
                "pcs": trace.pcs,
            },
        )
    return trace


def replacement_policy_ablation(
    workload_name: str = "FIMI",
    cache_size: int = 1 * MB,
    associativity: int = 8,
    accesses: int = 60_000,
    scale: float = 1 / 16,
    trace_cache: TraceCache | None = None,
) -> list[PolicyResult]:
    """Miss ratios of one workload's FSB traffic under each policy."""
    trace = _policy_trace(workload_name, accesses, scale, trace_cache)
    results = []
    for policy in POLICIES:
        cache = SetAssociativeCache(
            CacheConfig(
                size=cache_size,
                line_size=64,
                associativity=associativity,
                policy=policy,
                name=policy,
            )
        )
        cache.access_chunk(trace)
        results.append(PolicyResult(policy=policy, miss_ratio=cache.stats.miss_ratio))
    return results


@dataclass(frozen=True)
class SmoothingResult:
    smoothing: float
    jump_ratio: float  # SHOT 8→16 cores at a 32MB LLC


def smoothing_ablation() -> list[SmoothingResult]:
    """The Figure 5 category-C jump with and without the reuse spread."""
    model = memory_model("SHOT")
    results = []
    for smoothing in (0.0, 0.2, 0.4):
        at_8 = model.llc_mpki(32 * MB, 64, 8, smoothing=smoothing)
        at_16 = model.llc_mpki(32 * MB, 64, 16, smoothing=smoothing)
        results.append(
            SmoothingResult(smoothing=smoothing, jump_ratio=at_16 / at_8 if at_8 else 0.0)
        )
    return results


@dataclass(frozen=True)
class SliceRuleResult:
    slice_resident_bytes: float
    mpki_4mb_32c: float  # VIEWTYPE at a 4MB LLC, 32 cores


def slice_rule_ablation() -> list[SliceRuleResult]:
    """Small-cache LCMP MPKI with and without the slice-resident rule.

    With the rule off (threshold 0), every private structure dilates by
    the thread count: the per-thread L2-resident buffers of VIEWTYPE
    appear as a 6 MB aggregate and overwhelm a 4 MB LLC — traffic the
    real time-sliced platform never shows the shared cache.
    """
    model = memory_model("VIEWTYPE")
    results = []
    for threshold in (0.0, 512 * 1024.0):
        results.append(
            SliceRuleResult(
                slice_resident_bytes=threshold,
                mpki_4mb_32c=model.llc_mpki(
                    4 * MB, 64, 32, slice_resident_bytes=threshold
                ),
            )
        )
    return results


@dataclass(frozen=True)
class QuantumResult:
    quantum: int
    mpki: float


def quantum_ablation(
    cache_size: int = 1 * MB,
    cores: int = 4,
    region_bytes: int = 768 * 1024,
    passes: int = 8,
    quanta: tuple[int, ...] = (1024, 8192, 65536),
    trace_cache: TraceCache | None = None,
) -> list[QuantumResult]:
    """Exact-path MPKI of a slice-residency microbenchmark across quanta.

    Each virtual core cyclically re-scans a private region that fits
    the LLC alone but not together with its peers (4 x 768 KB against
    1 MB).  With a small DEX quantum the scans interleave finely and
    evict each other — every access misses.  Once the quantum exceeds a
    full scan, re-scans within a slice hit: the physical basis of the
    model's slice-resident rule.

    The quantum is part of the DEX schedule, so each quantum needs its
    own simulator pass; runs go through the replay engine anyway so a
    warm ``trace_cache`` skips all of them on repeat invocations.
    """
    from repro.core.softsdv import GuestWorkload
    from repro.trace.generators import Region, cyclic_scan
    from repro.trace.stream import chunk_stream

    def thread_streams(n: int):
        return [
            chunk_stream(
                cyclic_scan(
                    Region(0x1000_0000 + i * 0x1000_0000, region_bytes),
                    passes=passes,
                    stride=64,
                )
            )
            for i in range(n)
        ]

    guest = GuestWorkload("slice-residency", thread_streams)
    key_extra = {"region_bytes": region_bytes, "passes": passes}
    results = []
    for quantum in quanta:
        log, _ = load_or_capture(
            guest,
            cores,
            quantum=quantum,
            trace_cache=trace_cache,
            key_extra=key_extra,
        )
        outcome = replay(log, DragonheadConfig(cache_size=cache_size))
        results.append(QuantumResult(quantum=quantum, mpki=outcome.mpki))
    return results


def main(jobs: int | None = None, trace_cache: TraceCache | None = None) -> None:
    """Print all four ablation tables.

    ``jobs`` is accepted for runner uniformity; each ablation replays
    stateful simulations whose points build on shared cache state, so
    there is no independent grid to fan out.  ``trace_cache`` lets the
    exact-path ablations (1 and 4) reuse their captured traffic across
    invocations.
    """
    del jobs
    print(
        render_table(
            ["Policy", "miss ratio"],
            [
                (r.policy.upper(), f"{r.miss_ratio:.4f}")
                for r in replacement_policy_ablation(trace_cache=trace_cache)
            ],
            title="Ablation 1: replacement policy (FIMI FSB traffic, 1MB, 8-way)",
        )
    )
    print()
    print(
        render_table(
            ["Smoothing", "SHOT 8->16 core jump @32MB"],
            [(f"{r.smoothing:.1f}", f"{r.jump_ratio:.2f}x") for r in smoothing_ablation()],
            title="Ablation 2: reuse-spread smoothing (paper: ~1.5-1.6x)",
        )
    )
    print()
    print(
        render_table(
            ["Slice-resident threshold", "VIEWTYPE MPKI @4MB, 32 cores"],
            [
                (format_size(int(r.slice_resident_bytes)), f"{r.mpki_4mb_32c:.2f}")
                for r in slice_rule_ablation()
            ],
            title="Ablation 3: DEX slice-resident rule",
        )
    )
    print()
    print(
        render_table(
            ["DEX quantum", "exact-path MPKI"],
            [
                (str(r.quantum), f"{r.mpki:.2f}")
                for r in quantum_ablation(trace_cache=trace_cache)
            ],
            title="Ablation 4: DEX scheduling quantum (4x768KB private scans, 1MB LLC)",
        )
    )


if __name__ == "__main__":
    main()
