"""FSB bandwidth-demand study.

The paper's conclusions repeatedly invoke bandwidth: large DRAM caches
"reduce the latency and bandwidth to main memory", and Section 4.4's
prefetch asymmetry hinges on which workloads saturate the shared bus.
This harness quantifies the demand-miss bandwidth of every workload on
the three CMPs, from the calibrated models and the CPI stack — the
memory-system sizing numbers a platform architect would pull from this
study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.experiment import ALL_CMPS, CMPConfig
from repro.harness.parallel import parallel_map
from repro.harness.report import render_table
from repro.perf.bandwidth import BusModel
from repro.perf.cpi import cpi_stack
from repro.units import MB
from repro.workloads.profiles import WORKLOAD_NAMES, memory_model

if TYPE_CHECKING:
    from repro.simpoint import SampleSpec
    from repro.trace.cache import TraceCache


@dataclass(frozen=True)
class BandwidthRow:
    workload: str
    cmp_name: str
    cores: int
    llc_mpki: float
    demand_gb_per_s: float
    bus_utilization: float


def _bandwidth_row(task: tuple[str, CMPConfig, int, BusModel]) -> BandwidthRow:
    """One (workload × CMP) bandwidth point (picklable task)."""
    name, cmp_config, llc_size, bus = task
    model = memory_model(name)
    mpki = model.llc_mpki(llc_size, 64, cmp_config.cores)
    cpi = cpi_stack(name, model.dl1_mpki(), model.dl2_mpki()).total
    demand = bus.demand_bandwidth(mpki, cpi, cmp_config.cores)
    return BandwidthRow(
        workload=name,
        cmp_name=cmp_config.name,
        cores=cmp_config.cores,
        llc_mpki=mpki,
        demand_gb_per_s=demand / 1e9,
        bus_utilization=bus.utilization(mpki, cpi, cmp_config.cores),
    )


def generate(
    llc_size: int = 32 * MB,
    bus: BusModel | None = None,
    cmps: tuple[CMPConfig, ...] = ALL_CMPS,
    jobs: int | None = None,
) -> list[BandwidthRow]:
    """Demand bandwidth of each workload at a 32 MB LLC on each CMP."""
    bus = bus or BusModel()
    tasks = [
        (name, cmp_config, llc_size, bus)
        for cmp_config in cmps
        for name in WORKLOAD_NAMES
    ]
    return parallel_map(_bandwidth_row, tasks, jobs=jobs)


def measured_demand(
    workload_name: str = "FIMI",
    cores: int = 4,
    cache_sizes: tuple[int, ...] = (4 * MB, 32 * MB),
    bus: BusModel | None = None,
    trace_cache: "TraceCache | None" = None,
    sample: "SampleSpec | None" = None,
) -> list[tuple[int, float, float, float]]:
    """Exact-path demand bandwidth: (LLC size, MPKI, GB/s, MPKI error).

    The model path above projects bandwidth from calibrated MPKI
    curves; this cross-check measures MPKI by running the instrumented
    kernel through the replay engine — one captured trace, one emulator
    pass per LLC size — and feeds the measured rate through the same
    :class:`BusModel`.  With ``sample``, the sweep goes through sampled
    simulation instead: MPKI is an estimate and the final tuple element
    carries its error bar (zero on the exact path).
    """
    from repro.harness.replay import replay_sweep, size_sweep_configs
    from repro.workloads.registry import get_workload

    bus = bus or BusModel()
    workload = get_workload(workload_name)
    configs = size_sweep_configs(list(cache_sizes))
    key_extra = {"source": "kernel"}
    if sample is not None:
        from repro.harness.replay import load_or_capture, log_cache_key
        from repro.simpoint import sampled_sweep

        log, _ = load_or_capture(
            workload.kernel_guest(),
            cores,
            trace_cache=trace_cache,
            key_extra=key_extra,
        )
        log_key = (
            log_cache_key(workload.name, cores, 4096, 8192, key_extra)
            if trace_cache is not None
            else None
        )
        sampled = sampled_sweep(
            log, configs, sample, trace_cache=trace_cache, log_key=log_key
        )
        points = [(result.mpki.value, result.mpki.error) for result in sampled]
    else:
        results = replay_sweep(
            workload.kernel_guest(),
            cores,
            configs,
            trace_cache=trace_cache,
            key_extra=key_extra,
        )
        points = [(result.mpki, 0.0) for result in results]
    cpi = cpi_stack(
        workload_name,
        memory_model(workload_name).dl1_mpki(),
        memory_model(workload_name).dl2_mpki(),
    ).total
    return [
        (size, mpki, bus.demand_bandwidth(mpki, cpi, cores) / 1e9, error)
        for size, (mpki, error) in zip(cache_sizes, points)
    ]


def main(
    jobs: int | None = None,
    trace_cache: "TraceCache | None" = None,
    sample: "SampleSpec | None" = None,
) -> None:
    """Print per-CMP bandwidth-demand tables.

    ``sample`` routes the exact-path cross-check through sampled
    simulation: the table is labelled ``[sampled]`` and its MPKI cells
    carry error bars.
    """
    rows = generate(jobs=jobs)
    by_cmp: dict[str, list[BandwidthRow]] = {}
    for row in rows:
        by_cmp.setdefault(row.cmp_name, []).append(row)
    for cmp_name, cmp_rows in by_cmp.items():
        print(
            render_table(
                ["Workload", "LLC MPKI", "demand GB/s", "bus utilization"],
                [
                    (
                        r.workload,
                        f"{r.llc_mpki:.2f}",
                        f"{r.demand_gb_per_s:.2f}",
                        f"{100 * r.bus_utilization:.0f}%",
                    )
                    for r in cmp_rows
                ],
                title=(
                    f"Memory bandwidth demand on {cmp_name} "
                    f"({cmp_rows[0].cores} cores, 32MB LLC)"
                ),
            )
        )
        print()
    heaviest = max(rows, key=lambda r: r.demand_gb_per_s)
    print(
        f"Heaviest demand: {heaviest.workload} on {heaviest.cmp_name} "
        f"({heaviest.demand_gb_per_s:.1f} GB/s) — the workloads driving the "
        "paper's call for DRAM caches to 'reduce the latency and bandwidth "
        "to main memory'."
    )
    print()
    measured = measured_demand(trace_cache=trace_cache, sample=sample)
    title = "Exact-path cross-check: FIMI kernel on 4 cores (replay engine)"
    if sample is not None:
        title += " [sampled]"
    print(
        render_table(
            ["LLC size", "measured MPKI", "demand GB/s"],
            [
                (
                    f"{size // MB}MB",
                    f"{mpki:.2f}±{error:.2f}" if sample is not None else f"{mpki:.2f}",
                    f"{gb_per_s:.2f}",
                )
                for size, mpki, gb_per_s, error in measured
            ],
            title=title,
        )
    )


if __name__ == "__main__":
    main()
