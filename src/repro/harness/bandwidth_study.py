"""FSB bandwidth-demand study.

The paper's conclusions repeatedly invoke bandwidth: large DRAM caches
"reduce the latency and bandwidth to main memory", and Section 4.4's
prefetch asymmetry hinges on which workloads saturate the shared bus.
This harness quantifies the demand-miss bandwidth of every workload on
the three CMPs, from the calibrated models and the CPI stack — the
memory-system sizing numbers a platform architect would pull from this
study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.experiment import ALL_CMPS, CMPConfig
from repro.harness.parallel import parallel_map
from repro.harness.report import render_table
from repro.perf.bandwidth import BusModel
from repro.perf.cpi import cpi_stack
from repro.units import MB
from repro.workloads.profiles import WORKLOAD_NAMES, memory_model


@dataclass(frozen=True)
class BandwidthRow:
    workload: str
    cmp_name: str
    cores: int
    llc_mpki: float
    demand_gb_per_s: float
    bus_utilization: float


def _bandwidth_row(task: tuple[str, CMPConfig, int, BusModel]) -> BandwidthRow:
    """One (workload × CMP) bandwidth point (picklable task)."""
    name, cmp_config, llc_size, bus = task
    model = memory_model(name)
    mpki = model.llc_mpki(llc_size, 64, cmp_config.cores)
    cpi = cpi_stack(name, model.dl1_mpki(), model.dl2_mpki()).total
    demand = bus.demand_bandwidth(mpki, cpi, cmp_config.cores)
    return BandwidthRow(
        workload=name,
        cmp_name=cmp_config.name,
        cores=cmp_config.cores,
        llc_mpki=mpki,
        demand_gb_per_s=demand / 1e9,
        bus_utilization=bus.utilization(mpki, cpi, cmp_config.cores),
    )


def generate(
    llc_size: int = 32 * MB,
    bus: BusModel | None = None,
    cmps: tuple[CMPConfig, ...] = ALL_CMPS,
    jobs: int | None = None,
) -> list[BandwidthRow]:
    """Demand bandwidth of each workload at a 32 MB LLC on each CMP."""
    bus = bus or BusModel()
    tasks = [
        (name, cmp_config, llc_size, bus)
        for cmp_config in cmps
        for name in WORKLOAD_NAMES
    ]
    return parallel_map(_bandwidth_row, tasks, jobs=jobs)


def main(jobs: int | None = None) -> None:
    """Print per-CMP bandwidth-demand tables."""
    rows = generate(jobs=jobs)
    by_cmp: dict[str, list[BandwidthRow]] = {}
    for row in rows:
        by_cmp.setdefault(row.cmp_name, []).append(row)
    for cmp_name, cmp_rows in by_cmp.items():
        print(
            render_table(
                ["Workload", "LLC MPKI", "demand GB/s", "bus utilization"],
                [
                    (
                        r.workload,
                        f"{r.llc_mpki:.2f}",
                        f"{r.demand_gb_per_s:.2f}",
                        f"{100 * r.bus_utilization:.0f}%",
                    )
                    for r in cmp_rows
                ],
                title=(
                    f"Memory bandwidth demand on {cmp_name} "
                    f"({cmp_rows[0].cores} cores, 32MB LLC)"
                ),
            )
        )
        print()
    heaviest = max(rows, key=lambda r: r.demand_gb_per_s)
    print(
        f"Heaviest demand: {heaviest.workload} on {heaviest.cmp_name} "
        f"({heaviest.demand_gb_per_s:.1f} GB/s) — the workloads driving the "
        "paper's call for DRAM caches to 'reduce the latency and bandwidth "
        "to main memory'."
    )


if __name__ == "__main__":
    main()
