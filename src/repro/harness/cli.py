"""``repro-cosim``: run one co-simulation from the command line.

The operator's front door to the platform: pick a workload, a core
count, a Dragonhead configuration, and a trace source, and get the
instruction-synchronized cache statistics plus the phase analysis —
the same readout the paper's host computer produced.

Runs go through the multi-config replay engine
(:mod:`repro.harness.replay`): the simulator side executes once and the
captured log is replayed per configuration, so ``--cache`` accepts a
comma-separated sweep (``--cache 1MB,4MB,16MB``) that costs one
generation pass.  With ``--trace-cache DIR`` (or the
``REPRO_TRACE_CACHE`` environment variable) the captured log persists
across invocations: a warm second run performs zero trace generation,
which the printed ``trace cache:`` counter line makes observable.

``--sample INTERVAL[,MAXK]`` switches the sweep to sampled simulation
(:mod:`repro.simpoint`): the captured stream is sliced into
INTERVAL-access intervals, fingerprinted, clustered, and only one
representative per cluster is emulated — orders of magnitude faster on
long traces, reported with per-metric error bars and a ``[sampled]``
label.  ``--repeats N`` stretches the generated trace N× (each thread's
trace replayed back to back), the long-stream knob sampled runs are
built for.

Examples::

    repro-cosim --workload FIMI --cores 4 --cache 4MB
    repro-cosim --workload FIMI --cores 4 --cache 1MB,4MB,16MB,64MB \\
                --trace-cache ~/.cache/repro-traces --jobs 4
    repro-cosim --workload SHOT --cores 8 --cache 2MB --line 256 \\
                --source synthetic --accesses 50000 --scale 0.0625
    repro-cosim --workload FIMI --cores 4 --cache 1MB,4MB --source synthetic \\
                --accesses 262144 --repeats 16 --sample 64k,6
"""

from __future__ import annotations

import argparse
import json
import sys
from fractions import Fraction

from repro.audit import AUDIT_MODES, AUDIT_OFF, resolve_audit_mode
from repro.core.phases import phase_summary
from repro.errors import (
    AuditError,
    DeadlineExpired,
    JobSpecError,
    SamplingError,
    SweepInterrupted,
    SweepPointError,
)
from repro.exit_codes import (
    EXIT_AUDIT,
    EXIT_DEADLINE,
    EXIT_DEGRADED,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_SWEEP,
)
from repro.faults.report import merge_records
from repro.faults.spec import parse_fault_spec
from repro.governor.budget import ResourceBudget, active_governor, govern
from repro.harness.replay import load_or_capture, log_cache_key, replay_sweep
from repro.harness.report import (
    render_audit_report,
    render_degradation_report,
    render_series_table,
)
from repro.simpoint import parse_sample_spec, sampled_sweep
from repro.harness.executors.base import EXECUTOR_NAMES, FabricConfig
from repro.harness.supervisor import SupervisorPolicy, SweepJournal, supervise
from repro.serve.jobspec import JobSpec, result_digest
from repro.telemetry import profile as profiling
from repro.telemetry import runtime as telemetry
from repro.telemetry.sinks import write_prometheus
from repro.trace.cache import resolve_trace_cache
from repro.units import format_size, parse_size
from repro.workloads.profiles import WORKLOAD_NAMES
from repro.workloads.registry import get_workload


def build_parser() -> argparse.ArgumentParser:
    """The repro-cosim argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-cosim",
        description="Co-simulate a data-mining workload on the "
        "SoftSDV+Dragonhead platform model.",
    )
    parser.add_argument(
        "--workload", choices=list(WORKLOAD_NAMES), help="workload name"
    )
    parser.add_argument(
        "--job",
        metavar="FILE",
        default=None,
        help="read the job spec from FILE as canonical JSON ('-' reads "
        "stdin) — the same content-keyed format repro-serve accepts; "
        "explicit flags are rejected alongside it",
    )
    parser.add_argument(
        "--print-job",
        action="store_true",
        help="print the run's canonical job spec (JSON) and content key "
        "instead of running it",
    )
    parser.add_argument(
        "--digest",
        action="store_true",
        help="print the job-result digest (SHA-256 of the pickled result "
        "list) after the readout — byte-comparable with a served job's",
    )
    parser.add_argument("--cores", type=int, default=4, help="virtual cores (1-64)")
    parser.add_argument(
        "--cache",
        default="4MB",
        help="Dragonhead LLC size (1MB-256MB), e.g. 32MB; a comma-"
        "separated list sweeps every size over one captured trace",
    )
    parser.add_argument(
        "--line", type=int, default=64, help="cache line size in bytes (64-4096)"
    )
    parser.add_argument(
        "--source",
        choices=("kernel", "synthetic"),
        default="kernel",
        help="trace source: instrumented mining kernel or model-shaped synthetic",
    )
    parser.add_argument(
        "--accesses", type=int, default=65536, help="synthetic accesses per thread"
    )
    parser.add_argument(
        "--scale",
        type=Fraction,
        default=Fraction(1, 256),
        help="synthetic footprint scale, e.g. 1/256 or 0.00390625",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        metavar="N",
        help="replay each thread's generated trace N times back to back "
        "(long-stream scaling for sampled runs; default: 1)",
    )
    parser.add_argument(
        "--sample",
        metavar="INTERVAL[,MAXK]",
        default=None,
        help="sampled simulation: slice the stream into INTERVAL-access "
        "intervals (k/m suffixes allowed), cluster their fingerprints "
        "into at most MAXK clusters (default 8), and emulate only the "
        "representatives; results carry error bars and a [sampled] label",
    )
    parser.add_argument("--quantum", type=int, default=4096, help="DEX slice quantum")
    parser.add_argument(
        "--phases", action="store_true", help="print the phase analysis of the run"
    )
    parser.add_argument(
        "--trace-cache",
        metavar="DIR",
        default=None,
        help="persist captured traces under DIR and reuse them across "
        "invocations (default: $REPRO_TRACE_CACHE; 'off' disables)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for a multi-size sweep (0 = one per CPU)",
    )
    parser.add_argument(
        "--executor",
        choices=list(EXECUTOR_NAMES),
        default="pool",
        help="where sweep points execute: 'pool' (in-process worker "
        "pool), 'shard' (independent work-stealing worker processes "
        "coordinating through a lease ledger), or 'remote' (the same "
        "ledger workers launched via a command template); ledger "
        "backends survive SIGKILLed workers (default: pool)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        metavar="N",
        help="worker count for the ledger executors (default: 2)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="seconds a fabric worker's claim on a point stays "
        "exclusive without a heartbeat; after expiry any worker may "
        "steal the point (default: 30)",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--strict",
        dest="lenient",
        action="store_false",
        help="raise on any protocol anomaly (the default)",
    )
    mode.add_argument(
        "--lenient",
        dest="lenient",
        action="store_true",
        help="resynchronize on protocol anomalies instead of raising; "
        "recovered anomalies appear in the degradation report",
    )
    parser.set_defaults(lenient=False)
    parser.add_argument(
        "--inject",
        metavar="FAULTSPEC",
        default=None,
        help="deterministic fault injection, e.g. "
        "'seed=42,drop-data=0.001,miss-window=0.05' "
        "(see docs/architecture.md for the channel taxonomy)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-point wall-clock budget for sweep workers "
        "(needs --jobs > 1 to be enforceable)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="re-runs granted to a failing sweep point (default: 2)",
    )
    parser.add_argument(
        "--journal",
        metavar="FILE",
        default=None,
        help="checkpoint completed sweep points to FILE (JSONL)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip points already recorded in --journal FILE",
    )
    parser.add_argument(
        "--audit",
        choices=sorted(AUDIT_MODES),
        default=None,
        help="end-of-run invariant audit: 'sample' checks conservation, "
        "cross-domain, and a 1-in-64 LRU differential oracle; 'full' "
        "oracles every set (default: $REPRO_AUDIT, else off)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="snapshot each sweep point's mid-run state under DIR so a "
        "killed or timed-out point resumes where it stopped "
        "(bit-identical to an uninterrupted run)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="run-level wall-clock budget; expiry drains the sweep like "
        "Ctrl-C (partial report, journal keeps completed points, "
        "--resume finishes byte-identically) and exits 124",
    )
    parser.add_argument(
        "--disk-quota",
        metavar="SIZE",
        default=None,
        help="bytes the trace cache (plus --checkpoint-dir) may occupy, "
        "e.g. 512MB; over quota the least-recently-used cached traces "
        "are evicted (they regenerate on demand)",
    )
    parser.add_argument(
        "--mem-budget",
        metavar="SIZE",
        default=None,
        help="process maxrss high-water mark, e.g. 2GB; once breached, "
        "sweeps clamp to serial execution and the breach is recorded "
        "as degradation",
    )
    parser.add_argument(
        "--fail-on-degraded",
        action="store_true",
        help="exit nonzero if any result carries degradation records "
        "(injected faults, recovered anomalies, or lenient-mode audit "
        "violations)",
    )
    parser.add_argument(
        "--telemetry",
        nargs="?",
        const=True,
        default=False,
        metavar="EVENTS.jsonl",
        help="enable the telemetry subsystem (spans, metric registry, "
        "live 500µs-window stream); with a path, also log every metric "
        "and span to EVENTS.jsonl.  Off by default — telemetry-off runs "
        "are byte-identical to builds without the subsystem",
    )
    parser.add_argument(
        "--metrics-file",
        metavar="FILE",
        default=None,
        help="write the final registry state to FILE in Prometheus text "
        "exposition format (atomic replace; implies --telemetry)",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const=True,
        default=False,
        metavar="FILE",
        help="print the end-of-run profile (per-phase wall time, "
        "accesses/sec, trace-cache hit rate, supervisor events); with a "
        "path, also write it as JSON (implies --telemetry)",
    )
    return parser


def telemetry_requested(args: argparse.Namespace) -> bool:
    """Whether any of the three telemetry flags turns the subsystem on."""
    return bool(args.telemetry) or bool(args.metrics_file) or bool(args.profile)


def build_budget(args: argparse.Namespace) -> ResourceBudget | None:
    """The resource budget from CLI flags; None when no axis is set.

    Shared by ``repro-cosim`` and ``repro-runall`` — both expose the
    same ``--deadline``/``--disk-quota``/``--mem-budget`` triple.
    """
    disk = parse_size(args.disk_quota) if args.disk_quota else None
    mem = parse_size(args.mem_budget) if args.mem_budget else None
    if disk is None and mem is None and args.deadline is None:
        return None
    return ResourceBudget(disk_quota=disk, mem_budget=mem, deadline_s=args.deadline)


def startup_gc(args: argparse.Namespace, trace_cache) -> None:
    """Run-start housekeeping on the resolved trace cache.

    Collects aged crash debris (quarantined ``.corrupt`` entries,
    orphaned staging directories, stale checkpoints — threshold
    ``$REPRO_GC_AGE_S``, default a week) and, when a quota is set,
    evicts down to it before the run adds new entries.
    """
    if trace_cache is None:
        return
    from repro.governor import gc as governor_gc

    governor_gc.collect_garbage(trace_cache, checkpoint_dir=args.checkpoint_dir)
    if trace_cache.disk_quota is not None:
        governor_gc.enforce_quota(
            trace_cache,
            trace_cache.disk_quota,
            checkpoint_dir=args.checkpoint_dir,
        )


def build_fabric_config(args: argparse.Namespace) -> FabricConfig | None:
    """The sweep-fabric shape from CLI flags; None in ``pool`` mode.

    Shared by ``repro-cosim`` and ``repro-runall``: both expose the
    same ``--executor``/``--shards``/``--lease-ttl`` triple, and in
    fabric mode both reuse ``--journal`` as the shared ledger path.
    """
    if args.executor == "pool":
        return None
    return FabricConfig(
        backend=args.executor,
        shards=args.shards,
        lease_ttl=args.lease_ttl,
        ledger_path=args.journal,
        resume=args.resume,
    )


def main(argv: list[str] | None = None) -> int:
    """Run one co-simulation (or a cache-size sweep) and print its readout."""
    args = build_parser().parse_args(argv)
    if telemetry_requested(args):
        telemetry.configure(
            events_path=args.telemetry if isinstance(args.telemetry, str) else None
        )
    try:
        with govern(build_budget(args)):
            return _main(args)
    finally:
        if telemetry_requested(args):
            telemetry.shutdown()


def _resolve_spec(args: argparse.Namespace) -> JobSpec:
    """The canonical :class:`JobSpec` this invocation describes.

    Either parsed from ``--job FILE`` (the format ``repro-serve``
    accepts over HTTP) or built from the flag namespace — both land on
    the same validated, content-keyed model, so a flag combination and
    its spec file run byte-identical simulations.  Malformed specs are
    argument errors: they exit 2 through the parser, never as
    tracebacks.
    """
    parser = build_parser()
    if args.job is not None:
        if args.workload is not None:
            parser.error("--job and --workload are mutually exclusive")
        try:
            if args.job == "-":
                raw = sys.stdin.read()
            else:
                with open(args.job, "r", encoding="utf-8") as handle:
                    raw = handle.read()
            payload = json.loads(raw)
        except (OSError, ValueError) as error:
            parser.error(f"--job {args.job}: {error}")
        try:
            return JobSpec.from_json(payload)
        except JobSpecError as error:
            parser.error(str(error))
    if args.workload is None:
        parser.error("one of --workload or --job is required")
    try:
        return JobSpec.from_cli_args(args)
    except JobSpecError as error:
        parser.error(str(error))


def _main(args: argparse.Namespace) -> int:
    """The run itself, with telemetry configured (or left disabled)."""
    spec = _resolve_spec(args)
    # Reporting and the sampled path read the scalar knobs off the
    # namespace; a --job run must see the file's values there, and a
    # flag run sees its own values round-tripped through the spec.
    args.workload = spec.workload
    args.cores = spec.cores
    args.line = spec.line
    args.quantum = spec.quantum
    args.sample = spec.sample
    args.inject = spec.inject
    args.lenient = spec.lenient
    args.audit = spec.audit
    if args.print_job:
        print(json.dumps(spec.to_json(), indent=2, sort_keys=True))
        print(f"content key: {spec.content_key()}")
        return EXIT_OK
    workload = get_workload(spec.workload)
    configs = spec.configs()
    guest = spec.build_guest()
    key_extra = spec.capture_key_extra()
    trace_cache = resolve_trace_cache(
        args.trace_cache,
        disk_quota=parse_size(args.disk_quota) if args.disk_quota else None,
    )
    startup_gc(args, trace_cache)
    fault_spec = parse_fault_spec(args.inject)
    if args.resume and not args.journal:
        build_parser().error("--resume requires --journal FILE")
    if args.sample is not None:
        return _main_sampled(args, workload, guest, configs, key_extra, trace_cache)

    if fault_spec is not None and fault_spec.corrupt_trace and trace_cache is not None:
        from repro.faults.injector import inject_trace_corruption

        key = spec.capture_key()
        damaged = sum(
            inject_trace_corruption(trace_cache, key, fault_spec.rng("corrupt-trace", i))
            for i in range(fault_spec.corrupt_trace)
        )
        if damaged:
            print(f"injected trace corruption into {damaged} cache entry file(s)")

    audit_mode = resolve_audit_mode(args.audit)
    policy = SupervisorPolicy(timeout=args.timeout, retries=args.retries)
    fabric = build_fabric_config(args)
    # In fabric mode the ledger *is* the journal (same v3 format, same
    # --journal path, resumable either way) — opening it twice would
    # race the workers' appends.
    journal = (
        SweepJournal(args.journal, resume=args.resume)
        if args.journal and fabric is None
        else None
    )
    with telemetry.span("run"):
        try:
            with supervise(
                policy,
                journal=journal,
                fault_spec=fault_spec,
                checkpoint_dir=args.checkpoint_dir,
                fabric=fabric,
            ) as ctx:
                results = replay_sweep(
                    guest,
                    args.cores,
                    configs,
                    quantum=args.quantum,
                    jobs=args.jobs,
                    trace_cache=trace_cache,
                    key_extra=key_extra,
                    spec=fault_spec,
                    lenient=args.lenient,
                    audit=audit_mode,
                )
        except DeadlineExpired as expired:
            # Checked before SweepInterrupted (its parent class): the
            # drain is identical but the exit code follows timeout(1).
            print(f"deadline: {expired}")
            return EXIT_DEADLINE
        except SweepInterrupted as interrupted:
            print(f"interrupted: {interrupted}")
            return EXIT_INTERRUPTED
        except AuditError as error:
            # Strict mode: a violated invariant is a wrong answer, not a
            # statistic — print what broke and fail loudly.
            print(f"audit failed: {error}")
            print(error.report.describe())
            return EXIT_AUDIT
        except SweepPointError as error:
            # The supervisor wraps worker errors; an audit failure is
            # deterministic, so retries cannot save it — unwrap and report.
            if isinstance(error.cause, AuditError):
                print(f"audit failed on point {error.point!r}: {error.cause}")
                print(error.cause.report.describe())
                return EXIT_AUDIT
            # Retries exhausted: a failing *point* is a documented exit
            # of its own, distinct from a crash in the harness itself.
            print(f"sweep point failed: {error}")
            return EXIT_SWEEP
        finally:
            if journal is not None:
                journal.close()
        exit_code = _report(args, workload, configs, results, trace_cache, audit_mode, fault_spec, ctx)
        if args.digest:
            print(f"result digest: {result_digest(results)}")
    _emit_telemetry(args, results)
    return exit_code


#: Flags the sampled path cannot honour: fault injection, lenient
#: resynchronization, auditing, checkpointing, journaling, and phase
#: analysis all assume the full stream goes through the emulator.
_SAMPLE_CONFLICTS = (
    ("--inject", "inject"),
    ("--lenient", "lenient"),
    ("--audit", "audit"),
    ("--checkpoint-dir", "checkpoint_dir"),
    ("--journal", "journal"),
    ("--resume", "resume"),
    ("--phases", "phases"),
)


def _main_sampled(args, workload, guest, configs, key_extra, trace_cache) -> int:
    """The ``--sample`` path: capture (or load) once, sample the sweep."""
    for flag, attribute in _SAMPLE_CONFLICTS:
        if getattr(args, attribute):
            build_parser().error(f"--sample cannot be combined with {flag}")
    if args.executor != "pool":
        build_parser().error("--sample cannot be combined with --executor")
    try:
        spec = parse_sample_spec(args.sample)
    except SamplingError as error:
        build_parser().error(str(error))
    with telemetry.span("run"):
        log, _ = load_or_capture(
            guest,
            args.cores,
            quantum=args.quantum,
            trace_cache=trace_cache,
            key_extra=key_extra,
        )
        log_key = (
            log_cache_key(guest.name, args.cores, args.quantum, 8192, key_extra)
            if trace_cache is not None
            else None
        )
        results = sampled_sweep(
            log, configs, spec, trace_cache=trace_cache, log_key=log_key
        )
        exit_code = _report_sampled(args, workload, configs, results, trace_cache)
        if args.digest:
            print(f"result digest: {result_digest(results)}")
    _emit_telemetry(args, [])
    return exit_code


def _report_sampled(args, workload, configs, results, trace_cache) -> int:
    """Print the sampled-run readout; returns the process exit code."""
    with telemetry.span("report"):
        print(f"{workload.name} on {args.cores} cores — {workload.description}")
        coverage = results[0].coverage
        print(
            f"Sampled simulation: {coverage.intervals} intervals × "
            f"{coverage.interval_size:,} accesses, {coverage.clusters} "
            f"cluster(s), {coverage.simulated_fraction:.1%} of the stream "
            "emulated"
            + (", fingerprints cached" if coverage.fingerprint_cached else "")
        )
        print(
            render_series_table(
                "LLC size",
                [format_size(config.cache_size) for config in configs],
                {workload.name: [result.mpki.value for result in results]},
                title=f"LLC MPKI ({args.line}B lines, one captured trace)",
                errors={workload.name: [result.mpki.error for result in results]},
                sampled=True,
            )
        )
        for config, result in zip(configs, results):
            print(
                f"  {format_size(config.cache_size):>10}: "
                f"misses {format(result.misses, ',.0f')}, "
                f"miss ratio {format(result.miss_ratio, '.4f')}"
            )
        if trace_cache is not None:
            print(
                f"  trace cache          : {trace_cache.stats.describe()} "
                f"({trace_cache.root})"
            )
    return EXIT_OK


def _report(
    args, workload, configs, results, trace_cache, audit_mode, fault_spec, ctx
) -> int:
    """Print the run readout; returns the process exit code."""
    with telemetry.span("report"):
        if telemetry.enabled():
            # Workers do not share this registry: result aggregates and
            # degradation counters are published here, parent-side.
            profiling.publish_results(telemetry.registry(), results)
        print(f"{workload.name} on {args.cores} cores — {workload.description}")
        if len(results) == 1:
            result, config = results[0], configs[0]
            print(f"Dragonhead: {format_size(config.cache_size)}, {config.line_size}B lines")
            print(f"  instructions retired : {result.instructions:,}")
            print(f"  LLC accesses         : {result.accesses:,}")
            print(f"  LLC misses           : {result.llc_stats.misses:,}")
            print(f"  LLC MPKI             : {result.mpki:.3f}")
            print(f"  miss ratio           : {result.llc_stats.miss_ratio:.4f}")
            print(f"  filtered transactions: {result.filtered:,}")
            print(f"  sampled windows      : {len(result.samples)}")
            if args.phases:
                print("\nPhase analysis (stable-MPKI segments):")
                for phase, representative in phase_summary(result.samples):
                    print(
                        f"  phase {phase.index}: windows "
                        f"[{phase.start_window}, {phase.end_window}) "
                        f"mean MPKI {phase.mean_mpki:.2f}, "
                        f"representative window {representative}"
                    )
        else:
            print(
                f"Cache-size sweep ({len(results)} configurations, "
                f"{args.line}B lines, one captured trace):"
            )
            print(f"  {'LLC size':>10}  {'misses':>10}  {'LLC MPKI':>9}  {'miss ratio':>10}")
            for config, result in zip(configs, results):
                print(
                    f"  {format_size(config.cache_size):>10}"
                    f"  {result.llc_stats.misses:>10,}"
                    f"  {result.mpki:>9.3f}"
                    f"  {result.llc_stats.miss_ratio:>10.4f}"
                )
        if trace_cache is not None:
            print(f"  trace cache          : {trace_cache.stats.describe()} ({trace_cache.root})")
        if audit_mode != AUDIT_OFF:
            print()
            print(render_audit_report(results))
        governor = active_governor()
        governor_records = tuple(governor.records) if governor is not None else ()
        if fault_spec is not None or args.lenient or governor_records:
            if telemetry.enabled():
                # Satellite of the same counters publish_results wrote:
                # one counting path, same byte-identical report ordering.
                merged = profiling.registry_degradation_records(telemetry.registry())
            else:
                merged = merge_records(*(result.degradation for result in results))
            print()
            print(render_degradation_report(merge_records(merged, governor_records)))
        if ctx.counts:
            # Noteworthy only: empty on a clean un-resumed run, so the
            # byte-identical serial-vs-parallel contract is undisturbed.
            print(f"supervisor events: {ctx.describe()}")
        if governor is not None and governor.counts:
            # Only under an explicit budget, and only when one fired —
            # budget-free runs print exactly what they always printed.
            print(f"governor events: {governor.describe()}")
        if args.fail_on_degraded and (
            any(result is not None and result.degraded for result in results)
            or governor_records
        ):
            print("failing: degradation records present (--fail-on-degraded)")
            return EXIT_DEGRADED
        return EXIT_OK


def _emit_telemetry(args, results) -> None:
    """Write the metrics file and the profile, after the root span closed.

    Ordered after the ``run`` span closes so the profile's phase-coverage
    check sees the final root wall time; everything here is gated on the
    subsystem being enabled, preserving telemetry-off byte-identity.
    """
    if not telemetry.enabled():
        return
    registry = telemetry.registry()
    if args.profile:
        profile = profiling.build_profile(results, telemetry.tracker(), registry)
        print()
        print(profiling.render_profile(profile))
        if isinstance(args.profile, str):
            profiling.write_profile(profile, args.profile)
    if args.metrics_file:
        write_prometheus(registry, args.metrics_file)


if __name__ == "__main__":
    raise SystemExit(main())
