"""``repro-cosim``: run one co-simulation from the command line.

The operator's front door to the platform: pick a workload, a core
count, a Dragonhead configuration, and a trace source, and get the
instruction-synchronized cache statistics plus the phase analysis —
the same readout the paper's host computer produced.

Examples::

    repro-cosim --workload FIMI --cores 4 --cache 4MB
    repro-cosim --workload SHOT --cores 8 --cache 2MB --line 256 \\
                --source synthetic --accesses 50000 --scale 0.0625
"""

from __future__ import annotations

import argparse
from fractions import Fraction

from repro.cache.emulator import DragonheadConfig
from repro.core.cosim import CoSimPlatform
from repro.core.phases import phase_summary
from repro.units import format_size, parse_size
from repro.workloads.profiles import WORKLOAD_NAMES
from repro.workloads.registry import get_workload


def build_parser() -> argparse.ArgumentParser:
    """The repro-cosim argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-cosim",
        description="Co-simulate a data-mining workload on the "
        "SoftSDV+Dragonhead platform model.",
    )
    parser.add_argument(
        "--workload", required=True, choices=list(WORKLOAD_NAMES), help="workload name"
    )
    parser.add_argument("--cores", type=int, default=4, help="virtual cores (1-64)")
    parser.add_argument(
        "--cache", default="4MB", help="Dragonhead LLC size (1MB-256MB), e.g. 32MB"
    )
    parser.add_argument(
        "--line", type=int, default=64, help="cache line size in bytes (64-4096)"
    )
    parser.add_argument(
        "--source",
        choices=("kernel", "synthetic"),
        default="kernel",
        help="trace source: instrumented mining kernel or model-shaped synthetic",
    )
    parser.add_argument(
        "--accesses", type=int, default=65536, help="synthetic accesses per thread"
    )
    parser.add_argument(
        "--scale",
        type=Fraction,
        default=Fraction(1, 256),
        help="synthetic footprint scale, e.g. 1/256 or 0.00390625",
    )
    parser.add_argument("--quantum", type=int, default=4096, help="DEX slice quantum")
    parser.add_argument(
        "--phases", action="store_true", help="print the phase analysis of the run"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run one co-simulation and print its readout."""
    args = build_parser().parse_args(argv)
    workload = get_workload(args.workload)
    config = DragonheadConfig(cache_size=parse_size(args.cache), line_size=args.line)
    platform = CoSimPlatform(config, quantum=args.quantum)
    if args.source == "kernel":
        guest = workload.kernel_guest()
    else:
        guest = workload.synthetic_guest(
            accesses_per_thread=args.accesses, scale=float(args.scale)
        )
    result = platform.run(guest, cores=args.cores)

    print(f"{workload.name} on {args.cores} cores — {workload.description}")
    print(f"Dragonhead: {format_size(config.cache_size)}, {config.line_size}B lines")
    print(f"  instructions retired : {result.instructions:,}")
    print(f"  LLC accesses         : {result.accesses:,}")
    print(f"  LLC misses           : {result.llc_stats.misses:,}")
    print(f"  LLC MPKI             : {result.mpki:.3f}")
    print(f"  miss ratio           : {result.llc_stats.miss_ratio:.4f}")
    print(f"  filtered transactions: {result.filtered:,}")
    print(f"  sampled windows      : {len(result.samples)}")
    if args.phases:
        print("\nPhase analysis (stable-MPKI segments):")
        for phase, representative in phase_summary(result.samples):
            print(
                f"  phase {phase.index}: windows "
                f"[{phase.start_window}, {phase.end_window}) "
                f"mean MPKI {phase.mean_mpki:.2f}, "
                f"representative window {representative}"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
