"""``repro-describe``: the model card of one workload.

Prints everything the repository knows about a workload: its Table 1
inputs, Table 2 characteristics (paper and model), the calibrated
component mixture with per-component working sets and rates, the
projected working sets per CMP, and the prefetch/sharing classification
— the audit view for anyone extending the calibration.
"""

from __future__ import annotations

import argparse

from repro.harness.report import render_table
from repro.perf.cpi import predicted_ipc
from repro.perf.prefetch_study import component_prefetch_fraction
from repro.units import MB, format_size
from repro.workloads.profiles import (
    CATEGORIES,
    PAPER_TABLE2,
    WORKING_SETS,
    WORKLOAD_NAMES,
)
from repro.workloads.registry import get_workload


def describe(name: str) -> str:
    """The full model card as a string."""
    workload = get_workload(name)
    model = workload.model
    paper = PAPER_TABLE2[workload.name]
    lines: list[str] = []
    lines.append(f"{workload.name} — {workload.description}")
    lines.append(f"Sharing category (Section 4.3): {CATEGORIES[workload.name]}")
    lines.append(f"Table 1 inputs: {workload.table1_parameters}")
    lines.append(f"Table 1 dataset: {workload.table1_dataset}")
    lines.append("")
    lines.append(
        render_table(
            ["metric", "paper", "model"],
            [
                ("IPC", f"{paper.ipc:.2f}",
                 f"{predicted_ipc(workload.name, model.dl1_mpki(), model.dl2_mpki()):.2f}"),
                ("instructions (B)", f"{paper.instructions_billions:.2f}", "—"),
                ("memory instructions", f"{paper.mem_instruction_pct:.2f}%",
                 f"{100 * model.mem_fraction:.2f}%"),
                ("DL1 accesses /1k", f"{paper.dl1_accesses_pki:.0f}", f"{model.apki:.0f}"),
                ("DL1 MPKI", f"{paper.dl1_mpki:.2f}", f"{model.dl1_mpki():.2f}"),
                ("DL2 MPKI", f"{paper.dl2_mpki:.2f}", f"{model.dl2_mpki():.2f}"),
            ],
            title="Table 2 characteristics",
        )
    )
    lines.append("")
    lines.append(
        render_table(
            ["component", "pattern", "sharing", "region", "stride", "rate/1k", "prefetch"],
            [
                (
                    c.name,
                    c.pattern,
                    c.sharing,
                    format_size(int(c.region_bytes)),
                    str(c.stride),
                    f"{c.apki64:.2f}",
                    f"{component_prefetch_fraction(c.name, c.pattern):.2f}",
                )
                for c in model.components
            ],
            title="Calibrated component mixture (line-crossing rates at 64B)",
        )
    )
    lines.append("")
    working_sets = WORKING_SETS[workload.name]
    lines.append(
        render_table(
            ["CMP", "paper working set", "model MPKI @32MB", "model footprint"],
            [
                (
                    f"{cores} cores",
                    "/".join(format_size(w) for w in working_sets[cores]),
                    f"{model.llc_mpki(32 * MB, 64, cores):.2f}",
                    format_size(int(model.footprint_bytes(cores))),
                )
                for cores in (8, 16, 32)
            ],
            title="Thread scaling",
        )
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Print model cards for one or all workloads."""
    parser = argparse.ArgumentParser(
        prog="repro-describe", description="Print a workload's model card."
    )
    parser.add_argument(
        "workload",
        nargs="?",
        choices=list(WORKLOAD_NAMES),
        help="workload name (omit for all eight)",
    )
    args = parser.parse_args(argv)
    names = [args.workload] if args.workload else list(WORKLOAD_NAMES)
    for i, name in enumerate(names):
        if i:
            print("\n" + "=" * 72 + "\n")
        print(describe(name))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
