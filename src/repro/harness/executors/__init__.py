"""Pluggable executor backends for supervised sweeps — the sweep fabric.

The supervisor used to be welded to one local
:class:`~concurrent.futures.ProcessPoolExecutor`: one dead machine or
wedged pool lost the run.  This package splits *what the supervisor
does* (retry, journal, drain, report) from *where points execute*
behind a small :class:`~repro.harness.executors.base.Executor`
protocol, with three backends:

* ``pool`` — the in-process worker pool the supervisor always had
  (:mod:`~repro.harness.executors.local`);
* ``shard`` — N independent forked worker processes, each running a
  lease-based work-stealing loop over a shared ledger
  (:mod:`~repro.harness.executors.shard`);
* ``remote`` — the same worker loop launched through a shell command
  template (:mod:`~repro.harness.executors.remote`), exercising the
  exact code path an SSH or k8s backend would: the worker gets a
  ledger path and an identity, nothing else crosses the boundary.

Coordination between ledger workers is described in
:mod:`~repro.harness.executors.ledger`; the parent-side driver that
turns a ledger sweep back into an ordered result list lives in
:mod:`~repro.harness.executors.fabric`.
"""

from repro.harness.executors.base import (
    FABRIC_BACKENDS,
    EXECUTOR_NAMES,
    Executor,
    FabricConfig,
    LivenessReport,
    PointEvent,
    SubmittedPoint,
)
from repro.harness.executors.ledger import FabricLedger, LedgerState, PointState
from repro.harness.executors.local import LocalPoolExecutor

__all__ = [
    "EXECUTOR_NAMES",
    "FABRIC_BACKENDS",
    "Executor",
    "FabricConfig",
    "FabricLedger",
    "LedgerState",
    "LivenessReport",
    "LocalPoolExecutor",
    "PointEvent",
    "PointState",
    "SubmittedPoint",
    "make_backend",
    "run_fabric",
]


def __getattr__(name: str):
    # The fabric driver pulls in the supervisor lazily; mirror that
    # here so ``from repro.harness.executors import run_fabric`` works
    # without forcing the import cycle at package-import time.
    if name in ("make_backend", "run_fabric"):
        from repro.harness.executors import fabric

        return getattr(fabric, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
