"""The ``Executor`` protocol and the fabric configuration.

An executor backend owns *where* sweep points run; the supervisor (for
the ``pool`` backend) or the fabric driver (for the ledger backends)
owns *what happens around them* — retries, journaling, quarantine,
reporting.  The protocol is four verbs:

``submit``
    Hand one prepared point to the backend.  The local pool starts it
    on a worker immediately; ledger backends append it to the shared
    manifest for any worker to claim.
``poll``
    Block up to a timeout and return what changed: completed points,
    failed attempts, crashed workers, lease activity.
``liveness``
    Report each worker's vital signs (process aliveness plus, for
    ledger workers, the age of their last heartbeat) so the driver can
    respawn the dead and export a heartbeat-age gauge.
``cancel``
    Drain the backend: SIGTERM the workers, wait out a grace period,
    SIGKILL the stragglers.  Safe to call at any time — ledger state
    survives, and a later run resumes from it.

``respawn`` rounds the protocol out: replace dead capacity without
disturbing surviving work (for the local pool, which cannot keep
survivors across a dead worker, it rebuilds the whole pool).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError

#: Executor selector values accepted by ``--executor``.
EXECUTOR_NAMES = ("pool", "shard", "remote")

#: The subset of backends that coordinate through a lease ledger (and
#: therefore run through the fabric driver instead of the pool loop).
FABRIC_BACKENDS = ("shard", "remote")

#: Default command template for the ``remote`` backend.  Placeholders:
#: ``{python}`` (this interpreter), ``{ledger}`` (the shared ledger
#: path), ``{worker_id}`` (the worker's identity).  A real SSH or k8s
#: backend is this template with a transport prefix — the worker-side
#: contract is identical.
DEFAULT_WORKER_COMMAND = (
    "{python} -m repro.harness.executors.worker"
    " --ledger {ledger} --worker-id {worker_id}"
)


@dataclass(frozen=True)
class SubmittedPoint:
    """One grid point, prepared for execution on any backend.

    ``key`` is the point's content key (task identity + canonicalized
    pickled item — see :meth:`~repro.harness.supervisor.SweepJournal.
    point_key`); it is what makes re-execution idempotent across
    workers and runs.  ``fault``/``hang_seconds`` carry a planned
    harness fault for this attempt, ``checkpoint_path`` a mid-point
    snapshot location for tasks that advertise ``supports_checkpoint``.
    """

    index: int
    task: Callable
    item: Any
    key: str | None = None
    fault: str | None = None
    hang_seconds: float = 0.0
    checkpoint_path: str | None = None


@dataclass(frozen=True)
class PointEvent:
    """One thing that happened on a backend since the last poll.

    Kinds:

    * ``done`` — a point completed; ``value`` holds the result.
    * ``error`` — an attempt raised; ``error`` holds the exception.
    * ``crash`` — the worker running the point died; charged like an
      error (the point was plausibly the killer).
    * ``lost`` — a point's worker pool collapsed under it through no
      fault of its own; re-run without charging an attempt.
    * ``respawn`` — the backend replaced dead capacity on its own.

    Ledger backends add lease-level kinds: ``lease`` (a worker claimed
    a point), ``steal`` (the claim reclaimed an expired lease),
    ``failed`` (one recorded attempt raised; ``attempts`` tells the
    driver whether retries remain), ``quarantined`` (the point killed
    too many workers; ``value`` lists them), ``verified`` (a racing
    re-execution matched the recorded result byte-for-byte), and
    ``conflict`` (it did not — the sweep must fail).

    ``handle`` identifies the in-flight record the driver keyed the
    point under (the local pool uses the future itself, ledger
    backends the content key); events that concern no single point
    (``respawn``) carry ``handle=None``.
    """

    kind: str
    handle: Any = None
    value: Any = None
    error: BaseException | None = None
    wall_time_s: float | None = None
    #: Ledger backends also report which worker produced the event and
    #: which attempt it was; the local pool leaves these unset.
    worker: str | None = None
    attempts: int | None = None


@dataclass
class LivenessReport:
    """Vital signs of a backend's workers at one instant."""

    #: worker id → alive (process-level: the pid still runs).
    alive: dict[str, bool] = field(default_factory=dict)
    #: worker id → seconds since its last ledger heartbeat (ledger
    #: backends only; the local pool has no heartbeats).
    heartbeat_age: dict[str, float] = field(default_factory=dict)

    @property
    def dead(self) -> list[str]:
        return [wid for wid, ok in self.alive.items() if not ok]


class Executor(ABC):
    """Where sweep points execute.  See the module docstring."""

    #: Backend selector name (``pool`` / ``shard`` / ``remote``).
    name: str = "?"

    @abstractmethod
    def submit(self, point: SubmittedPoint) -> Any:
        """Accept one point; returns the handle ``poll`` events use."""

    @abstractmethod
    def poll(self, timeout: float | None) -> list[PointEvent]:
        """Block up to ``timeout`` seconds; return new events."""

    @abstractmethod
    def liveness(self) -> LivenessReport:
        """Process aliveness (and heartbeat ages) per worker."""

    @abstractmethod
    def respawn(self) -> None:
        """Replace dead capacity; surviving work keeps running where
        the backend can preserve it."""

    @abstractmethod
    def cancel(self, grace: float = 5.0) -> None:
        """Drain: SIGTERM workers, wait ``grace`` seconds, SIGKILL."""

    def close(self) -> None:
        """Release resources after a clean completion (default: drain)."""
        self.cancel(grace=0.0)


@dataclass(frozen=True)
class FabricConfig:
    """How a ledger-backed sweep fabric is shaped.

    Attributes:
        backend: ``shard`` (forked workers) or ``remote`` (command-
            template subprocess workers).
        shards: target number of live workers; the driver respawns
            toward this count when workers die.
        lease_ttl: seconds a claim stays exclusive without a heartbeat;
            any worker may steal the point after expiry.
        heartbeat_every: heartbeat period (default ``lease_ttl / 3``).
        poll_interval: driver/worker ledger re-scan period.
        quarantine_after: a point whose lease expired under this many
            *distinct* workers is quarantined as poison instead of
            being stolen again.
        ledger_path: the shared ledger file (``--journal`` in the
            CLIs); None lets the driver place one in a temp directory.
        resume: load prior ``done`` records instead of truncating.
        worker_command: ``remote`` backend launch template (see
            :data:`DEFAULT_WORKER_COMMAND`).
        grace: drain grace period before SIGKILL.
        max_respawns: hard ceiling on worker respawns per map, so a
            fleet that dies instantly (bad interpreter, bad template)
            fails loudly instead of respawning forever.
        observer: test/chaos hook, called as ``observer(backend,
            cycle)`` once per driver poll cycle.
    """

    backend: str = "shard"
    shards: int = 2
    lease_ttl: float = 30.0
    heartbeat_every: float | None = None
    poll_interval: float = 0.05
    quarantine_after: int = 3
    ledger_path: str | os.PathLike | None = None
    resume: bool = False
    worker_command: str = DEFAULT_WORKER_COMMAND
    grace: float = 5.0
    max_respawns: int = 64
    observer: Callable[[Any, int], None] | None = None

    def __post_init__(self) -> None:
        if self.backend not in FABRIC_BACKENDS:
            known = ", ".join(FABRIC_BACKENDS)
            raise ConfigurationError(
                f"unknown fabric backend {self.backend!r}; ledger backends: {known}"
            )
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.lease_ttl <= 0:
            raise ConfigurationError(
                f"lease-ttl must be positive, got {self.lease_ttl}"
            )
        if self.quarantine_after < 1:
            raise ConfigurationError(
                f"quarantine-after must be >= 1, got {self.quarantine_after}"
            )

    @property
    def heartbeat_period(self) -> float:
        """Effective heartbeat period (a third of the TTL by default)."""
        return (
            self.heartbeat_every
            if self.heartbeat_every is not None
            else self.lease_ttl / 3.0
        )


def spawn_command(
    template: str, ledger: str, worker_id: str, python: str
) -> list[str]:
    """Expand a worker command template into an argv list."""
    import shlex

    try:
        rendered = template.format(
            python=python, ledger=ledger, worker_id=worker_id
        )
    except (KeyError, IndexError) as error:
        raise ConfigurationError(
            f"worker command template {template!r} has an unknown "
            f"placeholder: {error}"
        ) from error
    argv = shlex.split(rendered)
    if not argv:
        raise ConfigurationError("worker command template expanded to nothing")
    return argv
