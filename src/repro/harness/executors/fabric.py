"""The fabric driver: a supervised map over a ledger-backed fleet.

:func:`run_fabric` is the ledger-backend counterpart of the
supervisor's pool loop.  The division of labour is deliberately
different from the pool's: workers own execution, retries-with-backoff
(recorded as ``failed`` records), lease renewal, stealing, and
quarantine decisions — everything that must survive the driver dying.
The driver owns what only the parent can do: placing the manifest and
config, folding ledger records into the in-order results list,
respawning dead worker processes toward the target shard count,
exporting per-shard telemetry, and converting terminal records into
the supervisor's degrade-or-raise policy.

Per-point wall-clock budgets are enforced by the lease TTL rather
than :attr:`SupervisorPolicy.timeout`: a point that stops heartbeating
— hung, or its worker killed — is stolen after ``lease_ttl`` seconds,
which is the distributed analog of the pool's reap-and-respawn.
"""

from __future__ import annotations

import dataclasses
import tempfile
from pathlib import Path
from typing import Callable

from repro.errors import QuarantinedPointError, SweepInterrupted
from repro.harness.executors.base import FabricConfig, SubmittedPoint
from repro.harness.executors.ledger import ensure_no_conflicts
from repro.telemetry import runtime as telemetry


def make_backend(config: FabricConfig, ledger_path: str):
    """Instantiate the configured ledger backend."""
    if config.backend == "shard":
        from repro.harness.executors.shard import ShardExecutor

        return ShardExecutor(config, ledger_path)
    from repro.harness.executors.remote import RemoteExecutor

    return RemoteExecutor(config, ledger_path)


def _policy_config(context, config: FabricConfig) -> dict:
    """The ``config`` record workers obey, rendered from the policy."""
    policy = context.policy
    row = {
        "lease_ttl": config.lease_ttl,
        "heartbeat_every": config.heartbeat_period,
        "poll_interval": config.poll_interval,
        "retries": policy.retries,
        "backoff_base": policy.backoff_base,
        "backoff_cap": policy.backoff_cap,
        "quarantine_after": config.quarantine_after,
    }
    if context.fault_spec is not None:
        row["inject"] = context.fault_spec.describe()
    return row


def run_fabric(
    task: Callable,
    work: list,
    pending: list[int],
    keys: list[str],
    ckpt_paths: list,
    results: list,
    context,
) -> None:
    """Run the pending points of one map on the configured fabric."""
    # Imported here, not at module top: supervisor imports the executors
    # package, so the driver reaches back lazily to close the cycle.
    from repro.harness.supervisor import _drain_report, _fail, _finish, check_deadline

    config: FabricConfig = context.fabric
    policy = context.policy
    tempdir: tempfile.TemporaryDirectory | None = None
    if config.ledger_path is not None:
        ledger_path = str(config.ledger_path)
    else:
        tempdir = tempfile.TemporaryDirectory(prefix="repro-fabric-")
        ledger_path = str(Path(tempdir.name) / "ledger.jsonl")

    # One supervised sweep may run several maps (repro-runall runs one
    # per exhibit) against one ledger: only the first map honours the
    # user's resume flag — every later map must resume, or opening the
    # ledger would truncate the earlier maps' records mid-run.
    if getattr(context, "_fabric_ledger_used", False):
        config = dataclasses.replace(config, resume=True)
    context._fabric_ledger_used = True

    backend = make_backend(config, ledger_path)
    try:
        # A resumed ledger already holds ``done`` records; fold them in
        # before manifesting, exactly as the journal pre-skip does.
        backend.ledger.scan()
        still_pending: list[int] = []
        for i in pending:
            ps = backend.ledger.state.points.get(keys[i])
            if ps is not None and ps.done is not None:
                _finish(
                    context,
                    keys,
                    results,
                    i,
                    ps.result(),
                    wall_time_s=None,
                    attempts=ps.done.get("attempts", 1),
                )
                context.count("journal-skip")
            else:
                still_pending.append(i)
        if not still_pending:
            return

        backend.ledger.write_config(_policy_config(context, config))
        index_by_key: dict[str, int] = {}
        for i in still_pending:
            index_by_key[keys[i]] = i
            backend.submit(
                SubmittedPoint(
                    index=i,
                    task=task,
                    item=work[i],
                    key=keys[i],
                    checkpoint_path=ckpt_paths[i],
                )
            )
        backend.start()

        outstanding = set(index_by_key.values())
        cycle = 0
        while outstanding:
            # Deadline expiry drains the fabric exactly like SIGINT
            # below: workers are cancelled with the same grace, the
            # ledger keeps every done record, and a resumed run skips
            # them.  Checked once per cycle, so expiry costs at most
            # one poll interval plus one point's latency.
            check_deadline(
                context, results, cancel=lambda: backend.cancel(grace=config.grace)
            )
            for event in backend.poll(config.poll_interval):
                index = index_by_key.get(event.handle)
                if event.kind in ("lease", "steal"):
                    context.count(f"fabric-{event.kind}")
                    metric = (
                        "repro_fabric_steals_total"
                        if event.kind == "steal"
                        else "repro_fabric_leases_total"
                    )
                    telemetry.counter(metric, shard=event.worker or "?").inc()
                elif event.kind == "verified":
                    context.count("fabric-verified")
                elif event.kind == "conflict":
                    ensure_no_conflicts(backend.ledger.state)
                elif index is None or index not in outstanding:
                    continue
                elif event.kind == "done":
                    outstanding.discard(index)
                    _finish(
                        context,
                        keys,
                        results,
                        index,
                        event.value,
                        wall_time_s=event.wall_time_s,
                        attempts=event.attempts or 1,
                    )
                elif event.kind == "failed":
                    if (event.attempts or 1) > policy.retries:
                        outstanding.discard(index)
                        _fail(
                            context,
                            policy,
                            keys,
                            results,
                            index,
                            work[index],
                            event.error,
                            event.attempts or 1,
                        )
                    else:
                        context.count("point-retry")
                elif event.kind == "quarantined":
                    outstanding.discard(index)
                    context.count("fabric-quarantined")
                    _fail(
                        context,
                        policy,
                        keys,
                        results,
                        index,
                        work[index],
                        QuarantinedPointError(keys[index], event.value or []),
                        (event.attempts or 0) + 1,
                    )
            if outstanding:
                _tend_fleet(backend, context)
            if config.observer is not None:
                config.observer(backend, cycle)
            cycle += 1
    except KeyboardInterrupt:
        backend.cancel(grace=config.grace)
        _drain_report(context, results)
        raise SweepInterrupted(context.completed, context.total) from None
    finally:
        backend.close()
        if tempdir is not None:
            tempdir.cleanup()


def _tend_fleet(backend, context) -> None:
    """Respawn dead workers; export per-shard heartbeat-age gauges."""
    liveness = backend.liveness()
    if liveness.dead:
        replaced = backend.respawn()
        if replaced:
            context.count("fabric-worker-respawn", replaced)
            telemetry.counter("repro_fabric_respawns_total").inc(replaced)
    for worker_id, age in liveness.heartbeat_age.items():
        telemetry.gauge(
            "repro_fabric_heartbeat_age_seconds", shard=worker_id
        ).set(age)
