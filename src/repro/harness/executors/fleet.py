"""Shared machinery for ledger-coordinated worker fleets.

The ``shard`` and ``remote`` backends differ only in how a worker
process comes to exist (a fork versus a command template).  Everything
else — manifesting points, translating ledger records into
:class:`~repro.harness.executors.base.PointEvent` streams, liveness,
respawning dead workers, the SIGTERM→grace→SIGKILL drain — lives here.
"""

from __future__ import annotations

import time
from abc import abstractmethod
from typing import Any

from repro.errors import FabricError, RemotePointError
from repro.harness.executors.base import (
    Executor,
    FabricConfig,
    LivenessReport,
    PointEvent,
    SubmittedPoint,
)
from repro.harness.executors.ledger import FabricLedger, _decode


class WorkerHandle:
    """One live worker process, however it was launched."""

    def __init__(self, worker_id: str, pid: int) -> None:
        self.worker_id = worker_id
        self.pid = pid

    def alive(self) -> bool:
        raise NotImplementedError

    def terminate(self) -> None:
        raise NotImplementedError

    def kill(self) -> None:
        raise NotImplementedError

    def join(self, timeout: float) -> None:
        raise NotImplementedError


class LedgerFleet(Executor):
    """An executor whose workers coordinate through a shared ledger."""

    def __init__(self, config: FabricConfig, ledger_path: str) -> None:
        self.config = config
        self.ledger_path = ledger_path
        self.ledger = FabricLedger(ledger_path, resume=config.resume)
        self.workers: dict[str, WorkerHandle] = {}
        self.respawns = 0
        self._spawned = 0
        self._started = False

    # -- subclass hook -------------------------------------------------

    @abstractmethod
    def _spawn(self, worker_id: str) -> WorkerHandle:
        """Bring one worker process into existence."""

    # -- protocol ------------------------------------------------------

    def submit(self, point: SubmittedPoint) -> str:
        self.ledger.manifest(
            [(point.key, (point.task, point.item), point.checkpoint_path)]
        )
        return point.key

    def start(self) -> None:
        """Launch the fleet (after the manifest and config are down)."""
        if self._started:
            return
        self._started = True
        for _ in range(self.config.shards):
            self._spawn_next()

    def _spawn_next(self) -> WorkerHandle:
        self._spawned += 1
        worker_id = f"{self.name}-{self._spawned}"
        handle = self._spawn(worker_id)
        self.workers[worker_id] = handle
        return handle

    def poll(self, timeout: float | None) -> list[PointEvent]:
        rows = self.ledger.scan()
        if not rows and timeout:
            time.sleep(timeout)
            rows = self.ledger.scan()
        events: list[PointEvent] = []
        for row in rows:
            event = self._translate(row)
            if event is not None:
                events.append(event)
        return events

    def _translate(self, row: dict) -> PointEvent | None:
        kind = row.get("type")
        key = row.get("key")
        worker = row.get("worker")
        if kind == "claimed":
            return PointEvent(
                kind="steal" if row.get("steal") else "lease",
                handle=key,
                worker=worker,
            )
        if kind == "done" or (kind is None and "result" in row and key):
            return PointEvent(
                kind="done",
                handle=key,
                value=_decode(row["result"]),
                wall_time_s=row.get("wall_time_s"),
                attempts=row.get("attempts", 1),
                worker=worker,
            )
        if kind == "failed":
            return PointEvent(
                kind="failed",
                handle=key,
                error=RemotePointError(row.get("error", "?"), worker=worker),
                attempts=row.get("attempts", 1),
                worker=worker,
            )
        if kind == "quarantined":
            return PointEvent(
                kind="quarantined",
                handle=key,
                value=row.get("dead_workers", []),
                worker=worker,
            )
        if kind in ("verified", "conflict"):
            return PointEvent(kind=kind, handle=key, worker=worker)
        return None  # config / point / heartbeat: not driver events

    def liveness(self) -> LivenessReport:
        report = LivenessReport()
        now = time.time()
        for worker_id, handle in self.workers.items():
            report.alive[worker_id] = handle.alive()
            seen = self.ledger.state.last_seen.get(worker_id)
            if seen is not None:
                report.heartbeat_age[worker_id] = max(0.0, now - seen)
        return report

    def respawn(self) -> int:
        """Replace dead workers up to the fleet's target strength.

        Returns how many were respawned; raises :class:`FabricError`
        once the respawn budget is exhausted — a fleet whose workers
        die on arrival is misconfigured, not unlucky.
        """
        replaced = 0
        for worker_id, handle in list(self.workers.items()):
            if handle.alive():
                continue
            del self.workers[worker_id]
            if self.respawns >= self.config.max_respawns:
                raise FabricError(
                    f"fabric workers died {self.respawns} times (budget "
                    f"{self.config.max_respawns}); refusing to respawn "
                    "further — check the worker command / environment"
                )
            self.respawns += 1
            replaced += 1
            self._spawn_next()
        return replaced

    def cancel(self, grace: float = 5.0) -> None:
        """Drain: SIGTERM everyone, wait out ``grace``, SIGKILL."""
        for handle in self.workers.values():
            if handle.alive():
                try:
                    handle.terminate()
                except OSError:
                    pass
        deadline = time.monotonic() + max(0.0, grace)
        for handle in self.workers.values():
            handle.join(max(0.0, deadline - time.monotonic()))
        for handle in self.workers.values():
            if handle.alive():
                try:
                    handle.kill()
                except OSError:
                    pass
                handle.join(5.0)
        self.workers.clear()

    def close(self) -> None:
        self.cancel(grace=self.config.grace)

    # -- conveniences for drivers and chaos harnesses ------------------

    def worker_pids(self) -> dict[str, int]:
        """Live worker id → pid (what a chaos monkey SIGKILLs)."""
        return {
            wid: handle.pid
            for wid, handle in self.workers.items()
            if handle.alive()
        }

    def describe(self) -> str:
        alive = sum(1 for h in self.workers.values() if h.alive())
        return (
            f"{self.name} fleet: {alive}/{self.config.shards} workers, "
            f"{self.respawns} respawn(s), ledger {self.ledger_path}"
        )
