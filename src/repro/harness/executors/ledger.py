"""The lease-based work-stealing ledger: the v3 journal, distributed.

One append-only JSONL file coordinates every worker of a fabric sweep.
It *is* a v3 sweep journal — the header line and the ``done`` records
are exactly what :class:`~repro.harness.supervisor.SweepJournal`
writes, so ``--resume`` can read a fabric ledger and a fabric run can
resume from a plain journal — extended with lease records that only
the fabric reads:

====================  ==================================================
record                meaning
====================  ==================================================
``{"format": 3}``     the journal schema header (first line)
``config``            sweep policy workers obey (TTL, retries, backoff,
                      quarantine threshold, optional fault plan)
``point``             manifest: one grid point (content key + pickled
                      ``(task, item)`` payload), appended by the parent
``claimed``           a worker took the point, exclusively until
                      ``expires``; ``steal`` marks a reclaimed expired
                      lease
``heartbeat``         lease renewal while the point runs
``done``              the point's result (journal-compatible entry plus
                      the executing worker and the result bytes' SHA)
``verified``          a racing re-execution compared byte-identical to
                      the recorded result and was discarded
``conflict``          a re-execution *differed* — determinism is broken
                      and the sweep must fail loudly
``failed``            one attempt raised; carries the attempt count and
                      the earliest time a retry may start (backoff)
``quarantined``       the point's lease expired under ``K`` distinct
                      workers — it is poison and is never claimed again
====================  ==================================================

Concurrency and crash-safety rules:

* every append happens under an exclusive ``fcntl`` lock on a sidecar
  ``<ledger>.lock`` file, and is flushed + fsynced before the lock is
  released — a record either exists durably or not at all;
* a writer that finds the file ending mid-line (a worker was SIGKILLed
  inside ``write(2)``) first appends a bare newline, turning the torn
  fragment into its own invalid line that every parser skips — two
  records can never fuse;
* readers only consume up to the last complete line, so a torn tail is
  invisible until its terminating newline lands;
* decisions that depend on ledger state (claiming, recording a result)
  re-scan *inside* the lock, so two workers can never hold the same
  valid lease and a result key is recorded at most once.

Idempotency argument, in one paragraph: points are identified by
content key, results are recorded by content key, and tasks are pure
functions of their items.  A worker that dies mid-point leaves only an
expired lease; the re-execution computes the same bytes, and whichever
finishes first wins the single ``done`` record — a later finisher
verifies byte-identity against it instead of appending.  Any mismatch
is recorded as ``conflict`` and fails the sweep, because it means a
task was not the pure function the contract requires.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ConfigurationError, FabricError
from repro.serve.jobspec import raw_digest

try:  # POSIX only; the fabric backends refuse to start without it.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

#: Same schema as the sweep journal — a ledger *is* a v3 journal.
LEDGER_FORMAT = 3

#: Pickle protocol for payloads and results; pinned so byte-identity
#: comparisons never trip over a protocol default changing under us.
PICKLE_PROTOCOL = 4


def _encode(value: Any) -> tuple[str, str]:
    """Pickle ``value``; return (base85 text, SHA-256 of the bytes).

    The digest comes from the shared job-spec content-key helpers, so
    ledger byte-identity verification, journal point keys, and served
    job-result digests all live in one key space and cannot drift.
    """
    raw = pickle.dumps(value, protocol=PICKLE_PROTOCOL)
    return base64.b85encode(raw).decode("ascii"), raw_digest(raw)


def _decode(text: str) -> Any:
    return pickle.loads(base64.b85decode(text))


@dataclass
class PointState:
    """Everything the ledger knows about one grid point."""

    key: str
    payload: str | None = None
    checkpoint: str | None = None
    done: dict | None = None
    failed: list[dict] = field(default_factory=list)
    quarantined: dict | None = None
    conflict: dict | None = None
    verified: int = 0
    #: Current lease, if any.
    lease_worker: str | None = None
    lease_expires: float = 0.0
    #: Distinct workers whose lease on this key expired without that
    #: worker recording an outcome — the body count quarantine reads.
    expired_holders: set[str] = field(default_factory=set)

    def attempts(self) -> int:
        return len(self.failed)

    def retry_after(self) -> float:
        return self.failed[-1].get("retry_after", 0.0) if self.failed else 0.0

    def terminal(self, retries: int) -> bool:
        """No further execution will change this point's fate."""
        return (
            self.done is not None
            or self.quarantined is not None
            or self.conflict is not None
            or self.attempts() > retries
        )

    def lease_expired(self, now: float) -> bool:
        return self.lease_worker is not None and now >= self.lease_expires

    def claimable(self, now: float, retries: int) -> bool:
        if self.terminal(retries):
            return False
        if self.lease_worker is not None and now < self.lease_expires:
            return False  # someone holds a valid lease
        return now >= self.retry_after()

    def dead_holders(self, now: float) -> set[str]:
        """Workers presumed killed while holding this point."""
        dead = set(self.expired_holders)
        if self.lease_expired(now):
            dead.add(self.lease_worker)
        return dead

    def result(self) -> Any:
        return _decode(self.done["result"])


@dataclass
class LedgerState:
    """The ledger's records folded into per-point + per-worker state."""

    config: dict = field(default_factory=dict)
    #: Manifest order is claim-scan order, so dict insertion order matters.
    points: dict[str, PointState] = field(default_factory=dict)
    #: worker id → wall-clock time of its last claim/heartbeat.
    last_seen: dict[str, float] = field(default_factory=dict)
    skipped_lines: int = 0

    def point(self, key: str) -> PointState:
        if key not in self.points:
            self.points[key] = PointState(key=key)
        return self.points[key]

    def all_terminal(self, retries: int) -> bool:
        return all(ps.terminal(retries) for ps in self.points.values())

    def _apply(self, row: dict) -> None:
        kind = row.get("type")
        if kind == "config":
            self.config = row
            return
        key = row.get("key")
        if key is None:
            return
        ps = self.point(key)
        if kind == "point":
            if ps.payload is None:
                ps.payload = row.get("payload")
                ps.checkpoint = row.get("checkpoint")
        elif kind == "claimed":
            if row.get("steal") and ps.lease_worker is not None:
                ps.expired_holders.add(ps.lease_worker)
            ps.lease_worker = row["worker"]
            ps.lease_expires = float(row["expires"])
            self.last_seen[row["worker"]] = float(row.get("time", 0.0))
        elif kind == "heartbeat":
            if ps.lease_worker == row["worker"]:
                ps.lease_expires = float(row["expires"])
            self.last_seen[row["worker"]] = float(row.get("time", 0.0))
        elif kind == "failed":
            ps.failed.append(row)
            if ps.lease_worker == row.get("worker"):
                ps.lease_worker = None
        elif kind == "verified":
            ps.verified += 1
        elif kind == "conflict":
            ps.conflict = row
        elif kind == "quarantined":
            if ps.quarantined is None:
                ps.quarantined = row
            ps.lease_worker = None
        elif kind == "done" or ("result" in row and kind is None):
            # ``kind is None`` accepts plain v3 journal entries, so a
            # fabric sweep can resume from a pool-backend journal.
            if ps.done is None:
                ps.done = row
            if ps.lease_worker == row.get("worker"):
                ps.lease_worker = None


@dataclass
class Claim:
    """A successful ``try_claim``: run this point now."""

    key: str
    payload: str
    attempt: int  # 1-based attempt number this execution is
    checkpoint: str | None
    steal: bool
    expires: float

    def load(self) -> tuple[Any, Any]:
        """The manifested ``(task, item)`` pair."""
        return _decode(self.payload)


class FabricLedger:
    """One process's handle on the shared ledger file.

    Every worker and the driver hold their own instance; nothing is
    shared in memory.  Reads are incremental (the instance remembers
    its file offset); writes go through :meth:`append` under the
    sidecar lock.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        resume: bool = False,
        create: bool = True,
    ) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            raise ConfigurationError(
                "the fabric ledger needs fcntl file locking, which this "
                "platform does not provide; use --executor pool"
            )
        self.path = Path(path)
        self._offset = 0
        self._partial = b""
        self.state = LedgerState()
        if create:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._locked():
                if not resume:
                    self.path.write_text(
                        json.dumps({"format": LEDGER_FORMAT}) + "\n",
                        encoding="utf-8",
                    )
                elif not self.path.exists() or self.path.stat().st_size == 0:
                    self.path.write_text(
                        json.dumps({"format": LEDGER_FORMAT}) + "\n",
                        encoding="utf-8",
                    )
                else:
                    self._check_header()
        elif not self.path.exists():
            raise ConfigurationError(f"fabric ledger {self.path} does not exist")
        else:
            self._check_header()

    # -- locking and raw IO -------------------------------------------

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Exclusive advisory lock on the sidecar ``<ledger>.lock``."""
        lock_path = str(self.path) + ".lock"
        fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)  # closing drops the flock

    def _check_header(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            first = handle.readline().strip()
        try:
            header = json.loads(first) if first else None
            version = header.get("format") if isinstance(header, dict) else None
        except ValueError:
            version = None
        if version != LEDGER_FORMAT:
            raise ConfigurationError(
                f"ledger {self.path} carries schema {version!r}; this build "
                f"reads {LEDGER_FORMAT} — delete it or start a fresh sweep"
            )

    def _append_locked(self, rows: list[dict]) -> None:
        """Append rows durably; caller must hold the lock."""
        data = b"".join(
            (json.dumps(row, sort_keys=True) + "\n").encode("utf-8")
            for row in rows
        )
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            size = os.lseek(fd, 0, os.SEEK_END)
            if size > 0 and os.pread(fd, 1, size - 1) != b"\n":
                # A writer was killed mid-write: terminate the torn
                # fragment so it parses as one invalid line, not as a
                # prefix fused onto this record.
                os.write(fd, b"\n")
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)

    def append(self, *rows: dict) -> None:
        """Append rows under the lock, riding out transient I/O errors.

        The retry wraps the whole lock-write-fsync transaction: a retry
        after a mid-write EIO can at worst leave a torn fragment, which
        the next writer's newline repair and every parser's torn-line
        tolerance already absorb.
        """
        from repro.governor.fsshim import fault_point
        from repro.governor.retry import retry_io

        def _write() -> None:
            fault_point("ledger.append")
            with self._locked():
                self._append_locked(list(rows))

        retry_io("ledger.append", _write)

    # -- reading -------------------------------------------------------

    def scan(self) -> list[dict]:
        """Fold new complete lines into ``state``; return them."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                data = handle.read()
        except FileNotFoundError:
            return []
        if not data:
            return []
        cut = data.rfind(b"\n")
        if cut < 0:
            return []  # only a torn tail so far
        chunk, self._offset = data[: cut + 1], self._offset + cut + 1
        rows: list[dict] = []
        for line in chunk.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                self.state.skipped_lines += 1
                continue
            if not isinstance(row, dict) or row.get("format") is not None:
                continue  # the header (or junk)
            self.state._apply(row)
            rows.append(row)
        return rows

    # -- parent-side operations ---------------------------------------

    def write_config(self, config: dict) -> None:
        """Record sweep policy for the workers (last config wins)."""
        row = dict(config)
        row.update({"schema": LEDGER_FORMAT, "type": "config"})
        self.append(row)

    def manifest(self, points: list[tuple[str, Any, str | None]]) -> int:
        """Append ``point`` records for keys not already manifested.

        ``points`` is ``(key, (task, item), checkpoint_path)``; returns
        how many were newly manifested (already-manifested keys — a
        resumed sweep — are skipped, keeping the manifest append-once).
        """
        with self._locked():
            self.scan()
            rows = []
            for key, payload, checkpoint in points:
                ps = self.state.points.get(key)
                if ps is not None and ps.payload is not None:
                    continue
                encoded, _ = _encode(payload)
                row = {
                    "schema": LEDGER_FORMAT,
                    "type": "point",
                    "key": key,
                    "payload": encoded,
                }
                if checkpoint is not None:
                    row["checkpoint"] = checkpoint
                rows.append(row)
            if rows:
                self._append_locked(rows)
        return len(rows)

    # -- worker-side operations ---------------------------------------

    def try_claim(
        self,
        worker: str,
        lease_ttl: float,
        retries: int,
        quarantine_after: int,
        now: float | None = None,
    ) -> Claim | None:
        """Atomically claim the first available point, if any.

        Quarantine happens here, at the moment a worker would otherwise
        steal a poison point: if the point's lease has already expired
        under ``quarantine_after`` distinct workers, the worker records
        ``quarantined`` instead of claiming and moves on.
        """
        now = time.time() if now is None else now
        with self._locked():
            self.scan()
            rows: list[dict] = []
            claim: Claim | None = None
            for ps in self.state.points.values():
                if ps.payload is None or not ps.claimable(now, retries):
                    continue
                dead = ps.dead_holders(now)
                if len(dead) >= quarantine_after:
                    rows.append(
                        {
                            "schema": LEDGER_FORMAT,
                            "type": "quarantined",
                            "key": ps.key,
                            "worker": worker,
                            "dead_workers": sorted(dead),
                            "time": now,
                        }
                    )
                    continue
                steal = ps.lease_worker is not None
                expires = now + lease_ttl
                rows.append(
                    {
                        "schema": LEDGER_FORMAT,
                        "type": "claimed",
                        "key": ps.key,
                        "worker": worker,
                        "expires": expires,
                        "steal": steal,
                        "time": now,
                    }
                )
                claim = Claim(
                    key=ps.key,
                    payload=ps.payload,
                    attempt=ps.attempts() + 1,
                    checkpoint=ps.checkpoint,
                    steal=steal,
                    expires=expires,
                )
                break
            if rows:
                self._append_locked(rows)
        if rows:
            self.scan()  # fold our own records in
        return claim

    def heartbeat(self, key: str, worker: str, lease_ttl: float) -> None:
        now = time.time()
        self.append(
            {
                "schema": LEDGER_FORMAT,
                "type": "heartbeat",
                "key": key,
                "worker": worker,
                "expires": now + lease_ttl,
                "time": now,
            }
        )

    def record_done(
        self,
        key: str,
        worker: str,
        value: Any,
        wall_time_s: float,
        attempts: int,
    ) -> str:
        """Record a result exactly once; returns what happened.

        ``"done"``: this execution's result is now the point's record.
        ``"verified"``: another worker got there first and the bytes
        match — the duplicate is discarded, idempotency held.
        ``"conflict"``: the bytes differ; the sweep must fail.
        """
        encoded, sha = _encode(value)
        with self._locked():
            self.scan()
            ps = self.state.points.get(key)
            existing = ps.done if ps is not None else None
            if existing is not None:
                theirs = existing.get("sha")
                if theirs is None:
                    theirs = raw_digest(base64.b85decode(existing["result"]))
                outcome = "verified" if theirs == sha else "conflict"
                self._append_locked(
                    [
                        {
                            "schema": LEDGER_FORMAT,
                            "type": outcome,
                            "key": key,
                            "worker": worker,
                            "sha": sha,
                            "expected": theirs,
                        }
                    ]
                )
            else:
                outcome = "done"
                self._append_locked(
                    [
                        {
                            "schema": LEDGER_FORMAT,
                            "type": "done",
                            "key": key,
                            "result": encoded,
                            "sha": sha,
                            "worker": worker,
                            "wall_time_s": wall_time_s,
                            "attempts": attempts,
                        }
                    ]
                )
        self.scan()
        return outcome

    def record_failed(
        self,
        key: str,
        worker: str,
        attempts: int,
        error: BaseException,
        retry_after: float,
    ) -> None:
        self.append(
            {
                "schema": LEDGER_FORMAT,
                "type": "failed",
                "key": key,
                "worker": worker,
                "attempts": attempts,
                "error": f"{type(error).__name__}: {error}",
                "retry_after": retry_after,
                "time": time.time(),
            }
        )
        self.scan()


def ensure_no_conflicts(state: LedgerState) -> None:
    """Raise if any point's re-execution diverged from its first result."""
    for ps in state.points.values():
        if ps.conflict is not None:
            raise FabricError(
                f"point {ps.key[:12]}… was re-executed with a different "
                f"result (sha {ps.conflict.get('sha', '?')[:12]}… vs "
                f"{ps.conflict.get('expected', '?')[:12]}…) — the task is "
                "not a pure function of its item, which breaks the "
                "fabric's idempotent-retry contract"
            )
