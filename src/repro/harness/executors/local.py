"""The in-process pool backend: the supervisor's original executor.

Wraps one :class:`~concurrent.futures.ProcessPoolExecutor` behind the
:class:`~repro.harness.executors.base.Executor` protocol.  The
supervised pool loop (``repro.harness.supervisor._run_pool``) drives
this backend exclusively through ``submit``/``poll``/``respawn``/
``cancel``, so the ledger backends slot into the same driver shape.

One honest limitation is encoded here rather than hidden: when a pool
worker dies, CPython's pool breaks *entirely* — every in-flight future
fails with :class:`BrokenProcessPool`.  ``poll`` translates that into
one ``crash`` event per completed-dead future (those points plausibly
killed the worker and are charged an attempt), one ``lost`` event per
innocent survivor (re-run free of charge), and a ``respawn`` event
after the backend has already rebuilt the pool.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.errors import FaultInjectionError
from repro.harness.executors.base import (
    Executor,
    LivenessReport,
    PointEvent,
    SubmittedPoint,
)


def pool_processes(executor: ProcessPoolExecutor) -> list:
    """Worker processes of a pool, via its private ``_processes`` map.

    CPython offers no public way to enumerate (and therefore terminate)
    a pool's workers, so this reaches into ``_processes`` — but behind
    a guard: if a future CPython renames or retypes the attribute, the
    helper returns an empty list and the caller falls back to a plain
    ``shutdown(wait=False, cancel_futures=True)``, which leaks hung
    workers until process exit but can never crash the drain path.
    """
    processes = getattr(executor, "_processes", None)
    if not processes:
        return []
    try:
        return list(processes.values())
    except (TypeError, AttributeError, RuntimeError):
        return []


def terminate_pool(executor: ProcessPoolExecutor) -> None:
    """Abandon a pool, killing its workers (hung ones included)."""
    executor.shutdown(wait=False, cancel_futures=True)
    for process in pool_processes(executor):
        try:
            process.terminate()
        except (OSError, ValueError, AttributeError):
            pass


class LocalPoolExecutor(Executor):
    """``--executor pool``: worker processes on this machine."""

    name = "pool"

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self._pool = ProcessPoolExecutor(max_workers=workers)
        self._points: dict[Future, SubmittedPoint] = {}

    def submit(self, point: SubmittedPoint) -> Future:
        # Imported here to avoid a module cycle: the supervisor imports
        # this backend at module level.
        from repro.harness.supervisor import _run_point

        future = self._pool.submit(
            _run_point,
            point.task,
            point.item,
            point.fault,
            point.hang_seconds,
            point.checkpoint_path,
        )
        self._points[future] = point
        return future

    def poll(self, timeout: float | None) -> list[PointEvent]:
        if not self._points:
            return []
        done, _ = wait(
            set(self._points), timeout=timeout, return_when=FIRST_COMPLETED
        )
        events: list[PointEvent] = []
        broken = False
        for future in done:
            self._points.pop(future)
            try:
                value = future.result(timeout=0)
            except BrokenProcessPool:
                broken = True
                events.append(
                    PointEvent(
                        kind="crash",
                        handle=future,
                        error=FaultInjectionError(
                            "worker process died mid-point"
                        ),
                    )
                )
            except Exception as error:
                events.append(PointEvent(kind="error", handle=future, error=error))
            else:
                events.append(PointEvent(kind="done", handle=future, value=value))
        if broken:
            # The whole pool is unusable; survivors were not at fault.
            for future in list(self._points):
                events.append(PointEvent(kind="lost", handle=future))
            self.respawn()
            events.append(PointEvent(kind="respawn"))
        return events

    def liveness(self) -> LivenessReport:
        report = LivenessReport()
        for process in pool_processes(self._pool):
            report.alive[str(process.pid)] = process.is_alive()
        return report

    def respawn(self) -> None:
        terminate_pool(self._pool)
        self._points.clear()
        self._pool = ProcessPoolExecutor(max_workers=self.workers)

    def cancel(self, grace: float = 5.0) -> None:
        terminate_pool(self._pool)
        self._points.clear()

    def close(self) -> None:
        # All points done; the workers are idle, so a waiting shutdown
        # is cheap and avoids racing the interpreter's atexit hook for
        # the executor's wakeup pipe.
        self._pool.shutdown(wait=True, cancel_futures=True)
