"""``--executor remote``: workers launched through a command template.

The worker is spawned as a fresh interpreter via a shell-style command
template (default: ``{python} -m repro.harness.executors.worker
--ledger {ledger} --worker-id {worker_id}``), so nothing crosses the
boundary except a path and a name — the exact contract an SSH host
(``ssh host {python} -m …``) or a k8s Job (the same argv in a pod
spec, the ledger on a shared volume) would honour.  This backend is
the local stand-in that keeps that code path continuously exercised.

Worker stdout/stderr go to per-worker ``<ledger>.<worker>.log`` files,
the closest local analog of pod logs.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.harness.executors.base import spawn_command
from repro.harness.executors.fleet import LedgerFleet, WorkerHandle


def _worker_env() -> dict[str, str]:
    """The child environment: ours, plus ``repro`` on the import path.

    A genuinely remote worker would have the package installed; the
    local stand-in may be running from a source tree, so the package's
    parent directory is prepended to ``PYTHONPATH``.
    """
    import repro

    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH", "")
    parts = [package_root] + ([existing] if existing else [])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


class _SubprocessHandle(WorkerHandle):
    def __init__(
        self, worker_id: str, process: subprocess.Popen, log_handle
    ) -> None:
        super().__init__(worker_id, process.pid)
        self.process = process
        self._log = log_handle

    def alive(self) -> bool:
        return self.process.poll() is None

    def terminate(self) -> None:
        self.process.send_signal(signal.SIGTERM)

    def kill(self) -> None:
        self.process.kill()

    def join(self, timeout: float) -> None:
        try:
            self.process.wait(timeout=max(0.0, timeout))
        except subprocess.TimeoutExpired:
            return
        finally:
            if self.process.poll() is not None and not self._log.closed:
                self._log.close()


class RemoteExecutor(LedgerFleet):
    """Command-template worker fleet (the SSH/k8s-shaped code path)."""

    name = "remote"

    def _spawn(self, worker_id: str) -> WorkerHandle:
        argv = spawn_command(
            self.config.worker_command,
            ledger=str(self.ledger_path),
            worker_id=worker_id,
            python=sys.executable,
        )
        log_path = f"{self.ledger_path}.{worker_id}.log"
        log_handle = open(log_path, "ab")
        process = subprocess.Popen(
            argv,
            stdout=log_handle,
            stderr=subprocess.STDOUT,
            stdin=subprocess.DEVNULL,
            env=_worker_env(),
            start_new_session=True,  # SIGINT at the console hits only us
        )
        return _SubprocessHandle(worker_id, process, log_handle)
