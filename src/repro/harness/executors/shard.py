"""``--executor shard``: forked work-stealing workers on this machine.

N independent worker processes — real processes, not pool members —
each run :func:`~repro.harness.executors.worker.work_loop` against the
shared ledger.  There is no in-memory coupling between them: killing
any subset at any instant (the chaos harness does exactly that) loses
only their in-flight leases, which the survivors steal after the TTL.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading

from repro.harness.executors.fleet import LedgerFleet, WorkerHandle


def _shard_main(ledger_path: str, worker_id: str) -> None:
    """Entry point of one forked shard worker."""
    from repro.harness.executors.worker import work_loop

    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    # A forked worker must never bubble KeyboardInterrupt into the
    # parent's traceback machinery; the parent drains via SIGTERM.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    raise SystemExit(work_loop(ledger_path, worker_id, stop=stop))


class _ProcessHandle(WorkerHandle):
    def __init__(self, worker_id: str, process: multiprocessing.Process) -> None:
        super().__init__(worker_id, process.pid or -1)
        self.process = process

    def alive(self) -> bool:
        return self.process.is_alive()

    def terminate(self) -> None:
        self.process.terminate()

    def kill(self) -> None:
        self.process.kill()

    def join(self, timeout: float) -> None:
        self.process.join(timeout)


class ShardExecutor(LedgerFleet):
    """Forked worker fleet coordinating through the shared ledger."""

    name = "shard"

    def _spawn(self, worker_id: str) -> WorkerHandle:
        process = multiprocessing.Process(
            target=_shard_main,
            args=(self.ledger_path, worker_id),
            name=f"repro-fabric-{worker_id}",
            daemon=False,
        )
        process.start()
        return _ProcessHandle(worker_id, process)
