"""Importable sweep tasks for the fabric's chaos harness and demos.

Fabric workers unpickle ``(task, item)`` payloads from the ledger, so
a task must live in an importable module — a function defined in
``__main__`` or a test body pickles by reference to a module the
worker cannot resolve.  These tasks are module-level precisely so the
chaos harness, the CI smoke jobs, and the test suite can drive real
multi-process sweeps through them.

All of them are pure functions of their items (the property the
fabric's idempotent-retry contract requires), except ``poison_point``,
whose entire purpose is to violate liveness and prove quarantine.
"""

from __future__ import annotations

import os
import time


def cosim_mpki_point(item: tuple[str, int, int, int]) -> float:
    """One real co-simulation grid point: (workload, cores, cache, line).

    Runs the full SoftSDV → FSB → Dragonhead pipeline on a synthetic
    guest trace and returns the shared-LLC MPKI — the paper's Figure
    4-6 y-axis.  Deterministic per item, so re-execution after a
    worker death reproduces the result byte-for-byte.
    """
    from repro.cache.emulator import DragonheadConfig
    from repro.core.cosim import CoSimPlatform
    from repro.workloads.registry import get_workload

    name, cores, cache_size, line_size = item
    workload = get_workload(name)
    guest = workload.synthetic_guest(accesses_per_thread=4096)
    platform = CoSimPlatform(
        DragonheadConfig(cache_size=cache_size, line_size=line_size)
    )
    return platform.run(guest, cores).mpki


def model_mpki_point(item: tuple[str, int, int, int]) -> float:
    """One analytic-model grid point (same item shape, milliseconds).

    The cheap stand-in for :func:`cosim_mpki_point` when a test needs
    many points and real execution time would dominate.
    """
    from repro.workloads.profiles import memory_model

    name, threads, cache_size, line_size = item
    return memory_model(name).llc_mpki(cache_size, line_size, threads)


def slow_mpki_point(item: tuple[str, int, int, int]) -> float:
    """A model point padded to ~100 ms of wall time.

    Chaos runs need points that are reliably *in flight* when the
    monkey pulls a trigger; a microsecond task would finish between
    the kill decision and the signal delivery.
    """
    time.sleep(0.1)
    return model_mpki_point(item)


def poison_point(item: object) -> float:
    """A point that kills whatever worker executes it, every time.

    ``os._exit`` (not an exception) models the real failure the
    quarantine exists for: a host that segfaults or is OOM-killed
    mid-point leaves no ``failed`` record, only an expired lease — so
    retries never exhaust and only the dead-holder count can stop it.
    """
    os._exit(66)
