"""The work-stealing worker loop (and its standalone CLI).

One worker is deliberately dumb: it knows a ledger path and its own
name, nothing else.  Policy (lease TTL, retries, backoff, quarantine
threshold, fault plan) arrives through the ledger's ``config`` record,
and work arrives through ``point`` records — so the same loop serves
the forked ``shard`` backend and the command-template ``remote``
backend, and would serve an SSH or k8s worker unchanged.

The loop::

    scan → all points terminal? exit
         → claim the first available point (stealing expired leases,
           quarantining poison) or sleep and rescan
         → run it under a heartbeat thread
         → record done (byte-identity-verified against any racing
           first finisher) or failed (with backoff)

Death-safety: the worker writes nothing except durable ledger appends,
so SIGKILL at *any* instruction loses at most the in-flight attempt —
the lease expires, another worker steals the point, and the content-
keyed result keeps the sweep bit-identical.  SIGTERM requests a drain:
the worker finishes (or abandons, if the parent's grace period runs
out) its current point and claims nothing more.
"""

from __future__ import annotations

import argparse
import os
import signal
import threading
import time

from repro.faults.spec import FaultSpec
from repro.harness.executors.ledger import Claim, FabricLedger

#: Exit code of a worker felled by an injected crash (mirrors the
#: supervisor's pool-worker fault channel).
INJECTED_CRASH_EXIT = 73


class _Heartbeat:
    """Renews one claim's lease from a daemon thread while a task runs."""

    def __init__(
        self,
        ledger: FabricLedger,
        key: str,
        worker: str,
        lease_ttl: float,
        period: float,
    ) -> None:
        self._ledger = ledger
        self._key = key
        self._worker = worker
        self._ttl = lease_ttl
        self._period = max(0.01, period)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _run(self) -> None:
        while not self._stop.wait(self._period):
            try:
                # Append-only, no shared-state scan: safe off-thread.
                self._ledger.heartbeat(self._key, self._worker, self._ttl)
            except OSError:  # pragma: no cover - transient FS trouble
                pass  # a missed beat costs at worst one stolen lease


def _execute(
    ledger: FabricLedger,
    claim: Claim,
    worker: str,
    config: dict,
    spec: FaultSpec | None,
) -> None:
    """Run one claimed point and record its outcome durably."""
    task, item = claim.load()
    if spec is not None and claim.attempt == 1 and not claim.steal:
        # Injected harness faults hit a point's first execution only
        # (same contract as the pool backend) — a stolen point has
        # already been executed once, so it is never re-injected.
        fault = spec.harness_fault(claim.key)
        if fault == "crash":
            os._exit(INJECTED_CRASH_EXIT)
        elif fault == "hang":
            time.sleep(spec.hang_seconds)
    lease_ttl = float(config["lease_ttl"])
    heartbeat = _Heartbeat(
        ledger,
        claim.key,
        worker,
        lease_ttl,
        float(config.get("heartbeat_every", lease_ttl / 3.0)),
    )
    begin = time.perf_counter()
    try:
        with heartbeat:
            if claim.checkpoint is not None:
                value = task(item, checkpoint_path=claim.checkpoint)
            else:
                value = task(item)
    except Exception as error:
        backoff = min(
            float(config.get("backoff_cap", 8.0)),
            float(config.get("backoff_base", 0.25)) * (2 ** (claim.attempt - 1)),
        )
        ledger.record_failed(
            claim.key, worker, claim.attempt, error, time.time() + backoff
        )
    else:
        ledger.record_done(
            claim.key,
            worker,
            value,
            wall_time_s=time.perf_counter() - begin,
            attempts=claim.attempt,
        )


def work_loop(
    ledger_path: str,
    worker_id: str,
    poll_interval: float | None = None,
    stop: threading.Event | None = None,
) -> int:
    """Steal and run points until every manifested point is terminal.

    Returns 0 on a clean drain.  ``stop`` (set by the SIGTERM handler)
    ends the loop at the next claim boundary.
    """
    ledger = FabricLedger(ledger_path, resume=True, create=False)
    ledger.scan()
    while not ledger.state.config:
        if stop is not None and stop.is_set():
            return 0
        time.sleep(0.02)
        ledger.scan()
    config = ledger.state.config
    retries = int(config.get("retries", 2))
    quarantine_after = int(config.get("quarantine_after", 3))
    lease_ttl = float(config["lease_ttl"])
    interval = (
        poll_interval
        if poll_interval is not None
        else float(config.get("poll_interval", 0.05))
    )
    spec = (
        FaultSpec.parse(config["inject"]) if config.get("inject") else None
    )
    while stop is None or not stop.is_set():
        ledger.scan()
        if ledger.state.points and ledger.state.all_terminal(retries):
            return 0
        claim = ledger.try_claim(
            worker_id, lease_ttl, retries, quarantine_after
        )
        if claim is None:
            time.sleep(interval)
            continue
        _execute(ledger, claim, worker_id, config, spec)
    return 0


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.harness.executors.worker``: one fabric worker."""
    parser = argparse.ArgumentParser(
        prog="repro-fabric-worker",
        description="Run one work-stealing sweep-fabric worker against a "
        "shared ledger file.",
    )
    parser.add_argument("--ledger", required=True, help="shared ledger path")
    parser.add_argument(
        "--worker-id", required=True, help="this worker's unique identity"
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=None,
        help="ledger re-scan period in seconds (default: from the "
        "ledger's config record)",
    )
    args = parser.parse_args(argv)
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    return work_loop(
        args.ledger, args.worker_id, poll_interval=args.poll_interval, stop=stop
    )


if __name__ == "__main__":
    raise SystemExit(main())
