"""CSV export of harness results.

Every exhibit can be written to CSV so downstream analysis (spreadsheet,
pandas, gnuplot) can consume the reproduction's numbers without parsing
ASCII tables.  ``repro-runall --csv DIR`` writes the full set.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path

from repro.harness import fig4, fig5, fig6, fig7, fig8, projection, table2
from repro.harness.figures import SweepFigure
from repro.units import format_size


def write_sweep_csv(figure: SweepFigure, path: str | os.PathLike) -> None:
    """One row per workload, one column per swept axis value.

    Sampled figures append a ``sampled`` flag column plus one error
    column per axis value *after* the value columns, so consumers that
    index columns positionally keep working on exact exports.
    """
    axes = [format_size(v) for v in figure.axis_values]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        header = ["workload", *axes]
        if figure.sampled:
            header += ["sampled", *[f"err:{axis}" for axis in axes]]
        writer.writerow(header)
        for name, values in figure.series.items():
            row = [name, *[f"{v:.6g}" for v in values]]
            if figure.sampled:
                bars = (figure.errors or {}).get(name, (0.0,) * len(values))
                row += ["1", *[f"{e:.6g}" for e in bars]]
            writer.writerow(row)


def write_table2_csv(path: str | os.PathLike) -> None:
    """Write the Table 2 paper-versus-model comparison as CSV."""
    rows = table2.generate()
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "workload", "ipc_paper", "ipc_model", "instructions_billions",
                "mem_pct", "mem_read_pct", "dl1_accesses_pki",
                "dl1_mpki_paper", "dl1_mpki_model",
                "dl2_mpki_paper", "dl2_mpki_model",
            ]
        )
        for row in rows:
            writer.writerow(
                [
                    row.workload, row.ipc_paper, f"{row.ipc_model:.4f}",
                    row.instructions_billions, row.mem_pct_paper,
                    row.mem_read_pct_paper, f"{row.dl1_accesses_model:.1f}",
                    row.dl1_mpki_paper, f"{row.dl1_mpki_model:.4f}",
                    row.dl2_mpki_paper, f"{row.dl2_mpki_model:.4f}",
                ]
            )


def write_fig8_csv(path: str | os.PathLike) -> None:
    """Write the Figure 8 prefetch gains as CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["workload", "serial_gain_pct", "parallel_gain_pct", "coverage", "headroom_16t"]
        )
        for row in fig8.generate():
            writer.writerow(
                [
                    row.workload,
                    f"{row.serial.speedup_percent:.3f}",
                    f"{row.parallel.speedup_percent:.3f}",
                    f"{row.serial.coverage_memory:.4f}",
                    f"{row.parallel.headroom:.4f}",
                ]
            )


def write_projection_csv(path: str | os.PathLike) -> None:
    """Write the 128-core projection (with verdicts) as CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["workload", "category", "footprint_128c_bytes", "sram_mpki",
             "dram_mpki", "scaling_ratio", "stall_saving_pct", "dram_candidate"]
        )
        for row in projection.generate():
            writer.writerow(
                [
                    row.workload, row.category, int(row.footprint_128),
                    f"{row.dram.sram_mpki:.4f}", f"{row.dram.dram_mpki:.4f}",
                    f"{row.dram.scaling_ratio:.4f}",
                    f"{row.dram.stall_saving_percent:.2f}",
                    row.dram_candidate,
                ]
            )


def export_all(directory: str | os.PathLike) -> list[Path]:
    """Write every exhibit's CSV into ``directory``; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    table2_path = directory / "table2.csv"
    write_table2_csv(table2_path)
    written.append(table2_path)

    for module, name in ((fig4, "fig4"), (fig5, "fig5"), (fig6, "fig6"), (fig7, "fig7")):
        path = directory / f"{name}.csv"
        write_sweep_csv(module.generate(), path)
        written.append(path)

    fig8_path = directory / "fig8.csv"
    write_fig8_csv(fig8_path)
    written.append(fig8_path)

    projection_path = directory / "projection.csv"
    write_projection_csv(projection_path)
    written.append(projection_path)
    return written
