"""Figure 5: LLC MPKI versus cache size on the MCMP.

Regenerates the paper's Figure 5 series: shared-LLC misses per 1000
instructions for all eight workloads, swept over 4 MB-256 MB at a 64 B
line size, on the MCMP configuration.
"""

from __future__ import annotations

from repro.core.experiment import MCMP
from repro.harness.figures import SweepFigure, cache_sweep_figure
from repro.units import format_size


def generate(jobs: int | None = None) -> SweepFigure:
    """Compute the Figure 5 data (optionally across worker processes)."""
    return cache_sweep_figure(MCMP, 5, jobs=jobs)


def main(jobs: int | None = None) -> None:
    """Print the Figure 5 series and working-set knees."""
    figure = generate(jobs=jobs)
    print(figure.render())
    print()
    for name, knee in figure.knees.items():
        location = format_size(knee) if knee else "none <= 256MB (flat)"
        print(f"  working-set knee for {name}: {location}")


if __name__ == "__main__":
    main()
