"""Figure 6: LLC MPKI versus cache size on the LCMP.

Regenerates the paper's Figure 6 series: shared-LLC misses per 1000
instructions for all eight workloads, swept over 4 MB-256 MB at a 64 B
line size, on the LCMP configuration.
"""

from __future__ import annotations

from repro.core.experiment import LCMP
from repro.harness.figures import SweepFigure, cache_sweep_figure
from repro.units import format_size


def generate(jobs: int | None = None) -> SweepFigure:
    """Compute the Figure 6 data (optionally across worker processes)."""
    return cache_sweep_figure(LCMP, 6, jobs=jobs)


def main(jobs: int | None = None) -> None:
    """Print the Figure 6 series and working-set knees."""
    figure = generate(jobs=jobs)
    print(figure.render())
    print()
    for name, knee in figure.knees.items():
        location = format_size(knee) if knee else "none <= 256MB (flat)"
        print(f"  working-set knee for {name}: {location}")


if __name__ == "__main__":
    main()
