"""Figure 7: line-size sensitivity on the LCMP with a 32 MB LLC.

Regenerates the paper's Figure 7: LLC MPKI for line sizes from 64 B to
4 KB.  The paper's reading — SHOT, MDS, SNP, and SVM-RFE get near-linear
reductions up to 256 B with diminishing returns beyond, other workloads
improve modestly, and 256 B captures most of the benefit — is printed as
per-workload 64 B→256 B reduction factors.
"""

from __future__ import annotations

from repro.core.experiment import LCMP
from repro.harness.figures import SweepFigure, line_sweep_figure
from repro.units import MB, PAPER_LINE_SWEEP


def generate(jobs: int | None = None) -> SweepFigure:
    """Compute the Figure 7 data (optionally across worker processes)."""
    return line_sweep_figure(LCMP, 32 * MB, jobs=jobs)


def reduction_factors(figure: SweepFigure) -> dict[str, float]:
    """Per-workload MPKI reduction from 64 B to 256 B lines."""
    index_256 = PAPER_LINE_SWEEP.index(256)
    factors = {}
    for name, values in figure.series.items():
        baseline = values[0]
        at_256 = values[index_256]
        factors[name] = baseline / at_256 if at_256 > 1e-12 else float("inf")
    return factors


def main(jobs: int | None = None) -> None:
    """Print the Figure 7 series and reduction factors."""
    figure = generate(jobs=jobs)
    print(figure.render())
    print()
    print("MPKI reduction factor, 64B -> 256B lines:")
    for name, factor in sorted(reduction_factors(figure).items(), key=lambda kv: -kv[1]):
        print(f"  {name:9} {factor:5.2f}x")


if __name__ == "__main__":
    main()
