"""Figure 8: performance gain from hardware prefetching.

Regenerates the paper's Figure 8 bars: percentage speedup with the
stride prefetcher enabled, for each workload in serial and 16-thread
mode, from the coverage/bandwidth/CPI model in
:mod:`repro.perf.prefetch_study`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.report import render_table
from repro.perf.prefetch_study import PrefetchGain, prefetch_study


@dataclass(frozen=True)
class Fig8Row:
    workload: str
    serial: PrefetchGain
    parallel: PrefetchGain

    @property
    def parallel_wins(self) -> bool:
        return self.parallel.speedup_percent > self.serial.speedup_percent


def generate(jobs: int | None = None) -> list[Fig8Row]:
    """Compute the Figure 8 data (serial + 16-thread gains)."""
    return [
        Fig8Row(workload=name, serial=serial, parallel=parallel)
        for name, (serial, parallel) in prefetch_study(
            threads_parallel=16, jobs=jobs
        ).items()
    ]


def main(jobs: int | None = None) -> None:
    """Print the Figure 8 prefetch-gain table."""
    rows = generate(jobs=jobs)
    print(
        render_table(
            ["Workload", "Serial gain", "16-thread gain", "Coverage", "16T headroom", "Bigger winner"],
            [
                (
                    r.workload,
                    f"{r.serial.speedup_percent:5.1f}%",
                    f"{r.parallel.speedup_percent:5.1f}%",
                    f"{r.serial.coverage_memory:4.2f}",
                    f"{r.parallel.headroom:4.2f}",
                    "parallel" if r.parallel_wins else "serial",
                )
                for r in rows
            ],
            title="Figure 8: performance gain of hardware prefetch",
        )
    )


if __name__ == "__main__":
    main()
