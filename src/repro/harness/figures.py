"""Shared machinery for the Figure 4-7 sweeps."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.experiment import CMPConfig, working_set_knee
from repro.harness.parallel import parallel_map
from repro.harness.report import render_series_table
from repro.units import MB, PAPER_CACHE_SWEEP, PAPER_LINE_SWEEP, format_size
from repro.workloads.profiles import WORKLOAD_NAMES, memory_model


@dataclass(frozen=True)
class SweepFigure:
    """One figure's data: MPKI series per workload over a swept axis."""

    title: str
    axis_label: str
    axis_values: tuple[int, ...]
    series: dict[str, tuple[float, ...]]
    knees: dict[str, int | None]
    #: True when the series came from sampled simulation — rendering and
    #: CSV export label the exhibit so estimates are never mistaken for
    #: exact measurements.
    sampled: bool = False
    #: Per-series error bars (same shape as ``series``) for sampled data.
    errors: dict[str, tuple[float, ...]] | None = None

    def render(self) -> str:
        return render_series_table(
            self.axis_label,
            [format_size(v) for v in self.axis_values],
            {name: list(values) for name, values in self.series.items()},
            title=self.title,
            errors=(
                {name: list(values) for name, values in self.errors.items()}
                if self.errors
                else None
            ),
            sampled=self.sampled,
        )


def _mpki_point(point: tuple[str, int, int, int]) -> float:
    """One (workload × geometry) grid point; module-level so it pickles."""
    name, threads, cache_size, line_size = point
    return memory_model(name).llc_mpki(cache_size, line_size, threads)


def _sweep_series(
    axis_values: tuple[int, ...],
    points: list[tuple[str, int, int, int]],
    jobs: int | None,
) -> dict[str, tuple[float, ...]]:
    """Fan the grid out and regroup the flat results by workload."""
    values = parallel_map(_mpki_point, points, jobs=jobs)
    width = len(axis_values)
    return {
        name: tuple(values[i * width : (i + 1) * width])
        for i, name in enumerate(WORKLOAD_NAMES)
    }


def cache_sweep_figure(
    cmp_config: CMPConfig, figure_number: int, jobs: int | None = None
) -> SweepFigure:
    """Figures 4-6: LLC MPKI versus cache size on one CMP."""
    points = [
        (name, cmp_config.threads, size, 64)
        for name in WORKLOAD_NAMES
        for size in PAPER_CACHE_SWEEP
    ]
    series = _sweep_series(PAPER_CACHE_SWEEP, points, jobs)
    knees = {
        name: working_set_knee(list(zip(PAPER_CACHE_SWEEP, values)))
        for name, values in series.items()
    }
    return SweepFigure(
        title=(
            f"Figure {figure_number}: LLC misses per 1000 instructions on "
            f"{cmp_config.name} ({cmp_config.cores} cores), 64B lines"
        ),
        axis_label="LLC size",
        axis_values=PAPER_CACHE_SWEEP,
        series=series,
        knees=knees,
    )


def line_sweep_figure(
    cmp_config: CMPConfig, cache_size: int = 32 * MB, jobs: int | None = None
) -> SweepFigure:
    """Figure 7: LLC MPKI versus line size at a 32 MB LLC on the LCMP."""
    points = [
        (name, cmp_config.threads, cache_size, line)
        for name in WORKLOAD_NAMES
        for line in PAPER_LINE_SWEEP
    ]
    series = _sweep_series(PAPER_LINE_SWEEP, points, jobs)
    return SweepFigure(
        title=(
            f"Figure 7: line-size sensitivity on {cmp_config.name} with a "
            f"{format_size(cache_size)} LLC"
        ),
        axis_label="line size",
        axis_values=PAPER_LINE_SWEEP,
        series=series,
        knees={},
    )
