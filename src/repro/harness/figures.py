"""Shared machinery for the Figure 4-7 sweeps."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.experiment import CMPConfig, cache_size_sweep, line_size_sweep, working_set_knee
from repro.harness.report import render_series_table
from repro.units import MB, PAPER_CACHE_SWEEP, PAPER_LINE_SWEEP, format_size
from repro.workloads.profiles import WORKLOAD_NAMES, memory_model


@dataclass(frozen=True)
class SweepFigure:
    """One figure's data: MPKI series per workload over a swept axis."""

    title: str
    axis_label: str
    axis_values: tuple[int, ...]
    series: dict[str, tuple[float, ...]]
    knees: dict[str, int | None]

    def render(self) -> str:
        return render_series_table(
            self.axis_label,
            [format_size(v) for v in self.axis_values],
            {name: list(values) for name, values in self.series.items()},
            title=self.title,
        )


def cache_sweep_figure(cmp_config: CMPConfig, figure_number: int) -> SweepFigure:
    """Figures 4-6: LLC MPKI versus cache size on one CMP."""
    series: dict[str, tuple[float, ...]] = {}
    knees: dict[str, int | None] = {}
    for name in WORKLOAD_NAMES:
        model = memory_model(name)
        sweep = cache_size_sweep(model, cmp_config, PAPER_CACHE_SWEEP)
        series[name] = tuple(mpki for _, mpki in sweep)
        knees[name] = working_set_knee(sweep)
    return SweepFigure(
        title=(
            f"Figure {figure_number}: LLC misses per 1000 instructions on "
            f"{cmp_config.name} ({cmp_config.cores} cores), 64B lines"
        ),
        axis_label="LLC size",
        axis_values=PAPER_CACHE_SWEEP,
        series=series,
        knees=knees,
    )


def line_sweep_figure(cmp_config: CMPConfig, cache_size: int = 32 * MB) -> SweepFigure:
    """Figure 7: LLC MPKI versus line size at a 32 MB LLC on the LCMP."""
    series: dict[str, tuple[float, ...]] = {}
    for name in WORKLOAD_NAMES:
        model = memory_model(name)
        sweep = line_size_sweep(model, cmp_config, cache_size, PAPER_LINE_SWEEP)
        series[name] = tuple(mpki for _, mpki in sweep)
    return SweepFigure(
        title=(
            f"Figure 7: line-size sensitivity on {cmp_config.name} with a "
            f"{format_size(cache_size)} LLC"
        ),
        axis_label="line size",
        axis_values=PAPER_LINE_SWEEP,
        series=series,
        knees={},
    )
