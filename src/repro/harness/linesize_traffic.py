"""Line-size versus bandwidth: why 256 bytes is the sweet spot.

Figure 7 reads line-size benefit off miss counts alone; a platform
architect also pays for the bytes each miss moves.  This study computes
both for every workload on the LCMP at a 32 MB LLC:

* MPKI(L) — from the calibrated models (Figure 7's series);
* traffic per 1000 instructions — ``MPKI(L) x L`` bytes.

For the streaming workloads MPKI falls ~linearly up to 256 B, so
traffic is ~flat; beyond 256 B MPKI flattens and traffic balloons —
quantifying the paper's "a 256 byte cache line provides the maximum
benefit" as a bandwidth statement, not just a miss-count one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.report import render_table
from repro.units import MB, PAPER_LINE_SWEEP
from repro.workloads.profiles import WORKLOAD_NAMES, memory_model


@dataclass(frozen=True)
class TrafficRow:
    workload: str
    line_size: int
    mpki: float

    @property
    def traffic_bytes_per_kiloinst(self) -> float:
        return self.mpki * self.line_size


def generate(cache_size: int = 32 * MB, threads: int = 32) -> list[TrafficRow]:
    """MPKI and traffic across the Figure 7 line sweep."""
    rows: list[TrafficRow] = []
    for name in WORKLOAD_NAMES:
        model = memory_model(name)
        for line_size in PAPER_LINE_SWEEP:
            rows.append(
                TrafficRow(
                    workload=name,
                    line_size=line_size,
                    mpki=model.llc_mpki(cache_size, line_size, threads),
                )
            )
    return rows


def best_line_size(rows: list[TrafficRow], workload: str, slack: float = 1.25) -> int:
    """Largest line whose traffic stays within ``slack`` of the minimum.

    The architect's reading: take miss-count benefit as long as the
    bandwidth bill stays near its floor.
    """
    candidates = [r for r in rows if r.workload == workload]
    floor = min(r.traffic_bytes_per_kiloinst for r in candidates)
    acceptable = [
        r.line_size
        for r in candidates
        if r.traffic_bytes_per_kiloinst <= slack * floor
    ]
    return max(acceptable)


def main() -> None:
    """Print the traffic-versus-line-size table and per-workload picks."""
    rows = generate()
    table = []
    for name in WORKLOAD_NAMES:
        workload_rows = {r.line_size: r for r in rows if r.workload == name}
        table.append(
            (
                name,
                *(
                    f"{workload_rows[l].traffic_bytes_per_kiloinst:.0f}"
                    for l in PAPER_LINE_SWEEP
                ),
                f"{best_line_size(rows, name)}B",
            )
        )
    print(
        render_table(
            ["Workload", *[f"{l}B" for l in PAPER_LINE_SWEEP], "pick"],
            table,
            title=(
                "Miss traffic (bytes per 1000 instructions) vs line size, "
                "LCMP 32MB LLC"
            ),
        )
    )
    print()
    pick = platform_line_size(rows)
    print(
        f"Platform pick (largest line within 1.5x of the aggregate traffic "
        f"floor): {pick}B — the paper's conclusion that 'a 256-byte line "
        f"size is sufficient for large DRAM caches', derived as a bandwidth "
        f"statement."
    )


def platform_line_size(rows: list[TrafficRow], slack: float = 1.5) -> int:
    """One line size for the whole platform: the largest whose aggregate
    traffic (all eight workloads summed) stays within ``slack`` of the
    aggregate floor."""
    totals = {
        line_size: sum(
            r.traffic_bytes_per_kiloinst for r in rows if r.line_size == line_size
        )
        for line_size in PAPER_LINE_SWEEP
    }
    floor = min(totals.values())
    return max(l for l, t in totals.items() if t <= slack * floor)


if __name__ == "__main__":
    main()
