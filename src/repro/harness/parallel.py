"""Deterministic process-parallel execution of sweep grids.

Every figure harness is a map over an embarrassingly parallel grid —
(workload × cache size), (workload × line size), (workload × CMP) —
whose points never share state.  This module fans such grids out over
a :class:`~concurrent.futures.ProcessPoolExecutor` while keeping the
one property the harness must not lose: **the output is byte-identical
to a serial run**.  That holds because

* ``ProcessPoolExecutor.map`` returns results in submission order, no
  matter which worker finishes first, and
* every task is a pure function of its (picklable) argument tuple, so
  a point computes the same value in any process.

``repro-runall --jobs N`` threads the worker count down through every
exhibit's ``main(jobs=...)``; ``jobs=None`` (the default everywhere)
means serial, which keeps single-exhibit programmatic use and the test
suite free of process-pool overhead, and ``--jobs 0`` asks for one
worker per CPU.

Failure handling: a worker exception is wrapped in
:class:`~repro.errors.SweepPointError` carrying the offending grid
point, so a 100-point sweep never fails anonymously.  When a
:func:`~repro.harness.supervisor.supervise` context is active (as under
``repro-runall``), the map is executed by the fault-tolerant
supervisor instead — timeouts, retries, crash recovery, journaling —
with identical ordering and, on a fault-free run, identical results.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, TypeVar

from repro.errors import SweepPointError

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """One worker per CPU (what ``--jobs 0`` resolves to)."""
    return os.cpu_count() or 1


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: None → 1 (serial), 0 → all CPUs."""
    if jobs is None:
        return 1
    if jobs <= 0:
        return default_jobs()
    return jobs


def parallel_map(
    task: Callable[[T], R], items: Iterable[T], jobs: int | None = None
) -> list[R]:
    """Map ``task`` over ``items``, optionally across worker processes.

    Results always come back in item order (the determinism contract);
    with fewer than two effective workers, or fewer than two items, the
    map runs inline with no pool.  ``task`` must be a module-level
    function and every item picklable, because both cross a process
    boundary when ``jobs`` asks for real parallelism.

    A failing point raises :class:`SweepPointError` naming the item;
    under an active supervisor context the supervised executor runs the
    map instead (same ordering, same fault-free results).
    """
    from repro.harness.supervisor import active_context, supervised_map

    work = list(items)
    context = active_context()
    if context is not None:
        return supervised_map(task, work, jobs=jobs, context=context)
    workers = min(resolve_jobs(jobs), len(work))
    if workers <= 1:
        results: list[R] = []
        for item in work:
            try:
                results.append(task(item))
            except Exception as error:
                raise SweepPointError(item, error) from error
        return results
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(task, item) for item in work]
        results = []
        for item, future in zip(work, futures):
            try:
                results.append(future.result())
            except Exception as error:
                raise SweepPointError(item, error) from error
        return results
