"""The 128-core projection (Section 4.3's forward-looking discussion).

The paper extrapolates from the 8/16/32-core measurements: "we believe
that the cache performance of these workloads [PLSA, MDS, SVM-RFE, SNP]
will not scale on a large number of cores, even on 128 cores.  For
these workloads, a small LLC, such as 8MB, will deliver a good memory
subsystem performance. ... [FIMI and RSEARCH's] working set will exceed
32MB on 128 cores.  Thus, a large DRAM cache can provide good memory
subsystem performance. ... [SHOT and VIEWTYPE] are certain to be good
candidates for large DRAM caches" — in total, "5 of the 8 workloads
will benefit from a large DRAM cache when scaled to a 128-core CMP."

This harness runs that projection through the models: working sets at
128 cores, the MPKI curves, and the SRAM-versus-DRAM-cache AMAT verdict
per workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.experiment import XLCMP
from repro.harness.parallel import parallel_map
from repro.harness.report import render_table
from repro.perf.dramcache import DramCacheResult, evaluate_dram_cache
from repro.units import format_size
from repro.workloads.profiles import CATEGORIES, WORKLOAD_NAMES, memory_model

#: The paper's projection: these five workloads benefit from a large
#: DRAM cache at 128 cores (category B + C plus MDS's huge matrix).
PAPER_DRAM_BENEFICIARIES = ("FIMI", "RSEARCH", "SHOT", "VIEWTYPE", "MDS")


@dataclass(frozen=True)
class ProjectionRow:
    workload: str
    category: str
    footprint_128: float
    dram: DramCacheResult

    @property
    def dram_candidate(self) -> bool:
        return self.dram.benefits


def _projection_row(task: tuple[str, int]) -> ProjectionRow:
    """One workload's 128-core projection (picklable task)."""
    name, threads = task
    return ProjectionRow(
        workload=name,
        category=CATEGORIES[name],
        footprint_128=memory_model(name).footprint_bytes(threads),
        dram=evaluate_dram_cache(name, threads),
    )


def generate(threads: int = 128, jobs: int | None = None) -> list[ProjectionRow]:
    """Project every workload to ``threads`` cores."""
    return parallel_map(
        _projection_row, [(name, threads) for name in WORKLOAD_NAMES], jobs=jobs
    )


def main(jobs: int | None = None) -> None:
    """Print the 128-core projection table and verdict."""
    rows = generate(jobs=jobs)
    print(
        render_table(
            [
                "Workload",
                "Category",
                "Footprint @128c",
                "MPKI @8MB SRAM",
                "MPKI @128MB DRAM$",
                "WS scaling 1c->128c",
                "Stall saved",
                "Verdict",
            ],
            [
                (
                    r.workload,
                    r.category,
                    format_size(int(r.footprint_128)),
                    f"{r.dram.sram_mpki:.2f}",
                    f"{r.dram.dram_mpki:.2f}",
                    f"{r.dram.scaling_ratio:.2f}x",
                    f"{r.dram.stall_saving_percent:.0f}%",
                    "DRAM cache" if r.dram_candidate else "8MB SRAM ok",
                )
                for r in rows
            ],
            title=f"{XLCMP.name}: Section 4.3's 128-core projection",
        )
    )
    beneficiaries = [r.workload for r in rows if r.dram_candidate]
    print()
    print(
        f"DRAM-cache beneficiaries: {len(beneficiaries)} of 8 "
        f"({', '.join(beneficiaries)}) — paper projects 5 of 8."
    )


if __name__ == "__main__":
    main()
