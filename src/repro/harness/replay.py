"""Single-pass multi-config replay engine for the co-simulation path.

``CoSimPlatform.run`` executes the whole SoftSDV→DEX→FSB→Dragonhead
pipeline for one cache configuration.  A design-space sweep (Figures
4-6: 4 MB-256 MB) therefore re-runs trace generation, DEX scheduling,
and protocol encoding once *per configuration* — faithful to the
hardware, where reprogramming the FPGAs forces a fresh run, but pure
waste in software: everything above the bus is independent of the
emulated cache geometry.

This engine splits the pipeline at the architectural boundary the AF
FPGA defines.  :func:`capture_replay_log` runs the simulator side
*once* per (workload, cores, quantum, seed) with a recording snooper on
the bus, capturing exactly what survives the address filter: the
decoded, window-gated, core-tagged transaction stream, as compact
columnar numpy arrays plus an event table (per-slice core tags and the
instruction/cycle progress counters that drive window sampling).
:func:`replay` then re-drives a fresh :class:`DragonheadEmulator`
through its public snoop interface — protocol messages re-encoded, data
chunks re-issued — so per-config statistics are *identical* to a fresh
``CoSimPlatform.run``, per-core splits and 500 µs window samples
included (``tests/test_harness_replay.py`` proves field-for-field
equality).

:func:`replay_sweep` is the user-facing entry: capture (or load from
the content-addressed :class:`~repro.trace.cache.TraceCache`) once,
then fan the log out to N configurations, optionally across worker
processes via :func:`~repro.harness.parallel.parallel_map` — the log
travels as an on-disk path and is memory-mapped by each worker, not
pickled per task.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.audit import AUDIT_FULL, AUDIT_OFF, OracleTap, resolve_audit_mode, run_audit
from repro.audit.oracle import SAMPLE_EVERY
from repro.cache.emulator import (
    BANK_SHIFT,
    NUM_BANKS,
    AddressFilter,
    DragonheadConfig,
    DragonheadEmulator,
)
from repro.checkpoint import DeferredInterrupt, read_snapshot, write_snapshot
from repro.core.cosim import CoSimResult
from repro.core.fsb import FrontSideBus, FSBTransaction
from repro.core.softsdv import GuestWorkload, SoftSDV
from repro.errors import AuditError, CheckpointError, TraceError
from repro.faults.report import collect_run_degradation, merge_records
from repro.faults.spec import FaultSpec
from repro.telemetry import runtime as telemetry
from repro.protocol import Message, MessageCodec, MessageKind
from repro.trace.cache import TraceCache, cache_key, load_validated_entry
from repro.trace.record import AccessKind, TraceChunk
from repro.harness.parallel import parallel_map, resolve_jobs

#: Event-table opcodes (first column of :attr:`ReplayLog.events`).
EVENT_DATA = 0  #: (EVENT_DATA, end_offset, core): data up to end_offset
EVENT_PROGRESS = 1  #: (EVENT_PROGRESS, instructions, cycles): counters

#: Array names used when a log is stored in a :class:`TraceCache`.
_ARRAY_NAMES = ("addresses", "kinds", "pcs", "events")

#: Snapshot interval (replayed data transactions) used when a supervised
#: sweep hands a worker a checkpoint path without an explicit interval.
DEFAULT_CHECKPOINT_EVERY = 1 << 20

#: Environment override for that interval — lets CI (and impatient
#: operators) force frequent snapshots on short runs without a per-task
#: parameter.
CHECKPOINT_EVERY_ENV = "REPRO_CHECKPOINT_EVERY"


def _checkpoint_interval() -> int:
    value = os.environ.get(CHECKPOINT_EVERY_ENV)
    return int(value) if value else DEFAULT_CHECKPOINT_EVERY


@dataclass(frozen=True)
class ReplayLog:
    """One captured pass of the simulator side of the platform.

    The columnar arrays hold every data transaction that survived the
    address filter, in bus order; ``events`` interleaves data segments
    (constant core id, no progress message inside) with the progress
    counters exactly as they appeared on the bus, which is all the
    emulator's sampler needs to reproduce its window series.
    """

    workload: str
    cores: int
    quantum: int
    boot_noise_accesses: int
    addresses: np.ndarray  # uint64 [N] byte addresses
    kinds: np.ndarray  # uint8  [N] AccessKind values
    pcs: np.ndarray  # uint64 [N] program counters
    events: np.ndarray  # uint64 [E, 3] (opcode, a, b) rows
    filtered: int  # transactions outside the emulation window
    instructions: int  # final retired-instruction counter

    @property
    def accesses(self) -> int:
        """In-window data transactions captured."""
        return len(self.addresses)

    def core_tags(self) -> np.ndarray:
        """Expand the segment table into a per-access core-id array."""
        cores = np.zeros(self.accesses, dtype=np.uint16)
        if len(self.events):
            data = self.events[self.events[:, 0] == EVENT_DATA]
            if len(data):
                ends = data[:, 1].astype(np.int64)
                lengths = np.diff(ends, prepend=0)
                cores[: int(ends[-1])] = np.repeat(
                    data[:, 2].astype(np.uint16), lengths
                )
        return cores

    def progress_table(self) -> np.ndarray:
        """Progress reports as ``(offset, instructions, cycles)`` rows.

        The batched replay path's input: for each PROGRESS event, the
        number of data accesses that preceded it (a running maximum of
        the DATA segment end offsets) plus its cumulative counters.
        """
        events = self.events
        if not len(events):
            return np.empty((0, 3), dtype=np.int64)
        opcodes = events[:, 0]
        progress_mask = opcodes == EVENT_PROGRESS
        ends = np.where(progress_mask, 0, events[:, 1]).astype(np.int64)
        offsets = np.maximum.accumulate(ends)
        table = np.empty((int(np.count_nonzero(progress_mask)), 3), dtype=np.int64)
        table[:, 0] = offsets[progress_mask]
        table[:, 1] = events[progress_mask, 1].astype(np.int64)
        table[:, 2] = events[progress_mask, 2].astype(np.int64)
        return table

    def to_chunk(self) -> TraceChunk:
        """The whole captured stream as one core-tagged trace chunk.

        For consumers outside the emulator — prefetch studies, reuse
        analysis — that want the AF-filtered traffic without replaying
        the protocol.
        """
        return TraceChunk(
            np.asarray(self.addresses),
            np.asarray(self.kinds),
            self.core_tags(),
            np.asarray(self.pcs),
        )

    # -- trace-cache serialization ------------------------------------

    def to_payload(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Split into the (meta, arrays) form a TraceCache stores."""
        meta = {
            "workload": self.workload,
            "cores": self.cores,
            "quantum": self.quantum,
            "boot_noise_accesses": self.boot_noise_accesses,
            "filtered": self.filtered,
            "instructions": self.instructions,
        }
        arrays = {
            "addresses": self.addresses,
            "kinds": self.kinds,
            "pcs": self.pcs,
            "events": self.events,
        }
        return meta, arrays

    @classmethod
    def from_payload(
        cls, meta: Mapping[str, object], arrays: Mapping[str, np.ndarray]
    ) -> "ReplayLog":
        missing = [name for name in _ARRAY_NAMES if name not in arrays]
        if missing:
            raise TraceError(f"replay-log payload missing arrays: {missing}")
        return cls(
            workload=str(meta["workload"]),
            cores=int(meta["cores"]),
            quantum=int(meta["quantum"]),
            boot_noise_accesses=int(meta["boot_noise_accesses"]),
            addresses=arrays["addresses"],
            kinds=arrays["kinds"],
            pcs=arrays["pcs"],
            events=arrays["events"],
            filtered=int(meta["filtered"]),
            instructions=int(meta["instructions"]),
        )


class ReplayLogRecorder:
    """A passive bus snooper that captures the AF-filtered stream.

    Mirrors the AF FPGA's front half — message decode, window gating,
    core tagging — but instead of driving cache banks it appends the
    surviving transactions to columnar buffers.  Attach to a
    :class:`~repro.core.fsb.FrontSideBus` alongside (or instead of) an
    emulator.
    """

    def __init__(self) -> None:
        self._af = AddressFilter()
        self._addresses: list[np.ndarray] = []
        self._kinds: list[np.ndarray] = []
        self._pcs: list[np.ndarray] = []
        self._events: list[tuple[int, int, int]] = []
        self._count = 0

    # -- BusSnooper interface -----------------------------------------

    def snoop(self, transaction: FSBTransaction) -> None:
        address = transaction.address
        if MessageCodec.is_message(address):
            message = self._af.handle_message(address)
            if message is not None and message.kind is MessageKind.CYCLES_COMPLETED:
                self._events.append(
                    (
                        EVENT_PROGRESS,
                        self._af.instructions_retired,
                        self._af.cycles_completed,
                    )
                )
            return
        if not self._af.emulating:
            self._af.filtered_transactions += 1
            return
        self._append(
            np.array([address], dtype=np.uint64),
            np.array([int(transaction.kind)], dtype=np.uint8),
            np.array([transaction.pc], dtype=np.uint64),
        )

    def snoop_chunk(self, chunk: TraceChunk) -> None:
        if not self._af.emulating:
            self._af.filtered_transactions += len(chunk)
            return
        if len(chunk):
            self._append(chunk.addresses, chunk.kinds, chunk.pcs)

    def _append(
        self, addresses: np.ndarray, kinds: np.ndarray, pcs: np.ndarray
    ) -> None:
        core = self._af.current_core
        self._addresses.append(addresses)
        self._kinds.append(kinds)
        self._pcs.append(pcs)
        self._count += len(addresses)
        # Extend the open data segment when nothing (core switch or
        # progress message) separates it from this batch.
        if self._events and self._events[-1][0] == EVENT_DATA and self._events[-1][2] == core:
            self._events[-1] = (EVENT_DATA, self._count, core)
        else:
            self._events.append((EVENT_DATA, self._count, core))

    # -- extraction ---------------------------------------------------

    def finish(
        self, workload: str, cores: int, quantum: int, boot_noise_accesses: int
    ) -> ReplayLog:
        """Freeze the captured buffers into an immutable log."""

        def concat(parts: list[np.ndarray], dtype) -> np.ndarray:
            if not parts:
                return np.empty(0, dtype=dtype)
            return np.concatenate(parts).astype(dtype, copy=False)

        events = (
            np.array(self._events, dtype=np.uint64)
            if self._events
            else np.empty((0, 3), dtype=np.uint64)
        )
        return ReplayLog(
            workload=workload,
            cores=cores,
            quantum=quantum,
            boot_noise_accesses=boot_noise_accesses,
            addresses=concat(self._addresses, np.uint64),
            kinds=concat(self._kinds, np.uint8),
            pcs=concat(self._pcs, np.uint64),
            events=events,
            filtered=self._af.filtered_transactions,
            instructions=self._af.instructions_retired,
        )


def capture_replay_log(
    workload: GuestWorkload,
    cores: int,
    quantum: int = 4096,
    boot_noise_accesses: int = 8192,
) -> ReplayLog:
    """Run the simulator side once and capture the replayable stream.

    This is the single generation pass a whole sweep shares: workload
    trace production, DEX scheduling, and protocol encoding all happen
    here, exactly as ``CoSimPlatform`` would drive them — just with a
    recorder on the bus instead of an emulator.
    """
    bus = FrontSideBus()
    recorder = ReplayLogRecorder()
    bus.attach(recorder)
    softsdv = SoftSDV(bus, quantum=quantum, boot_noise_accesses=boot_noise_accesses)
    softsdv.run_workload(workload, cores)
    return recorder.finish(
        workload=workload.name,
        cores=cores,
        quantum=quantum,
        boot_noise_accesses=boot_noise_accesses,
    )


# -- replaying one configuration --------------------------------------


def _issue_message(port, message: Message) -> None:
    """Re-encode a protocol message onto a snoop port."""
    for address in MessageCodec.encode(message):
        port.snoop(FSBTransaction(address=address, kind=AccessKind.WRITE))


def replay_into(log: ReplayLog, port, on_event=None, resume=None) -> None:
    """Drive a snoop port with a captured log, through its public face.

    ``port`` is anything with the BusSnooper interface — usually a
    :class:`DragonheadEmulator`, optionally behind a
    :class:`~repro.faults.injector.FaultInjector`.  The protocol
    messages are re-encoded and re-decoded, so the AF's session checks,
    counter monotonicity guards, and window sampling behave exactly as
    on a live bus.

    Args:
        on_event: called after each event row with the replay position
            ``{"event_index", "start", "current_core"}`` — every event
            boundary is a consistent checkpoint point, since all state
            transitions live in the snooped emulator.
        resume: a position dict from a checkpoint.  The session opener
            (filtered-counter restore + START message) is skipped — the
            AF state it would have produced is restored separately —
            and replay continues from the recorded event.

    A bare strict :class:`DragonheadEmulator` with no event observer and
    no resume point takes the batched fast path: the whole session runs
    as one :meth:`~DragonheadEmulator.emulate_stream` call (vectorized
    bank routing, one batch probe per bank, window aggregation by
    ``searchsorted``), which is bit-identical to the per-event loop —
    the differential suite in ``tests/test_harness_replay.py`` holds
    the two paths equal field for field.  Wrapped ports (fault
    injectors), lenient emulators, observers, and resumed runs keep the
    per-event loop: their semantics depend on seeing each message.
    """
    if (
        on_event is None
        and resume is None
        and isinstance(port, DragonheadEmulator)
        and port.strict
    ):
        port.emulate_stream(
            log.to_chunk(), log.progress_table(), filtered=log.filtered
        )
        return
    addresses = log.addresses
    kinds = log.kinds
    pcs = log.pcs
    if resume is None:
        # Out-of-window traffic never reaches the banks; only its count
        # is architecturally visible, so restore the counter instead of
        # replaying thousands of discarded noise transactions.  The
        # counter lives on the emulator's AF, behind whatever wraps it.
        af_owner = getattr(port, "downstream", port)
        af_owner.af.filtered_transactions += log.filtered
        _issue_message(port, Message(MessageKind.START_EMULATION))
        first_event = 0
        start = 0
        current_core: int | None = None
    else:
        first_event = int(resume["event_index"])
        start = int(resume["start"])
        core_state = resume["current_core"]
        current_core = None if core_state is None else int(core_state)
    events = log.events
    for event_index in range(first_event, len(events)):
        opcode, a, b = events[event_index]
        if int(opcode) == EVENT_DATA:
            end, core = int(a), int(b)
            if core != current_core:
                _issue_message(port, Message(MessageKind.CORE_ID, core))
                current_core = core
            port.snoop_chunk(
                TraceChunk(addresses[start:end], kinds[start:end], core, pcs[start:end])
            )
            start = end
        else:
            _issue_message(port, Message(MessageKind.INSTRUCTIONS_RETIRED, int(a)))
            _issue_message(port, Message(MessageKind.CYCLES_COMPLETED, int(b)))
        if on_event is not None:
            on_event(
                {
                    "event_index": event_index + 1,
                    "start": start,
                    "current_core": current_core,
                }
            )
    _issue_message(port, Message(MessageKind.STOP_EMULATION))


def _replay_identity(
    log: ReplayLog, config: DragonheadConfig, lenient: bool, audit_mode: str
) -> dict:
    """What a replay checkpoint must match to be resumable.

    The log's shape counters are a cheap fingerprint: resuming against
    a different captured log with the same workload label would change
    at least one of them.
    """
    return {
        "kind": "replay",
        "workload": log.workload,
        "cores": log.cores,
        "quantum": log.quantum,
        "accesses": log.accesses,
        "instructions": log.instructions,
        "filtered": log.filtered,
        "events": len(log.events),
        "config": repr(config),
        "lenient": lenient,
        "audit": audit_mode,
    }


def _scheduler_cycles(log: ReplayLog) -> int:
    """The simulation-domain cycle total: the last progress event's."""
    cycles = 0
    for opcode, _a, b in log.events:
        if int(opcode) == EVENT_PROGRESS:
            cycles = int(b)
    return cycles


def _attach_audit_oracle(emulator: DragonheadEmulator, mode: str) -> None:
    """Hook the differential LRU oracle (LRU configurations only)."""
    if mode == AUDIT_OFF or emulator.config.policy.lower() != "lru":
        return
    bank_config = emulator.config.bank_config(0)
    emulator.attach_oracle(
        OracleTap(
            num_sets=bank_config.num_sets,
            associativity=bank_config.associativity,
            num_banks=NUM_BANKS,
            bank_shift=BANK_SHIFT,
            every=1 if mode == AUDIT_FULL else SAMPLE_EVERY,
        )
    )


def replay(
    log: ReplayLog,
    config: DragonheadConfig,
    spec: FaultSpec | None = None,
    lenient: bool = False,
    audit: str | None = None,
    checkpoint_every: int | None = None,
    checkpoint_path: str | None = None,
    resume_from: str | None = None,
) -> CoSimResult:
    """One configuration's worth of a sweep: fresh emulator, one pass.

    ``lenient`` puts the emulator in resync mode; ``spec`` interposes a
    :class:`~repro.faults.injector.FaultInjector` between the replayed
    stream and the emulator's snoop port, keyed to the grid point so
    every (workload, cores, config) gets its own deterministic fault
    stream regardless of worker count or replay order.  ``audit`` and
    the checkpoint knobs mirror :meth:`~repro.core.cosim.CoSimPlatform.
    run`: the resumed replay is bit-identical to an uninterrupted one,
    and the audit report equals the fresh run's.
    """
    audit_mode = resolve_audit_mode(audit)
    emulator = DragonheadEmulator(config, strict=not lenient)
    _attach_audit_oracle(emulator, audit_mode)
    port = emulator
    injector = None
    if spec is not None and spec.touches_bus:
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(
            emulator,
            spec,
            point=(log.workload, log.cores, config.cache_size, config.line_size),
        )
        port = injector
    if checkpoint_path is None:
        checkpoint_path = resume_from
    checkpointing = checkpoint_every is not None and checkpoint_path is not None
    if checkpoint_every is not None and checkpoint_every <= 0:
        raise CheckpointError(
            f"checkpoint_every must be positive, got {checkpoint_every}"
        )
    if checkpointing and injector is not None:
        raise CheckpointError(
            "checkpointing is not supported with bus fault injection: the "
            "injector's decision stream is positional and would diverge on "
            "resume"
        )
    identity = _replay_identity(log, config, lenient, audit_mode)
    resume_position = None
    if resume_from is not None and os.path.exists(resume_from):
        state = read_snapshot(resume_from, expect_identity=identity)
        emulator.load_state_dict(state["emulator"])
        resume_position = state["replay"]
    if checkpointing:
        guard: DeferredInterrupt | contextlib.AbstractContextManager = (
            DeferredInterrupt()
        )
    else:
        guard = contextlib.nullcontext()
    with guard as interrupt, telemetry.span("replay.point"):
        telemetry.counter("repro_replay_points_total").inc()
        if checkpointing:
            last_snapshot = (
                0 if resume_position is None else int(resume_position["start"])
            )

            def on_event(position: dict) -> None:
                nonlocal last_snapshot
                due = position["start"] - last_snapshot >= checkpoint_every
                if due or interrupt.pending:
                    write_snapshot(
                        checkpoint_path,
                        {"replay": position, "emulator": emulator.state_dict()},
                        identity,
                    )
                    last_snapshot = position["start"]
                interrupt.deliver()

            replay_into(log, port, on_event=on_event, resume=resume_position)
        else:
            replay_into(log, port, resume=resume_position)
    if injector is not None:
        injector.flush()
    performance = emulator.read_performance_data()
    degradation = collect_run_degradation(injector, performance)
    audit_report = None
    if audit_mode != AUDIT_OFF:
        audit_report = run_audit(
            emulator,
            performance,
            mode=audit_mode,
            expected_instructions=log.instructions,
            expected_cycles=_scheduler_cycles(log),
        )
        if not audit_report.ok:
            if not lenient:
                raise AuditError(audit_report)
            degradation = merge_records(
                degradation, audit_report.degradation_records()
            )
    if checkpointing:
        try:
            os.unlink(checkpoint_path)
        except OSError:
            pass
    return CoSimResult(
        workload=log.workload,
        cores=log.cores,
        performance=performance,
        instructions=log.instructions,
        accesses=performance.stats.accesses,
        filtered=performance.filtered_transactions,
        degradation=degradation,
        audit=audit_report,
    )


# -- trace-cache integration ------------------------------------------


def log_cache_key(
    workload: str,
    cores: int,
    quantum: int,
    boot_noise_accesses: int,
    extra: Mapping[str, object] | None = None,
) -> str:
    """Content address of a captured log's full identity.

    ``extra`` carries whatever parameterizes trace generation beyond
    the platform knobs — source kind, per-thread access count, footprint
    scale, seed — so two guests that would generate different traffic
    never share an entry.
    """
    fields: dict[str, object] = {
        "kind": "replay-log",
        "workload": workload,
        "cores": cores,
        "quantum": quantum,
        "boot_noise_accesses": boot_noise_accesses,
    }
    for name, value in (extra or {}).items():
        fields[f"x:{name}"] = value
    return cache_key(fields)


def load_or_capture(
    workload: GuestWorkload,
    cores: int,
    quantum: int = 4096,
    boot_noise_accesses: int = 8192,
    trace_cache: TraceCache | None = None,
    key_extra: Mapping[str, object] | None = None,
) -> tuple[ReplayLog, str | None]:
    """Fetch a captured log from the cache, generating only on miss.

    Returns ``(log, entry_dir)``; ``entry_dir`` is the on-disk home of
    the log when a cache is in use (for zero-copy process fan-out), or
    None when uncached.  On a hit, ``workload.thread_streams`` is never
    called — generation is skipped entirely, observable through the
    cache's ``stats.hits`` counter.
    """
    with telemetry.span("capture"):
        if trace_cache is None:
            return (
                capture_replay_log(workload, cores, quantum, boot_noise_accesses),
                None,
            )
        key = log_cache_key(
            workload.name, cores, quantum, boot_noise_accesses, key_extra
        )
        payload = trace_cache.load(key)
        if payload is not None:
            return ReplayLog.from_payload(*payload), str(trace_cache.entry_dir(key))
        log = capture_replay_log(workload, cores, quantum, boot_noise_accesses)
        entry = trace_cache.store(key, *log.to_payload())
        # store() returns None when the cache has latched off (the
        # governor's final ENOSPC fallback): the run continues with the
        # freshly captured in-memory log, just without a disk home.
        return log, None if entry is None else str(entry)


# -- multi-config fan-out ---------------------------------------------


@dataclass(frozen=True)
class _LogHandle:
    """Picklable reference to a log: inline arrays or an on-disk entry."""

    log: ReplayLog | None = None
    entry_dir: str | None = None

    def resolve(self) -> ReplayLog:
        if self.log is not None:
            return self.log
        # Full validation before memory-mapping — manifest self-CRC,
        # then per-array checksums — so a worker that loses a race with
        # a concurrent quarantine fails loudly instead of replaying a
        # damaged log.
        meta, arrays = load_validated_entry(self.entry_dir)
        return ReplayLog.from_payload(meta, arrays)


def _replay_task(
    task: tuple[_LogHandle, DragonheadConfig, FaultSpec | None, bool, str | None],
    checkpoint_path: str | None = None,
) -> CoSimResult:
    """One (log, config) replay — module-level so it crosses processes.

    ``checkpoint_path`` arrives from the sweep supervisor (see
    ``supports_checkpoint`` below): the point snapshots there as it
    runs and resumes from it after a timeout, crash, or SIGKILL.
    """
    handle, config, spec, lenient, audit = task
    # Bus fault injection and checkpointing are mutually exclusive (the
    # injector's decision stream is positional); a fault-injected sweep
    # under a checkpointing supervisor simply runs its points unresumed.
    checkpointable = checkpoint_path is not None and (
        spec is None or not spec.touches_bus
    )
    return replay(
        handle.resolve(),
        config,
        spec=spec,
        lenient=lenient,
        audit=audit,
        checkpoint_every=_checkpoint_interval() if checkpointable else None,
        checkpoint_path=checkpoint_path if checkpointable else None,
        resume_from=checkpoint_path if checkpointable else None,
    )


#: Tells the supervisor this task accepts a per-point checkpoint path.
#: A function attribute survives pickling-by-reference into workers.
_replay_task.supports_checkpoint = True  # type: ignore[attr-defined]


def replay_map(
    log: ReplayLog,
    configs: Sequence[DragonheadConfig],
    jobs: int | None = None,
    entry_dir: str | None = None,
    spec: FaultSpec | None = None,
    lenient: bool = False,
    audit: str | None = None,
) -> list[CoSimResult]:
    """Fan one captured log out to every configuration.

    With ``jobs`` > 1 the configurations split across worker processes;
    when the log lives in a trace cache (``entry_dir``), workers
    memory-map it from disk instead of receiving pickled copies, so the
    log exists once no matter how wide the fan-out.  A log that is
    *not* cache-backed gets spilled into a temporary content-addressed
    cache entry first, so every fan-out rides the shared-memory
    transport: workers receive the entry key and memmap the arrays,
    never an in-band pickled copy of the trace.  ``spec`` and
    ``lenient`` ride along to every point (the injector re-seeds itself
    per grid point, so fan-out width never changes the fault stream);
    ``audit`` audits every point's result.
    """
    configs = list(configs)
    audit_mode = resolve_audit_mode(audit)
    from repro.harness.supervisor import active_context

    with telemetry.span("replay"):
        # With no supervisor installed, a serial sweep skips the map
        # machinery entirely; under supervision even a serial sweep
        # routes through the supervised map so journaling and retries
        # apply.
        if active_context() is None and (
            resolve_jobs(jobs) <= 1 or len(configs) < 2
        ):
            return [
                replay(log, config, spec=spec, lenient=lenient, audit=audit_mode)
                for config in configs
            ]
        spill_dir: str | None = None
        try:
            if entry_dir is None:
                import tempfile

                spill_dir = tempfile.mkdtemp(prefix="repro-log-spill-")
                key = log_cache_key(
                    log.workload,
                    log.cores,
                    log.quantum,
                    log.boot_noise_accesses,
                    extra={"transport": "spill", "accesses": log.accesses},
                )
                meta, arrays = log.to_payload()
                entry = TraceCache(spill_dir).store(key, meta, arrays)
                if entry is None:
                    # Spill refused (disk full even for the temp cache):
                    # fall back to pickling the log in-band.  Slower,
                    # correct, and already recorded as a degradation by
                    # the cache's ENOSPC handling.
                    handle = _LogHandle(log=log)
                    return parallel_map(
                        _replay_task,
                        [
                            (handle, config, spec, lenient, audit_mode)
                            for config in configs
                        ],
                        jobs=jobs,
                    )
                entry_dir = str(entry)
                telemetry.counter("repro_replay_log_spills_total").inc()
            handle = _LogHandle(entry_dir=entry_dir)
            return parallel_map(
                _replay_task,
                [(handle, config, spec, lenient, audit_mode) for config in configs],
                jobs=jobs,
            )
        finally:
            if spill_dir is not None:
                import shutil

                shutil.rmtree(spill_dir, ignore_errors=True)


def replay_sweep(
    workload: GuestWorkload,
    cores: int,
    configs: Sequence[DragonheadConfig],
    quantum: int = 4096,
    boot_noise_accesses: int = 8192,
    jobs: int | None = None,
    trace_cache: TraceCache | None = None,
    key_extra: Mapping[str, object] | None = None,
    spec: FaultSpec | None = None,
    lenient: bool = False,
    audit: str | None = None,
) -> list[CoSimResult]:
    """The engine's front door: one generation pass, N configurations.

    Results are index-aligned with ``configs`` and field-for-field
    identical to ``CoSimPlatform(config, quantum, boot_noise).run(...)``
    per configuration.
    """
    log, entry_dir = load_or_capture(
        workload,
        cores,
        quantum=quantum,
        boot_noise_accesses=boot_noise_accesses,
        trace_cache=trace_cache,
        key_extra=key_extra,
    )
    return replay_map(
        log,
        configs,
        jobs=jobs,
        entry_dir=entry_dir,
        spec=spec,
        lenient=lenient,
        audit=audit,
    )


def size_sweep_configs(
    cache_sizes: Sequence[int],
    line_size: int = 64,
    associativity: int = 16,
    policy: str = "lru",
) -> list[DragonheadConfig]:
    """Dragonhead configurations for a cache-size sweep."""
    return [
        DragonheadConfig(
            cache_size=size,
            line_size=line_size,
            associativity=associativity,
            policy=policy,
        )
        for size in cache_sizes
    ]
