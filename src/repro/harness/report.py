"""ASCII rendering for harness output.

Tables are rendered with aligned columns; figure data (one series per
workload over a swept axis) is rendered as a compact grid plus an
optional text sparkline so curve shapes are visible in a terminal.
"""

from __future__ import annotations

from typing import Sequence

_SPARK = "▁▂▃▄▅▆▇█"


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render rows as an aligned ASCII table."""
    text_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(" | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A unicode sparkline of a series (empty input → empty string)."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    if high - low < 1e-12:
        return _SPARK[0] * len(values)
    scale = (len(_SPARK) - 1) / (high - low)
    return "".join(_SPARK[int((v - low) * scale)] for v in values)


def render_degradation_report(
    records: Sequence[object], title: str = "Degradation report"
) -> str:
    """Render injected-fault / recovered-anomaly records as a table.

    ``records`` are :class:`~repro.faults.report.DegradationRecord`
    instances (already merged/sorted by the producer).  Empty input
    renders a single "none" line, so callers can print unconditionally
    under ``--inject`` / ``--lenient`` and a clean run stays obviously
    clean.
    """
    if not records:
        return f"{title}: none"
    rows = [
        [record.kind, record.source, record.count, record.detail]
        for record in records
    ]
    return render_table(["kind", "source", "count", "detail"], rows, title=title)


def render_audit_report(
    results: Sequence[object], title: str = "Audit report"
) -> str:
    """Summarize the end-of-run invariant audits of a result list.

    ``results`` are :class:`~repro.core.cosim.CoSimResult` instances;
    those without an audit report (auditing off, or a degraded point
    replaced by a failure value) are counted but not tabulated.  Clean
    audits collapse to one line per mode; violations get a table row
    per failed check so the operator sees what broke where.
    """
    results = [r for r in results if r is not None]
    audited = [r for r in results if getattr(r, "audit", None) is not None]
    if not audited:
        return f"{title}: no runs were audited"
    lines = [title + ":"]
    checks = sum(len(r.audit.checks) for r in audited)
    failed = [(r, check) for r in audited for check in r.audit.violations]
    modes = sorted({r.audit.mode for r in audited})
    lines.append(
        f"  {len(audited)}/{len(results)} runs audited "
        f"(mode {', '.join(modes)}), {checks} checks, "
        f"{len(failed)} violation(s)"
    )
    if failed:
        rows = [
            [
                getattr(result, "workload", "?"),
                getattr(result, "cores", "?"),
                check.name,
                check.detail,
            ]
            for result, check in failed
        ]
        lines.append(render_table(["workload", "cores", "check", "detail"], rows))
    return "\n".join(lines)


def render_series_table(
    axis_label: str,
    axis_values: Sequence[str],
    series: dict[str, Sequence[float]],
    title: str = "",
    value_format: str = "{:.2f}",
    errors: dict[str, Sequence[float]] | None = None,
    sampled: bool = False,
) -> str:
    """Render one row per series over a swept axis, with sparklines.

    ``errors`` attaches an error bar to each value (rendered ``v±e``);
    ``sampled`` suffixes the title with ``[sampled]`` so estimates from
    sampled simulation are never mistaken for exact measurements.
    """
    if sampled and title:
        title = f"{title} [sampled]"
    elif sampled:
        title = "[sampled]"
    headers = [axis_label, *axis_values, "shape"]
    rows = []
    for name, values in series.items():
        bars = (errors or {}).get(name)
        if bars is not None:
            cells = [
                f"{value_format.format(v)}±{value_format.format(e)}"
                for v, e in zip(values, bars)
            ]
        else:
            cells = [value_format.format(v) for v in values]
        rows.append([name, *cells, sparkline(list(values))])
    return render_table(headers, rows, title=title)
