"""Run every experiment and print the full paper-versus-measured report.

``repro-runall`` regenerates Table 1, Table 2, and Figures 4-8 in
sequence — the exact content EXPERIMENTS.md records.  ``--extended``
adds the repository's own studies (the 128-core projection, the model
ablations, the bandwidth demand table); ``--csv DIR`` also writes every
exhibit as CSV for downstream analysis; ``--jobs N`` fans the sweep
grids out over N worker processes (``0`` = one per CPU) with output
byte-identical to the serial run — see :mod:`repro.harness.parallel`.
"""

from __future__ import annotations

import argparse
import inspect

from repro.harness import (
    ablations,
    bandwidth_study,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    projection,
    table1,
    table2,
)

PAPER_EXHIBITS = (table1, table2, fig4, fig5, fig6, fig7, fig8)
EXTENDED_EXHIBITS = (projection, ablations, bandwidth_study)


def main(argv: list[str] | None = None) -> int:
    """Regenerate every exhibit (optionally extended studies + CSV)."""
    parser = argparse.ArgumentParser(
        prog="repro-runall", description="Regenerate the paper's evaluation."
    )
    parser.add_argument(
        "--extended",
        action="store_true",
        help="also run the projection, ablation, and bandwidth studies",
    )
    parser.add_argument(
        "--csv", metavar="DIR", help="write every exhibit as CSV into DIR"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the sweep grids (default: serial; "
        "0 means one per CPU); output is byte-identical to a serial run",
    )
    parser.add_argument(
        "--trace-cache",
        metavar="DIR",
        default=None,
        help="reuse captured co-simulation traces across runs via the "
        "content-addressed cache in DIR (default: $REPRO_TRACE_CACHE)",
    )
    args = parser.parse_args(argv)
    from repro.trace.cache import resolve_trace_cache

    trace_cache = resolve_trace_cache(args.trace_cache)
    exhibits = PAPER_EXHIBITS + (EXTENDED_EXHIBITS if args.extended else ())
    for exhibit in exhibits:
        kwargs: dict[str, object] = {"jobs": args.jobs}
        # Exact-path exhibits accept the trace cache; the closed-form
        # model exhibits have nothing to cache and don't take the knob.
        if "trace_cache" in inspect.signature(exhibit.main).parameters:
            kwargs["trace_cache"] = trace_cache
        exhibit.main(**kwargs)
        print()
    if args.csv:
        from repro.harness.export import export_all

        for path in export_all(args.csv):
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
