"""Run every experiment and print the full paper-versus-measured report.

``repro-runall`` regenerates Table 1, Table 2, and Figures 4-8 in
sequence — the exact content EXPERIMENTS.md records.  ``--extended``
adds the repository's own studies (the 128-core projection, the model
ablations, the bandwidth demand table); ``--csv DIR`` also writes every
exhibit as CSV for downstream analysis; ``--jobs N`` fans the sweep
grids out over N worker processes (``0`` = one per CPU) with output
byte-identical to the serial run — see :mod:`repro.harness.parallel`.

Every sweep grid runs under the fault-tolerant supervisor
(:mod:`repro.harness.supervisor`): ``--timeout``/``--retries`` bound
misbehaving points, ``--journal``/``--resume`` checkpoint completed
points so a killed run restarts where it stopped, ``--inject`` plants
deterministic harness faults (worker crash/hang) to exercise the
recovery paths, and ``--lenient`` degrades gracefully — a point or
exhibit that exhausts its retries is reported and skipped instead of
aborting the whole evaluation.  Ctrl-C drains to a partial-results
report and exits 130.
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys

from repro.audit import AUDIT_ENV, AUDIT_MODES
from repro.errors import DeadlineExpired, SweepInterrupted, SweepPointError
from repro.exit_codes import (
    EXIT_DEADLINE,
    EXIT_DEGRADED,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_SWEEP,
)
from repro.faults.spec import parse_fault_spec
from repro.governor.budget import active_governor, govern
from repro.harness import (
    ablations,
    bandwidth_study,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    projection,
    table1,
    table2,
)
from repro.harness.executors.base import EXECUTOR_NAMES
from repro.harness.supervisor import SupervisorPolicy, SweepJournal, supervise
from repro.telemetry import profile as profiling
from repro.telemetry import runtime as telemetry
from repro.telemetry.sinks import write_prometheus

PAPER_EXHIBITS = (table1, table2, fig4, fig5, fig6, fig7, fig8)
EXTENDED_EXHIBITS = (projection, ablations, bandwidth_study)


def main(argv: list[str] | None = None) -> int:
    """Regenerate every exhibit (optionally extended studies + CSV)."""
    parser = argparse.ArgumentParser(
        prog="repro-runall", description="Regenerate the paper's evaluation."
    )
    parser.add_argument(
        "--extended",
        action="store_true",
        help="also run the projection, ablation, and bandwidth studies",
    )
    parser.add_argument(
        "--csv", metavar="DIR", help="write every exhibit as CSV into DIR"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the sweep grids (default: serial; "
        "0 means one per CPU); output is byte-identical to a serial run",
    )
    parser.add_argument(
        "--executor",
        choices=list(EXECUTOR_NAMES),
        default="pool",
        help="where sweep points execute: 'pool' (in-process worker "
        "pool), 'shard' (work-stealing worker processes over a lease "
        "ledger), or 'remote' (ledger workers via a command template); "
        "ledger backends survive SIGKILLed workers (default: pool)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        metavar="N",
        help="worker count for the ledger executors (default: 2)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="seconds a fabric worker's claim on a point stays "
        "exclusive without a heartbeat (default: 30)",
    )
    parser.add_argument(
        "--trace-cache",
        metavar="DIR",
        default=None,
        help="reuse captured co-simulation traces across runs via the "
        "content-addressed cache in DIR (default: $REPRO_TRACE_CACHE)",
    )
    parser.add_argument(
        "--sample",
        metavar="INTERVAL[,MAXK]",
        default=None,
        help="run the co-simulated exhibits through sampled simulation "
        "(representative intervals only); their tables are labelled "
        "[sampled] and carry error bars",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--strict",
        dest="lenient",
        action="store_false",
        help="abort the whole run on the first failing point (default)",
    )
    mode.add_argument(
        "--lenient",
        dest="lenient",
        action="store_true",
        help="report and skip an exhibit whose sweep exhausts its "
        "retries, instead of aborting the run",
    )
    parser.set_defaults(lenient=False)
    parser.add_argument(
        "--inject",
        metavar="FAULTSPEC",
        default=None,
        help="deterministic harness fault injection for the sweeps, "
        "e.g. 'seed=7,crash=0.2,hang=0.1,hang-seconds=2'",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-point wall-clock budget for sweep workers "
        "(needs --jobs > 1 to be enforceable)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="re-runs granted to a failing sweep point (default: 2)",
    )
    parser.add_argument(
        "--journal",
        metavar="FILE",
        default=None,
        help="checkpoint completed sweep points to FILE "
        "(default with --resume: .repro-runall.jsonl)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip points already checkpointed in the journal",
    )
    parser.add_argument(
        "--audit",
        choices=sorted(AUDIT_MODES),
        default=None,
        help="end-of-run invariant audit for every co-simulated point "
        "(delivered via $REPRO_AUDIT so the exhibit harnesses need no "
        "new parameters; default: $REPRO_AUDIT, else off)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="snapshot each sweep point's mid-run state under DIR so "
        "killed or timed-out points resume where they stopped",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="run-level wall-clock budget across all exhibits; expiry "
        "drains the current sweep like Ctrl-C (journal keeps completed "
        "points, --resume finishes byte-identically) and exits 124",
    )
    parser.add_argument(
        "--disk-quota",
        metavar="SIZE",
        default=None,
        help="bytes the trace cache (plus --checkpoint-dir) may occupy, "
        "e.g. 512MB; over quota the least-recently-used cached traces "
        "are evicted",
    )
    parser.add_argument(
        "--mem-budget",
        metavar="SIZE",
        default=None,
        help="process maxrss high-water mark, e.g. 2GB; once breached, "
        "sweeps clamp to serial execution and the breach is recorded",
    )
    parser.add_argument(
        "--fail-on-degraded",
        action="store_true",
        help="exit nonzero if any exhibit or sweep point degraded "
        "instead of completing cleanly",
    )
    parser.add_argument(
        "--telemetry",
        nargs="?",
        const=True,
        default=False,
        metavar="EVENTS.jsonl",
        help="enable the telemetry subsystem; with a path, also log "
        "every metric and span to EVENTS.jsonl (off by default — "
        "telemetry-off output is byte-identical)",
    )
    parser.add_argument(
        "--metrics-file",
        metavar="FILE",
        default=None,
        help="write the final registry state to FILE in Prometheus "
        "text exposition format (implies --telemetry)",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const=True,
        default=False,
        metavar="FILE",
        help="print the end-of-run profile (per-exhibit wall time); "
        "with a path, also write it as JSON (implies --telemetry)",
    )
    args = parser.parse_args(argv)
    telemetry_on = (
        bool(args.telemetry) or bool(args.metrics_file) or bool(args.profile)
    )
    if telemetry_on:
        telemetry.configure(
            events_path=args.telemetry if isinstance(args.telemetry, str) else None
        )
    from repro.harness.cli import build_budget

    try:
        with govern(build_budget(args)):
            return _run(args)
    finally:
        if telemetry_on:
            telemetry.shutdown()


def _run(args: argparse.Namespace) -> int:
    """The evaluation itself, with telemetry configured (or disabled)."""
    from repro.trace.cache import resolve_trace_cache
    from repro.units import parse_size

    trace_cache = resolve_trace_cache(
        args.trace_cache,
        disk_quota=parse_size(args.disk_quota) if args.disk_quota else None,
    )
    from repro.harness.cli import startup_gc

    startup_gc(args, trace_cache)
    fault_spec = parse_fault_spec(args.inject)
    sample_spec = None
    if args.sample is not None:
        from repro.simpoint import parse_sample_spec

        sample_spec = parse_sample_spec(args.sample)
    journal_path = args.journal or (".repro-runall.jsonl" if args.resume else None)
    args.journal = journal_path
    from repro.harness.cli import build_fabric_config

    fabric = build_fabric_config(args)
    # Fabric mode: the ledger at --journal is the journal (same v3
    # format); opening it twice would race the workers' appends.
    journal = (
        SweepJournal(journal_path, resume=args.resume)
        if journal_path and fabric is None
        else None
    )
    policy = SupervisorPolicy(timeout=args.timeout, retries=args.retries)
    exhibits = PAPER_EXHIBITS + (EXTENDED_EXHIBITS if args.extended else ())
    degraded: list[str] = []
    if args.audit is not None:
        # The exhibit harnesses take no audit parameter; the environment
        # knob reaches every replay()/run() call, worker processes
        # included, without touching their signatures.
        os.environ[AUDIT_ENV] = args.audit
    try:
        with telemetry.span("run"), supervise(
            policy,
            journal=journal,
            fault_spec=fault_spec,
            checkpoint_dir=args.checkpoint_dir,
            fabric=fabric,
        ) as context:
            for exhibit in exhibits:
                name = exhibit.__name__.rsplit(".", 1)[-1]
                kwargs: dict[str, object] = {"jobs": args.jobs}
                # Exact-path exhibits accept the trace cache; the
                # closed-form model exhibits have nothing to cache and
                # don't take the knob.
                parameters = inspect.signature(exhibit.main).parameters
                if "trace_cache" in parameters:
                    kwargs["trace_cache"] = trace_cache
                # Sampled simulation only reaches the exhibits that
                # co-simulate; the closed-form model exhibits have no
                # stream to sample and don't take the knob.
                if sample_spec is not None and "sample" in parameters:
                    kwargs["sample"] = sample_spec
                try:
                    with telemetry.span(name):
                        exhibit.main(**kwargs)
                except SweepPointError as error:
                    if not args.lenient:
                        raise
                    degraded.append(name)
                    print(f"[degraded] exhibit {name} skipped: {error}")
                print()
    except DeadlineExpired as expired:
        # Before SweepInterrupted (its parent class): identical drain,
        # timeout(1)'s exit code.
        print(f"deadline: {expired}", file=sys.stderr)
        return EXIT_DEADLINE
    except SweepInterrupted as interrupted:
        print(f"interrupted: {interrupted}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except SweepPointError as error:
        # Strict mode: a point out of retries fails the run with its
        # own documented exit, distinct from argument errors (2) and
        # harness crashes (1).
        print(f"sweep point failed: {error}", file=sys.stderr)
        return EXIT_SWEEP
    finally:
        if journal is not None:
            journal.close()
    if context.counts:
        print(f"supervisor events: {context.describe()}")
    governor = active_governor()
    if governor is not None and governor.counts:
        print(f"governor events: {governor.describe()}")
    if degraded:
        print(f"degraded exhibits: {', '.join(degraded)}")
    if args.csv:
        from repro.harness.export import export_all

        for path in export_all(args.csv):
            print(f"wrote {path}")
    _emit_telemetry(args)
    if args.fail_on_degraded and (
        degraded
        or context.counts.get("point-degraded")
        or (governor is not None and governor.records)
    ):
        print("failing: degraded exhibits or points present (--fail-on-degraded)")
        return EXIT_DEGRADED
    return EXIT_OK


def _emit_telemetry(args: argparse.Namespace) -> None:
    """Profile + metrics file, after the root span has closed.

    ``repro-runall``'s exhibits print their own tables rather than
    returning result objects, so the profile's result list is empty:
    its value here is the per-exhibit wall-time breakdown and the
    registry dump, not result reconciliation.
    """
    if not telemetry.enabled():
        return
    registry = telemetry.registry()
    if args.profile:
        profile = profiling.build_profile([], telemetry.tracker(), registry)
        print()
        print(profiling.render_profile(profile))
        if isinstance(args.profile, str):
            profiling.write_profile(profile, args.profile)
    if args.metrics_file:
        write_prometheus(registry, args.metrics_file)


if __name__ == "__main__":
    raise SystemExit(main())
