"""Sharing behaviour of the real kernels under MESI coherence.

Section 4.3 classifies the workloads by how threads share data —
category A (one shared primary structure), B (shared + small private),
C (mostly private).  The memory models encode that taxonomy by
construction; this study *measures* it, independently, from the
instrumented kernels: each workload's per-thread traces run through the
MESI-coherent private-cache system, and the sharing signature falls out
of the protocol counters:

* category A/B kernels touch common addresses, so later threads find
  lines in peers' caches (read-sharing transitions to SHARED state);
* category C kernels have disjoint footprints: no sharing at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.cache import CacheConfig
from repro.cache.coherence import CoherentCacheSystem, MESIState
from repro.harness.report import render_table
from repro.trace.stream import round_robin_interleave, materialize
from repro.units import KB
from repro.workloads.profiles import CATEGORIES, WORKLOAD_NAMES
from repro.workloads.registry import get_workload


@dataclass(frozen=True)
class SharingRow:
    workload: str
    category: str
    threads: int
    accesses: int
    shared_line_fraction: float  # lines ever held by >1 core
    invalidations_per_kiloaccess: float


def measure_sharing(name: str, threads: int = 4) -> SharingRow:
    """Run ``threads`` kernel traces through the MESI system."""
    workload = get_workload(name)
    runs = [workload.run_kernel(t, threads) for t in range(threads)]
    streams = [[run.trace] for run in runs]
    interleaved = materialize(round_robin_interleave(streams, quantum=512))
    system = CoherentCacheSystem(
        private_config=CacheConfig(size=64 * KB, line_size=64, associativity=8),
        cores=threads,
    )
    seen_by: dict[int, set[int]] = {}
    addresses = interleaved.addresses
    cores = interleaved.cores
    for i in range(len(interleaved)):
        line = int(addresses[i]) >> 6
        seen_by.setdefault(line, set()).add(int(cores[i]))
    system.access_chunk(interleaved)
    shared_lines = sum(1 for owners in seen_by.values() if len(owners) > 1)
    return SharingRow(
        workload=name,
        category=CATEGORIES[name],
        threads=threads,
        accesses=len(interleaved),
        shared_line_fraction=shared_lines / max(1, len(seen_by)),
        invalidations_per_kiloaccess=1000.0
        * system.stats.invalidations_sent
        / max(1, len(interleaved)),
    )


def generate(threads: int = 4, workloads: tuple[str, ...] = WORKLOAD_NAMES) -> list[SharingRow]:
    """The sharing signature of every (or selected) workload."""
    return [measure_sharing(name, threads) for name in workloads]


def main() -> None:
    """Print the measured sharing taxonomy."""
    rows = generate()
    print(
        render_table(
            ["Workload", "Category (paper)", "shared-line fraction", "invalidations/1k acc"],
            [
                (
                    r.workload,
                    r.category,
                    f"{100 * r.shared_line_fraction:.1f}%",
                    f"{r.invalidations_per_kiloaccess:.2f}",
                )
                for r in rows
            ],
            title="Measured sharing behaviour of the instrumented kernels (4 threads)",
        )
    )
    print()
    print("Category A/B kernels share their primary structure; category C")
    print("kernels' footprints are disjoint — the Section 4.3 taxonomy,")
    print("measured rather than assumed.")


if __name__ == "__main__":
    main()
