"""Fault-tolerant supervised execution of sweep grids.

``parallel_map`` fans a grid over a process pool and hopes: one worker
exception, one hung point, or one ``BrokenProcessPool`` kills the whole
sweep with nothing to show for hours of finished points.  The paper's
platform could not afford that posture — a passive FPGA snooping a live
bus *will* see faults — and neither can a long ``repro-runall``.  This
module is the harness-level counterpart of the lenient address filter:
it assumes points can fail and makes the sweep survive them.

The supervisor wraps the same process-pool machinery with

* **per-point wall-clock timeouts** — a hung worker is terminated, the
  pool respawned, and only the victim point re-queued;
* **bounded retries with exponential backoff** — transient failures
  (including injected worker crashes and hangs) are re-run up to
  ``retries`` times before the point is declared dead;
* **``BrokenProcessPool`` recovery** — a worker dying mid-sweep costs
  one pool respawn and re-runs only the points that were in flight;
* **a journaled checkpoint file** — every completed point is appended
  to a JSONL journal keyed by content (task identity + pickled item),
  so ``--resume`` skips finished work after a crash or a Ctrl-C;
* **SIGINT-safe drain** — an interrupt terminates workers, flushes the
  journal, prints a partial-results report, and raises
  :class:`~repro.errors.SweepInterrupted` so callers can exit cleanly.

The determinism contract survives supervision: results are assembled in
item order, every task is a pure function of its argument, and on a
fault-free run the returned list is exactly what ``parallel_map``
produces — byte-identical output for ``repro-runall --jobs N``.

:func:`supervise` installs an ambient :class:`SupervisorContext`; while
one is active, every ``parallel_map`` call in the process routes
through :func:`supervised_map`, so exhibit harnesses gain supervision
without threading new parameters through their signatures.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import sys
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.errors import (
    ConfigurationError,
    DeadlineExpired,
    FaultInjectionError,
    SweepInterrupted,
    SweepPointError,
)
from repro.faults.spec import FaultSpec
from repro.governor.budget import active_governor
from repro.governor.fsshim import fault_point
from repro.governor.retry import retry_io
from repro.harness.executors.base import FabricConfig, SubmittedPoint
from repro.harness.executors.local import LocalPoolExecutor, terminate_pool
from repro.harness.parallel import resolve_jobs
from repro.serve.jobspec import CanonicalSet, canonicalize, point_content_key
from repro.telemetry import runtime as telemetry

#: Journal schema version (header line of every journal file).  v2
#: stamped every *entry* with a ``schema`` field as well, so a single
#: line pasted out of context still identifies its format; v3 adds
#: per-entry ``wall_time_s`` and ``attempts`` so a resumed or post-hoc
#: analysis can see what each point cost without re-running it.
#: Resuming a journal with a missing or unknown version is a hard
#: error, never a silent reinterpretation of old bytes.
JOURNAL_FORMAT = 3

_UNSET = object()

# Canonicalization lives with the job-spec content-key helpers now
# (:mod:`repro.serve.jobspec`), shared with the fabric ledger and the
# server's dedup map so the three key spaces can never drift; the old
# private names stay importable for callers that grew around them.
_CanonicalSet = CanonicalSet
_canonical = canonicalize


@dataclass(frozen=True)
class SupervisorPolicy:
    """How a supervised sweep treats misbehaving points.

    Attributes:
        timeout: per-point wall-clock budget in seconds (None = no
            limit).  Only enforceable with real worker processes; the
            serial path documents-and-ignores it.
        retries: re-runs granted to a failing point after its first
            attempt.
        backoff_base: first retry delay in seconds; attempt ``k`` waits
            ``backoff_base * 2**(k-1)``, capped at ``backoff_cap``.
        backoff_cap: upper bound on any single backoff delay.
        failure_value: graceful-degradation substitute for a point that
            exhausts its retries.  The sentinel default means *no*
            degradation: the sweep raises :class:`SweepPointError`.
    """

    timeout: float | None = None
    retries: int = 2
    backoff_base: float = 0.25
    backoff_cap: float = 8.0
    failure_value: Any = _UNSET

    @property
    def degrades(self) -> bool:
        """Whether exhausted points degrade instead of raising."""
        return self.failure_value is not _UNSET


class SweepJournal:
    """Append-only JSONL checkpoint of completed grid points.

    Each line records one point: a content key (task identity plus the
    pickled item, hashed) and the pickled result, base85-encoded so the
    file stays line-oriented and greppable.  Appending is crash-safe in
    the way that matters: a torn final line is detected on load and
    ignored, costing one recomputed point.
    """

    def __init__(self, path: str | os.PathLike, resume: bool = False) -> None:
        self.path = Path(path)
        self.entries: dict[str, Any] = {}
        #: Per-key cost metadata (``wall_time_s``, ``attempts``) for
        #: entries loaded on resume — kept out of ``entries`` so result
        #: payloads stay exactly what the task returned.
        self.meta: dict[str, dict] = {}
        if resume and self.path.exists():
            self._load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        mode = "a" if resume else "w"
        self._handle = open(self.path, mode, encoding="utf-8")
        if not resume or self._handle.tell() == 0:
            self._write_line({"format": JOURNAL_FORMAT})

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            header_seen = False
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                if not header_seen:
                    header_seen = True
                    self._check_header(line)
                    continue
                try:
                    row = json.loads(line)
                    if "key" in row:
                        if row.get("schema") != JOURNAL_FORMAT:
                            raise ConfigurationError(
                                f"journal {self.path} entry carries schema "
                                f"{row.get('schema')!r}; this build reads "
                                f"{JOURNAL_FORMAT} — delete the journal or "
                                "rerun without --resume"
                            )
                        self.entries[row["key"]] = pickle.loads(
                            base64.b85decode(row["result"])
                        )
                        self.meta[row["key"]] = {
                            "wall_time_s": row.get("wall_time_s"),
                            "attempts": row.get("attempts", 1),
                        }
                except (ValueError, KeyError, pickle.UnpicklingError, EOFError):
                    continue  # torn tail line from a crash: skip it

    def _check_header(self, line: str) -> None:
        """Refuse to resume from a journal of a different schema."""
        try:
            header = json.loads(line)
            version = header.get("format") if isinstance(header, dict) else None
        except ValueError:
            version = None
        if version is None:
            raise ConfigurationError(
                f"journal {self.path} has no schema version header — it "
                "predates versioned journals or is not a sweep journal; "
                "delete it or rerun without --resume"
            )
        if version != JOURNAL_FORMAT:
            raise ConfigurationError(
                f"journal {self.path} was written with schema {version}; "
                f"this build reads {JOURNAL_FORMAT} — delete the journal "
                "or rerun without --resume"
            )

    def _write_line(self, row: dict) -> None:
        """Append one record durably: flushed *and* fsynced.

        A point only counts as journaled once the bytes are on the
        platter — a machine losing power after a buffered write would
        otherwise re-run "completed" points on resume, or worse, leave
        a torn record that silently swallows its neighbour.  The fsync
        costs microseconds per point against sweep points that cost
        seconds; durability is the whole reason the journal exists.

        Transient write errors (EIO on a flaky volume, EAGAIN) are
        retried with backoff; a retried append can at worst leave one
        torn line followed by the complete record, which the loader's
        torn-line tolerance already absorbs.
        """
        line = json.dumps(row, sort_keys=True) + "\n"

        def _write() -> None:
            fault_point("journal.append")
            self._handle.write(line)
            self._handle.flush()
            os.fsync(self._handle.fileno())

        retry_io("journal.append", _write)

    @staticmethod
    def point_key(task: Callable, item: Any) -> str:
        """Content key of one grid point: task identity + pickled item.

        The item is canonicalized first: pickled dicts carry their
        insertion order, so ``{"a": 1, "b": 2}`` and ``{"b": 2, "a": 1}``
        — the same grid point — would otherwise hash to different keys
        and ``--resume`` would re-run completed work.
        """
        return point_content_key(f"{task.__module__}.{task.__qualname__}", item)

    def __contains__(self, key: str) -> bool:
        return key in self.entries

    def get(self, key: str) -> Any:
        return self.entries[key]

    def record(
        self,
        key: str,
        result: Any,
        wall_time_s: float | None = None,
        attempts: int = 1,
    ) -> None:
        """Checkpoint one completed point (idempotent per key).

        ``wall_time_s`` and ``attempts`` record what the point cost
        (v3 fields); they are metadata only and never affect what a
        resume returns for the key.
        """
        self.entries[key] = result
        self.meta[key] = {"wall_time_s": wall_time_s, "attempts": attempts}
        encoded = base64.b85encode(pickle.dumps(result, protocol=4)).decode("ascii")
        self._write_line(
            {
                "schema": JOURNAL_FORMAT,
                "key": key,
                "result": encoded,
                "wall_time_s": wall_time_s,
                "attempts": attempts,
            }
        )

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class SupervisorContext:
    """Ambient supervision state shared by every map under one sweep."""

    policy: SupervisorPolicy = field(default_factory=SupervisorPolicy)
    journal: SweepJournal | None = None
    fault_spec: FaultSpec | None = None
    #: Directory for per-point mid-run snapshots.  Tasks that advertise
    #: ``supports_checkpoint = True`` receive a per-point path under it
    #: (keyed by the point's content key), snapshot there as they run,
    #: and resume from the snapshot when a timeout, crash, or SIGKILL
    #: forces a re-run — the retry continues mid-point instead of
    #: starting over, and the result stays bit-identical.
    checkpoint_dir: str | None = None
    #: Ledger-backend fabric shape (``--executor shard``/``remote``).
    #: None keeps the classic serial/pool routing; set, every
    #: supervised map runs on the fabric driver instead
    #: (:func:`repro.harness.executors.fabric.run_fabric`).
    fabric: FabricConfig | None = None
    #: Aggregated event counters across all supervised maps:
    #: journal-skip, worker-crash, worker-hang-injected, point-timeout,
    #: point-retry, point-degraded, point-resumed, pool-respawn, plus
    #: the fabric's fabric-lease, fabric-steal, fabric-verified,
    #: fabric-quarantined, and fabric-worker-respawn.
    counts: dict[str, int] = field(default_factory=dict)
    completed: int = 0
    total: int = 0
    #: When this sweep's supervision began (monotonic); the base of the
    #: progress line's rate and ETA estimates.
    started: float = field(default_factory=time.monotonic)

    def count(self, kind: str, n: int = 1) -> None:
        if n:
            self.counts[kind] = self.counts.get(kind, 0) + n
            telemetry.counter("repro_supervisor_events_total", event=kind).inc(n)

    def describe(self) -> str:
        """One-line event summary (empty when nothing noteworthy happened)."""
        return " ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))

    def progress(self) -> None:
        """Emit one progress/ETA line to stderr (telemetry runs only).

        Byte-identity of telemetry-off runs is preserved twice over:
        nothing prints unless telemetry is enabled, and even then the
        line goes to stderr, which the CI smoke diffs never capture.
        """
        if not telemetry.enabled() or self.total <= 0:
            return
        elapsed = time.monotonic() - self.started
        rate = self.completed / elapsed if elapsed > 0 else 0.0
        remaining = self.total - self.completed
        eta = remaining / rate if rate > 0 else float("inf")
        print(
            f"sweep progress: {self.completed}/{self.total} points "
            f"({100.0 * self.completed / self.total:.0f}%), "
            f"elapsed {elapsed:.1f}s, ETA {eta:.1f}s",
            file=sys.stderr,
        )


_ACTIVE: SupervisorContext | None = None


def active_context() -> SupervisorContext | None:
    """The installed supervisor context, if a sweep is being supervised."""
    return _ACTIVE


@contextmanager
def supervise(
    policy: SupervisorPolicy | None = None,
    journal: SweepJournal | None = None,
    fault_spec: FaultSpec | None = None,
    checkpoint_dir: str | os.PathLike | None = None,
    fabric: FabricConfig | None = None,
) -> Iterator[SupervisorContext]:
    """Install a supervisor context for the duration of a sweep.

    While active, every :func:`repro.harness.parallel.parallel_map` call
    routes through :func:`supervised_map` with this context — the
    exhibit harnesses need no new parameters to become fault-tolerant.
    """
    global _ACTIVE
    if checkpoint_dir is not None:
        Path(checkpoint_dir).mkdir(parents=True, exist_ok=True)
    context = SupervisorContext(
        policy=policy or SupervisorPolicy(),
        journal=journal,
        fault_spec=fault_spec,
        checkpoint_dir=None if checkpoint_dir is None else str(checkpoint_dir),
        fabric=fabric,
    )
    previous = _ACTIVE
    _ACTIVE = context
    try:
        yield context
    finally:
        _ACTIVE = previous


# -- worker-side entry ---------------------------------------------------


def _run_point(
    task: Callable,
    item: Any,
    fault: str | None,
    hang_seconds: float,
    checkpoint_path: str | None = None,
):
    """Execute one grid point in a worker, applying any planned fault.

    An injected *crash* kills the worker process outright (the honest
    analog of a segfaulting host — it must surface as
    ``BrokenProcessPool``, not as a tidy exception); an injected *hang*
    stalls for ``hang_seconds`` before running the point, so an untimed
    sweep still finishes, merely late.

    ``checkpoint_path`` is forwarded only to tasks that advertise
    ``supports_checkpoint``; the task snapshots there as it runs and
    resumes from it if this attempt is not the first.
    """
    if fault == "crash":
        os._exit(73)
    elif fault == "hang":
        time.sleep(hang_seconds)
    if checkpoint_path is not None:
        return task(item, checkpoint_path=checkpoint_path)
    return task(item)


# -- the supervised map --------------------------------------------------


@dataclass
class _Flight:
    """Bookkeeping for one in-flight point."""

    index: int
    deadline: float | None
    #: Submission time (monotonic); the journal's ``wall_time_s`` for a
    #: pooled point is measured from here, so it includes queue-to-start
    #: latency inside the worker but not backoff waits between attempts.
    submitted: float = 0.0


# Historical name, kept because callers and tests grew around it; the
# implementation (with its guarded ``_processes`` access and documented
# plain-shutdown fallback) lives with the pool backend.
_terminate = terminate_pool


def supervised_map(
    task: Callable,
    items: list,
    jobs: int | None = None,
    context: SupervisorContext | None = None,
) -> list:
    """Map ``task`` over ``items`` under supervision; ordered results.

    The fault-free fast path returns exactly what ``parallel_map``
    would.  Under faults, points are retried with backoff, hung or
    crashed workers cost a pool respawn plus re-runs of only the
    affected points, completed points are journaled as they finish, and
    SIGINT drains to a partial report plus :class:`SweepInterrupted`.
    """
    context = context or active_context() or SupervisorContext()
    policy = context.policy
    work = list(items)
    n = len(work)
    context.total += n
    results: list[Any] = [_UNSET] * n

    checkpointing = context.checkpoint_dir is not None and getattr(
        task, "supports_checkpoint", False
    )
    need_keys = (
        context.journal is not None
        or context.fault_spec is not None
        or context.fabric is not None
        or checkpointing
    )
    keys = [SweepJournal.point_key(task, item) for item in work] if need_keys else None
    ckpt_paths: list[str | None] = [None] * n
    if checkpointing:
        ckpt_paths = [
            os.path.join(context.checkpoint_dir, key + ".ckpt") for key in keys
        ]

    pending: list[int] = []
    for i in range(n):
        if context.journal is not None and keys[i] in context.journal:
            results[i] = context.journal.get(keys[i])
            context.count("journal-skip")
            context.completed += 1
        else:
            pending.append(i)
    if not pending:
        return results

    if context.fabric is not None:
        # Ledger-backend sweep: shard/remote workers own execution; the
        # driver folds their records back into this ordered list.
        from repro.harness.executors.fabric import run_fabric

        run_fabric(task, work, pending, keys, ckpt_paths, results, context)
        return results

    workers = min(resolve_jobs(jobs), len(pending))
    governor = active_governor()
    if workers > 1 and governor is not None and governor.memory_pressure():
        # Worker processes are the multiplier on resident memory; under
        # a breached --mem-budget new maps run serial (the latch in the
        # governor keeps this in force for the rest of the run, and the
        # first breach left a degradation record).
        workers = 1
    if workers <= 1:
        _run_serial(task, work, pending, keys, ckpt_paths, results, context)
    else:
        _run_pool(task, work, pending, keys, ckpt_paths, results, context, workers)
    return results


def _point_fault(
    context: SupervisorContext, keys: list[str] | None, index: int, attempt: int
) -> str | None:
    """Planned harness fault for one attempt (first attempt only)."""
    if context.fault_spec is None or attempt > 0:
        return None
    fault = context.fault_spec.harness_fault(keys[index])
    if fault is not None:
        context.count(f"worker-{fault}-injected")
    return fault


def _note_resume(context: SupervisorContext, checkpoint_path: str | None) -> None:
    """Count an attempt that will pick up from a mid-point snapshot.

    A snapshot on disk at launch time means a previous attempt was cut
    down mid-run (timeout, crash, SIGKILL) after at least one
    checkpoint landed — the task resumes instead of starting over.
    """
    if checkpoint_path is not None and os.path.exists(checkpoint_path):
        context.count("point-resumed")


def _finish(
    context: SupervisorContext,
    keys: list[str] | None,
    results: list,
    index: int,
    value: Any,
    wall_time_s: float | None = None,
    attempts: int = 1,
) -> None:
    results[index] = value
    context.completed += 1
    if wall_time_s is not None:
        telemetry.histogram("repro_sweep_point_seconds").observe(wall_time_s)
    if context.journal is not None:
        context.journal.record(
            keys[index], value, wall_time_s=wall_time_s, attempts=attempts
        )
    context.progress()


def _fail(
    context: SupervisorContext,
    policy: SupervisorPolicy,
    keys: list[str] | None,
    results: list,
    index: int,
    item: Any,
    cause: BaseException,
    attempts: int,
) -> None:
    """A point exhausted its retries: degrade or raise."""
    if policy.degrades:
        context.count("point-degraded")
        _finish(
            context, keys, results, index, policy.failure_value, attempts=attempts
        )
        return
    raise SweepPointError(item, cause, attempts=attempts) from cause


def _backoff(policy: SupervisorPolicy, attempt: int) -> float:
    return min(policy.backoff_cap, policy.backoff_base * (2 ** max(0, attempt - 1)))


def check_deadline(
    context: SupervisorContext,
    results: list,
    cancel: Callable[[], None] | None = None,
) -> None:
    """Drain the sweep if the run-level ``--deadline`` has expired.

    The deadline path is SIGINT with a different exception type: cancel
    in-flight work, print the partial-results report (the journal keeps
    every completed point), raise :class:`~repro.errors.DeadlineExpired`
    — a :class:`SweepInterrupted` subclass, so everything that already
    survives Ctrl-C survives deadline expiry for free.  Checked between
    serial points, per pool-poll cycle, and per fabric cycle; a point
    already running is never cut down mid-flight (the per-point
    ``timeout`` owns that), so expiry costs at most one point's latency.
    """
    governor = active_governor()
    if governor is None or not governor.deadline_expired():
        return
    if cancel is not None:
        cancel()
    governor.note_deadline(context.completed, context.total)
    _drain_report(context, results, reason="deadline expired")
    raise DeadlineExpired(context.completed, context.total)


def _deadline_capped(wait_for: float | None) -> float | None:
    """Cap a poll timeout so the loop wakes when the deadline lands."""
    governor = active_governor()
    if governor is None:
        return wait_for
    remaining = governor.deadline_remaining()
    if remaining is None:
        return wait_for
    capped = remaining if wait_for is None else min(wait_for, remaining)
    return max(0.05, capped)


def _run_serial(
    task: Callable,
    work: list,
    pending: list[int],
    keys: list[str] | None,
    ckpt_paths: list,
    results: list,
    context: SupervisorContext,
) -> None:
    """In-process path (``jobs`` ≤ 1): retries apply, timeouts cannot.

    An injected crash becomes :class:`FaultInjectionError` here — with
    no worker process to sacrifice, the fault degenerates to an
    exception, which exercises the same retry path.
    """
    policy = context.policy
    for i in pending:
        check_deadline(context, results)
        attempt = 0
        while True:
            fault = _point_fault(context, keys, i, attempt)
            _note_resume(context, ckpt_paths[i])
            try:
                if fault == "crash":
                    raise FaultInjectionError("injected worker crash (serial mode)")
                if fault == "hang":
                    time.sleep(context.fault_spec.hang_seconds)
                begin = time.perf_counter()
                value = (
                    task(work[i], checkpoint_path=ckpt_paths[i])
                    if ckpt_paths[i] is not None
                    else task(work[i])
                )
                wall = time.perf_counter() - begin
                _finish(
                    context,
                    keys,
                    results,
                    i,
                    value,
                    wall_time_s=wall,
                    attempts=attempt + 1,
                )
                break
            except KeyboardInterrupt:
                _drain_report(context, results)
                raise SweepInterrupted(context.completed, context.total) from None
            except Exception as error:
                attempt += 1
                if attempt > policy.retries:
                    _fail(context, policy, keys, results, i, work[i], error, attempt)
                    break
                context.count("point-retry")
                time.sleep(_backoff(policy, attempt))


def _run_pool(
    task: Callable,
    work: list,
    pending: list[int],
    keys: list[str] | None,
    ckpt_paths: list,
    results: list,
    context: SupervisorContext,
    workers: int,
) -> None:
    """The supervised pool loop, driven through the ``pool`` backend."""
    policy = context.policy
    attempts = {i: 0 for i in pending}
    # (index, not-before) — backoff is enforced by the ready time.
    queue: deque[tuple[int, float]] = deque((i, 0.0) for i in pending)
    inflight: dict[Any, _Flight] = {}
    backend = LocalPoolExecutor(workers)

    def respawn() -> None:
        backend.respawn()
        context.count("pool-respawn")

    def submit_ready(now: float) -> None:
        while queue and len(inflight) < workers:
            index, ready_at = queue[0]
            if ready_at > now:
                break
            queue.popleft()
            fault = _point_fault(context, keys, index, attempts[index])
            hang_seconds = (
                context.fault_spec.hang_seconds if context.fault_spec else 0.0
            )
            _note_resume(context, ckpt_paths[index])
            handle = backend.submit(
                SubmittedPoint(
                    index=index,
                    task=task,
                    item=work[index],
                    key=keys[index] if keys is not None else None,
                    fault=fault,
                    hang_seconds=hang_seconds,
                    checkpoint_path=ckpt_paths[index],
                )
            )
            deadline = now + policy.timeout if policy.timeout else None
            inflight[handle] = _Flight(
                index=index, deadline=deadline, submitted=time.monotonic()
            )

    def requeue(index: int, *, delay: float = 0.0) -> None:
        queue.append((index, time.monotonic() + delay))

    def on_failure(index: int, cause: BaseException, kind: str) -> None:
        """Count a failed attempt; requeue with backoff or finish the point."""
        attempts[index] += 1
        if attempts[index] > policy.retries:
            _fail(
                context,
                policy,
                keys,
                results,
                index,
                work[index],
                cause,
                attempts[index],
            )
            return
        context.count(kind)
        requeue(index, delay=_backoff(policy, attempts[index]))

    try:
        while queue or inflight:
            check_deadline(context, results, cancel=backend.cancel)
            now = time.monotonic()
            submit_ready(now)
            if not inflight:
                # Nothing running: we are waiting out a backoff window.
                pause = max(0.0, min(at for _, at in queue) - now)
                capped = _deadline_capped(pause)
                time.sleep(pause if capped is None else min(pause, capped))
                continue
            wait_for = _deadline_capped(_next_wakeup(policy, queue, inflight, now))
            for event in backend.poll(wait_for):
                if event.kind == "respawn":
                    # The backend already rebuilt its broken pool; the
                    # lost/crash events around this one re-route points.
                    context.count("pool-respawn")
                    continue
                flight = inflight.pop(event.handle, None)
                if flight is None:
                    continue
                if event.kind == "done":
                    _finish(
                        context,
                        keys,
                        results,
                        flight.index,
                        event.value,
                        wall_time_s=time.monotonic() - flight.submitted,
                        attempts=attempts[flight.index] + 1,
                    )
                elif event.kind == "crash":
                    on_failure(flight.index, event.error, "worker-crash")
                elif event.kind == "error":
                    on_failure(flight.index, event.error, "point-retry")
                elif event.kind == "lost":
                    # An innocent casualty of a pool collapse: re-run
                    # without charging an attempt.
                    requeue(flight.index)
            _reap_hung(
                context, policy, inflight, requeue, on_failure, respawn
            )
    except SweepPointError:
        backend.cancel()
        raise
    except KeyboardInterrupt:
        backend.cancel()
        _drain_report(context, results)
        raise SweepInterrupted(context.completed, context.total) from None
    else:
        backend.close()


def _next_wakeup(
    policy: SupervisorPolicy,
    queue: deque,
    inflight: dict,
    now: float,
) -> float | None:
    """How long the wait may block: next deadline or next backoff expiry."""
    horizons = [
        flight.deadline - now
        for flight in inflight.values()
        if flight.deadline is not None
    ]
    if queue:
        horizons.append(queue[0][1] - now)
    if not horizons:
        return None
    return max(0.05, min(horizons))


def _reap_hung(context, policy, inflight, requeue, on_failure, respawn) -> None:
    """Kill the pool if any point overran its deadline; re-queue victims."""
    now = time.monotonic()
    expired = [
        (future, flight)
        for future, flight in inflight.items()
        if flight.deadline is not None and now > flight.deadline and not future.done()
    ]
    if not expired:
        return
    hung = {future for future, _ in expired}
    survivors = [flight.index for future, flight in inflight.items() if future not in hung]
    inflight.clear()
    respawn()
    for _, flight in expired:
        on_failure(
            flight.index,
            FaultInjectionError(
                f"point exceeded its {policy.timeout:.1f}s wall-clock budget"
            ),
            "point-timeout",
        )
    for index in survivors:
        requeue(index)


def _drain_report(
    context: SupervisorContext, results: list, reason: str = "interrupted"
) -> None:
    """The drain report (SIGINT or deadline expiry), written to stderr."""
    done = sum(1 for value in results if value is not _UNSET)
    print(
        f"\nsweep {reason}: {done}/{len(results)} points of the current "
        f"grid completed ({context.completed}/{context.total} overall)",
        file=sys.stderr,
    )
    if context.counts:
        print(f"  events: {context.describe()}", file=sys.stderr)
    if context.journal is not None:
        print(
            f"  journal: {context.journal.path} — re-run with --resume to "
            "skip completed points",
            file=sys.stderr,
        )
    if context.checkpoint_dir is not None:
        print(
            f"  checkpoints: {context.checkpoint_dir} — in-flight points "
            "left mid-run snapshots and will resume from them, not from "
            "scratch",
            file=sys.stderr,
        )
