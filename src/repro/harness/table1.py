"""Table 1: input parameters and datasets.

The paper's Table 1 lists each workload's input parameters and dataset
size; our reproduction adds the synthetic-substitute description and
the reduced scale the instrumented kernels run at, making the
substitutions auditable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.profiles import PAPER_TABLE1, WORKLOAD_NAMES
from repro.harness.report import render_table

#: What replaces each real dataset (see mining.datasets).
SUBSTITUTES: dict[str, str] = {
    "SNP": "linked-loci binary genotype matrix (datasets.genotype_matrix)",
    "SVM-RFE": "two-class expression matrix, planted informative genes (datasets.micro_array)",
    "RSEARCH": "uniform nucleotide database with planted hairpin homologs (datasets.rna_database)",
    "FIMI": "Zipf-popularity transactions, geometric sizes (datasets.transactions)",
    "PLSA": "homologous DNA pair with point mutations and indels (datasets.dna_pair)",
    "MDS": "Zipf-vocabulary topical document collection (datasets.document_set)",
    "SHOT": "synthetic sports broadcast with scene cuts (datasets.synthetic_video)",
    "VIEWTYPE": "same video; playfield area varies by view type (datasets.synthetic_video)",
}


@dataclass(frozen=True)
class Table1Row:
    workload: str
    paper_parameters: str
    paper_dataset: str
    substitute: str


def generate() -> list[Table1Row]:
    """The Table 1 reproduction rows, in the paper's order."""
    return [
        Table1Row(
            workload=name,
            paper_parameters=PAPER_TABLE1[name][0],
            paper_dataset=PAPER_TABLE1[name][1],
            substitute=SUBSTITUTES[name],
        )
        for name in WORKLOAD_NAMES
    ]


def main(jobs: int | None = None) -> None:
    """Print the Table 1 reproduction.

    ``jobs`` is accepted for runner uniformity; the table is static
    text with nothing to fan out.
    """
    del jobs
    rows = generate()
    print(
        render_table(
            ["Workload", "Parameters (paper)", "Dataset (paper)", "Synthetic substitute"],
            [(r.workload, r.paper_parameters, r.paper_dataset, r.substitute) for r in rows],
            title="Table 1: input parameters and datasets",
        )
    )


if __name__ == "__main__":
    main()
