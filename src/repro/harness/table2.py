"""Table 2: workload characteristics (single-threaded, run to completion).

Regenerates every column of the paper's Table 2 from the calibrated
memory models and the CPI stack: IPC, instruction count, memory-
instruction percentages, and DL1/DL2 statistics on the measurement
machine (8 KB L1, 512 KB L2), with the paper's measured values beside
the model's for the EXPERIMENTS.md comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.parallel import parallel_map
from repro.harness.report import render_table
from repro.perf.cpi import predicted_ipc
from repro.workloads.profiles import PAPER_TABLE2, WORKLOAD_NAMES, memory_model


@dataclass(frozen=True)
class Table2Comparison:
    """One workload's paper-versus-model row."""

    workload: str
    ipc_paper: float
    ipc_model: float
    instructions_billions: float
    mem_pct_paper: float
    mem_read_pct_paper: float
    dl1_accesses_model: float
    dl1_mpki_paper: float
    dl1_mpki_model: float
    dl2_mpki_paper: float
    dl2_mpki_model: float


def _comparison_row(name: str) -> Table2Comparison:
    """One workload's paper-versus-model row (picklable task)."""
    paper = PAPER_TABLE2[name]
    model = memory_model(name)
    dl1 = model.dl1_mpki()
    dl2 = model.dl2_mpki()
    return Table2Comparison(
        workload=name,
        ipc_paper=paper.ipc,
        ipc_model=predicted_ipc(name, dl1, dl2),
        instructions_billions=paper.instructions_billions,
        mem_pct_paper=paper.mem_instruction_pct,
        mem_read_pct_paper=paper.mem_read_pct,
        dl1_accesses_model=model.apki,
        dl1_mpki_paper=paper.dl1_mpki,
        dl1_mpki_model=dl1,
        dl2_mpki_paper=paper.dl2_mpki,
        dl2_mpki_model=dl2,
    )


def generate(jobs: int | None = None) -> list[Table2Comparison]:
    """Compute the Table 2 reproduction for all eight workloads."""
    return parallel_map(_comparison_row, WORKLOAD_NAMES, jobs=jobs)


def main(jobs: int | None = None) -> None:
    """Print the Table 2 paper-versus-model comparison."""
    rows = generate(jobs=jobs)
    print(
        render_table(
            [
                "Workload",
                "IPC paper",
                "IPC model",
                "Inst (B)",
                "%Mem",
                "%MemRead",
                "DL1 acc/1k",
                "DL1 MPKI paper",
                "DL1 MPKI model",
                "DL2 MPKI paper",
                "DL2 MPKI model",
            ],
            [
                (
                    r.workload,
                    f"{r.ipc_paper:.2f}",
                    f"{r.ipc_model:.2f}",
                    f"{r.instructions_billions:.2f}",
                    f"{r.mem_pct_paper:.2f}%",
                    f"{r.mem_read_pct_paper:.2f}%",
                    f"{r.dl1_accesses_model:.0f}",
                    f"{r.dl1_mpki_paper:.2f}",
                    f"{r.dl1_mpki_model:.2f}",
                    f"{r.dl2_mpki_paper:.2f}",
                    f"{r.dl2_mpki_model:.2f}",
                )
                for r in rows
            ],
            title="Table 2: workload characteristics (paper vs model)",
        )
    )


if __name__ == "__main__":
    main()
