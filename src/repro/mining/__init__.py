"""From-scratch implementations of the paper's eight data-mining algorithms.

The paper's workloads are proprietary Intel applications; this package
reimplements the published algorithms they are built on (Section 2):

==========  =====================================================  ==============
Workload    Algorithm                                              Module
==========  =====================================================  ==============
SNP         Bayesian-network structure learning (hill climbing)    :mod:`bayesnet`
SVM-RFE     SVM training + recursive feature elimination           :mod:`svm`
RSEARCH     SCFG decoding via the CYK algorithm                    :mod:`scfg`
FIMI        frequent-itemset mining via FP-growth                  :mod:`fpgrowth`
PLSA        Smith-Waterman local sequence alignment                :mod:`align`
MDS         graph-based ranking + maximum marginal relevance       :mod:`summarize`
SHOT        RGB-histogram shot-boundary detection                  :mod:`video`
VIEWTYPE    HSV dominant-color view-type classification            :mod:`video`
==========  =====================================================  ==============

Each module offers a plain fast API (used by tests for correctness
against brute-force references) and a *traced kernel* that runs the same
algorithm on :class:`~repro.trace.instrument.TracedArray` buffers,
emitting the real memory-access trace the co-simulation platform
consumes.  Synthetic datasets matching Table 1's shapes come from
:mod:`repro.mining.datasets`.
"""
