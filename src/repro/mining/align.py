"""Smith-Waterman local sequence alignment (the PLSA workload).

Section 2.4: "PLSA uses a dynamic programming approach to solve sequence
matching problem.  It is based on the algorithm proposed by Smith and
Waterman, which uses local alignment to find the longest common
substring in sequences."  The Intel workload is the *parallel linear
space* variant (Li et al., Euro-Par 2005); we provide:

* :func:`sw_score_matrix` — the full O(nm) DP with affine-free linear
  gap penalties (the test oracle);
* :func:`sw_best_score` — score-only DP in O(min(n,m)) space, the
  memory layout the real workload uses (two rolling rows → small
  working set and near-perfect spatial locality, which is why PLSA has
  the lowest DL2 MPKI in Table 2 and only a 4 MB LLC working set);
* :func:`sw_traceback` — reconstruct the best local alignment;
* :func:`traced_plsa_kernel` — the rolling-row DP on instrumented
  buffers, wavefront-partitioned across threads the way the parallel
  algorithm blocks the anti-diagonal.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.trace.instrument import MemoryArena, TraceRecorder

MATCH = 2
MISMATCH = -1
GAP = -1


def sw_score_matrix(
    a: np.ndarray, b: np.ndarray, match: int = MATCH, mismatch: int = MISMATCH, gap: int = GAP
) -> np.ndarray:
    """Full Smith-Waterman DP matrix H of shape (len(a)+1, len(b)+1)."""
    n, m = len(a), len(b)
    h = np.zeros((n + 1, m + 1), dtype=np.int64)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            diagonal = h[i - 1, j - 1] + (match if a[i - 1] == b[j - 1] else mismatch)
            h[i, j] = max(0, diagonal, h[i - 1, j] + gap, h[i, j - 1] + gap)
    return h


def sw_best_score(
    a: np.ndarray, b: np.ndarray, match: int = MATCH, mismatch: int = MISMATCH, gap: int = GAP
) -> int:
    """Best local-alignment score in linear space (two rolling rows).

    Row-vectorized: each DP row is computed with numpy operations except
    the inherently serial horizontal-gap recurrence, which is resolved
    by an iterated max (scores cannot propagate more than the row length).
    """
    if len(a) < len(b):
        a, b = b, a  # roll over the shorter sequence
    previous = np.zeros(len(b) + 1, dtype=np.int64)
    best = 0
    for i in range(1, len(a) + 1):
        match_row = np.where(b == a[i - 1], match, mismatch)
        current = np.zeros(len(b) + 1, dtype=np.int64)
        candidate = np.maximum(previous[:-1] + match_row, previous[1:] + gap)
        np.maximum(candidate, 0, out=candidate)
        # Serial horizontal dependency: current[j] >= current[j-1] + gap.
        running = 0
        current_view = current[1:]
        current_view[:] = candidate
        for j in range(len(b)):
            running = max(current_view[j], running + gap)
            current_view[j] = running
        best = max(best, int(current_view.max(initial=0)))
        previous = current
    return best


def sw_traceback(
    a: np.ndarray, b: np.ndarray, match: int = MATCH, mismatch: int = MISMATCH, gap: int = GAP
) -> tuple[int, list[tuple[int, int]]]:
    """Best score plus the aligned index pairs of the optimal local path."""
    h = sw_score_matrix(a, b, match, mismatch, gap)
    i, j = np.unravel_index(int(np.argmax(h)), h.shape)
    path: list[tuple[int, int]] = []
    while i > 0 and j > 0 and h[i, j] > 0:
        diagonal = h[i - 1, j - 1] + (match if a[i - 1] == b[j - 1] else mismatch)
        if h[i, j] == diagonal:
            path.append((i - 1, j - 1))
            i, j = i - 1, j - 1
        elif h[i, j] == h[i - 1, j] + gap:
            i -= 1
        else:
            j -= 1
    return int(h.max()), path[::-1]


def _nw_last_row(
    a: np.ndarray, b: np.ndarray, match: int, mismatch: int, gap: int
) -> np.ndarray:
    """Last row of the *global* alignment DP of a against b (linear space)."""
    previous = np.array([j * gap for j in range(len(b) + 1)], dtype=np.int64)
    for i in range(1, len(a) + 1):
        current = np.empty(len(b) + 1, dtype=np.int64)
        current[0] = i * gap
        for j in range(1, len(b) + 1):
            diagonal = previous[j - 1] + (match if a[i - 1] == b[j - 1] else mismatch)
            current[j] = max(diagonal, previous[j] + gap, current[j - 1] + gap)
        previous = current
    return previous


def hirschberg_alignment(
    a: np.ndarray,
    b: np.ndarray,
    match: int = MATCH,
    mismatch: int = MISMATCH,
    gap: int = GAP,
) -> tuple[int, list[tuple[int | None, int | None]]]:
    """Global alignment in linear space (Hirschberg's divide and conquer).

    The PLSA workload is the *parallel linear space* algorithm (Li et
    al., Euro-Par 2005), which composes Smith-Waterman scoring with
    Hirschberg-style linear-space traceback; this supplies the
    traceback half.  Returns ``(score, pairs)`` where pairs align index
    ``i`` of ``a`` with index ``j`` of ``b`` (``None`` marks a gap).
    """
    pairs: list[tuple[int | None, int | None]] = []

    def solve(a_lo: int, a_hi: int, b_lo: int, b_hi: int) -> None:
        sub_a = a[a_lo:a_hi]
        sub_b = b[b_lo:b_hi]
        if len(sub_a) == 0:
            pairs.extend((None, b_lo + j) for j in range(len(sub_b)))
            return
        if len(sub_b) == 0:
            pairs.extend((a_lo + i, None) for i in range(len(sub_a)))
            return
        if len(sub_a) == 1:
            # Exact base case: either align the symbol at its best
            # position (rest of b gapped), or gap it out entirely.
            scores = [
                (match if sub_a[0] == sub_b[j] else mismatch) for j in range(len(sub_b))
            ]
            best_j = int(np.argmax(scores))
            aligned_score = scores[best_j] + (len(sub_b) - 1) * gap
            deleted_score = (len(sub_b) + 1) * gap
            if deleted_score > aligned_score:
                pairs.append((a_lo, None))
                pairs.extend((None, b_lo + j) for j in range(len(sub_b)))
                return
            for j in range(len(sub_b)):
                if j == best_j:
                    pairs.append((a_lo, b_lo + j))
                else:
                    pairs.append((None, b_lo + j))
            return
        mid = len(sub_a) // 2
        left = _nw_last_row(sub_a[:mid], sub_b, match, mismatch, gap)
        right = _nw_last_row(sub_a[mid:][::-1], sub_b[::-1], match, mismatch, gap)[::-1]
        split = int(np.argmax(left + right))
        solve(a_lo, a_lo + mid, b_lo, b_lo + split)
        solve(a_lo + mid, a_hi, b_lo + split, b_hi)

    solve(0, len(a), 0, len(b))
    pairs.sort(key=lambda p: (p[0] if p[0] is not None else -1, p[1] if p[1] is not None else -1))
    score = 0
    for i, j in pairs:
        if i is None or j is None:
            score += gap
        else:
            score += match if a[i] == b[j] else mismatch
    return score, pairs


def nw_score(a: np.ndarray, b: np.ndarray, match: int = MATCH, mismatch: int = MISMATCH, gap: int = GAP) -> int:
    """Global (Needleman-Wunsch) alignment score — Hirschberg's oracle."""
    return int(_nw_last_row(a, b, match, mismatch, gap)[-1])


def traced_plsa_kernel(
    recorder: TraceRecorder,
    arena: MemoryArena,
    length: int = 256,
    threads: int = 1,
    thread_id: int = 0,
    seed: int = 29,
) -> int:
    """Linear-space Smith-Waterman on instrumented rolling rows.

    The parallel algorithm partitions each DP row into ``threads``
    column blocks; thread ``thread_id`` computes its block, reading the
    shared previous row and writing its slice of the current row.  The
    trace therefore shows PLSA's signature: long sequential row scans
    over a small resident working set.
    """
    if not 0 <= thread_id < threads:
        raise ConfigurationError(f"thread_id {thread_id} out of range for {threads}")
    from repro.mining.datasets import dna_pair

    a, b = dna_pair(length=length, seed=seed)
    block = len(b) // threads or 1
    start = thread_id * block
    stop = len(b) if thread_id == threads - 1 else (thread_id + 1) * block
    previous = arena.array(recorder, len(b) + 1, dtype=np.int64)
    current = arena.array(recorder, len(b) + 1, dtype=np.int64)
    query = arena.wrap(recorder, b.copy())
    best = 0
    for i in range(1, len(a) + 1):
        symbol = int(a[i - 1])
        row_prev = previous[start : stop + 1]  # traced shared-row read
        row_query = query[start:stop]  # traced query read
        match_scores = np.where(row_query == symbol, MATCH, MISMATCH)
        candidate = np.maximum(row_prev[:-1] + match_scores, row_prev[1:] + GAP)
        np.maximum(candidate, 0, out=candidate)
        running = 0
        for j in range(len(candidate)):
            running = max(int(candidate[j]), running + GAP)
            candidate[j] = running
        current[start + 1 : stop + 1] = candidate  # traced private-row write
        recorder.retire(4 * len(candidate))
        if len(candidate):
            best = max(best, int(candidate.max()))
        previous.data, current.data = current.data, previous.data
        previous.base, current.base = current.base, previous.base
    return best
