"""Apriori frequent-itemset mining: the FP-growth baseline.

Section 2.3: "Many FIMI algorithms have been proposed in literature,
including FP-growth and Apriori-based algorithms, where FP-growth is
proved to be much faster than the other FIM implementations."  This
module supplies that comparator: the classic level-wise Apriori with
candidate generation, pruning, and hash-based counting, so the
repository can demonstrate the claim (see
``benchmarks/test_fim_comparison.py``) and cross-check FP-growth's
output against an independently implemented algorithm.
"""

from __future__ import annotations

import itertools
from collections import defaultdict

from repro.trace.instrument import MemoryArena, TraceRecorder
from repro.trace.record import AccessKind


def generate_candidates(frequent_k: list[tuple[int, ...]]) -> list[tuple[int, ...]]:
    """Join step: merge frequent k-itemsets sharing a (k-1)-prefix."""
    candidates: list[tuple[int, ...]] = []
    frequent_set = set(frequent_k)
    for a, b in itertools.combinations(sorted(frequent_k), 2):
        if a[:-1] != b[:-1]:
            continue
        candidate = a + (b[-1],)
        # Prune step: every k-subset must itself be frequent.
        if all(
            candidate[:i] + candidate[i + 1 :] in frequent_set
            for i in range(len(candidate))
        ):
            candidates.append(candidate)
    return candidates


def apriori(
    transactions: list[list[int]],
    min_support: int,
    max_size: int | None = None,
    recorder: TraceRecorder | None = None,
    arena: MemoryArena | None = None,
) -> dict[tuple[int, ...], int]:
    """Level-wise Apriori; returns itemset → support.

    When instrumented, every transaction re-scan records its streaming
    reads — Apriori's defining memory behaviour is that it re-reads the
    *whole* transaction database once per itemset size, where FP-growth
    reads it twice in total.
    """
    base = 0
    item_bytes = 4
    if recorder is not None and arena is not None:
        total = sum(len(t) for t in transactions)
        base = arena.allocate(max(1, total * item_bytes))

    def scan_database() -> None:
        if recorder is not None:
            offset = 0
            for transaction in transactions:
                recorder.record_range(
                    base + offset * item_bytes, len(transaction), item_bytes,
                    AccessKind.READ,
                )
                offset += len(transaction)

    # Level 1.
    counts: dict[int, int] = defaultdict(int)
    scan_database()
    for transaction in transactions:
        for item in transaction:
            counts[item] += 1
    result: dict[tuple[int, ...], int] = {
        (item,): count for item, count in counts.items() if count >= min_support
    }
    frequent_k = sorted(result)
    k = 1
    sets = [frozenset(t) for t in transactions]
    while frequent_k:
        k += 1
        if max_size is not None and k > max_size:
            break
        candidates = generate_candidates(frequent_k)
        if not candidates:
            break
        scan_database()  # one full database pass per level
        supports: dict[tuple[int, ...], int] = defaultdict(int)
        candidate_sets = [(c, frozenset(c)) for c in candidates]
        for transaction in sets:
            for candidate, candidate_set in candidate_sets:
                if candidate_set <= transaction:
                    supports[candidate] += 1
        frequent_k = sorted(
            c for c, support in supports.items() if support >= min_support
        )
        for candidate in frequent_k:
            result[candidate] = supports[candidate]
    return result


def database_passes(result_sizes: int) -> int:
    """Apriori's database scans: one per itemset level (vs 2 for FP-growth)."""
    return result_sizes
