"""Bayesian-network structure learning by hill climbing (the SNP workload).

Section 2.1: "The SNP workload uses the hill climbing search method,
which selects an initial starting point and searches that point's
nearest neighbors.  The neighbor that has the highest score is then made
the new current point.  This procedure iterates until reaching a local
maximum score."

We learn the structure of a Bayesian network over binary SNP loci with
the BIC score.  Neighbors are single-edge operations (add, delete,
reverse) that keep the graph acyclic; scores decompose per family, so
each operation is evaluated by re-scoring only the affected node — the
standard decomposable-score optimization, which is also what makes the
workload's memory behaviour column-scan dominated (counting sufficient
statistics over the genotype matrix).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.trace.instrument import MemoryArena, TraceRecorder


def family_counts(
    data: np.ndarray, node: int, parents: tuple[int, ...]
) -> np.ndarray:
    """Sufficient statistics: counts over (parent configuration, value).

    ``data`` is a (samples, variables) 0/1 matrix.  Returns an array of
    shape (2^|parents|, 2).
    """
    n_configs = 1 << len(parents)
    counts = np.zeros((n_configs, 2), dtype=np.int64)
    if parents:
        config = np.zeros(len(data), dtype=np.int64)
        for bit, parent in enumerate(parents):
            config |= data[:, parent].astype(np.int64) << bit
    else:
        config = np.zeros(len(data), dtype=np.int64)
    values = data[:, node].astype(np.int64)
    np.add.at(counts, (config, values), 1)
    return counts


def family_bic(data: np.ndarray, node: int, parents: tuple[int, ...]) -> float:
    """BIC contribution of one node given its parents.

    log-likelihood of the family minus (parameters/2)·log N.
    """
    counts = family_counts(data, node, parents)
    n = len(data)
    log_likelihood = 0.0
    for row in counts:
        total = int(row.sum())
        if total == 0:
            continue
        for value_count in row:
            if value_count:
                log_likelihood += value_count * math.log(value_count / total)
    parameters = counts.shape[0]  # one free parameter per parent config
    return log_likelihood - 0.5 * parameters * math.log(max(n, 2))


def family_k2(data: np.ndarray, node: int, parents: tuple[int, ...]) -> float:
    """K2 score contribution of one node given its parents.

    The Cooper-Herskovits Bayesian score with uniform Dirichlet priors:
    ``prod_j (r-1)! / (N_j + r - 1)! * prod_k N_jk!`` in log space,
    where r=2 for binary SNP loci.  An alternative to BIC for the hill
    climber (the SNP literature uses both).
    """
    counts = family_counts(data, node, parents)
    log_score = 0.0
    r = 2  # binary variables
    for row in counts:
        total = int(row.sum())
        log_score += math.lgamma(r) - math.lgamma(total + r)
        for value_count in row:
            log_score += math.lgamma(int(value_count) + 1)
    return log_score


@dataclass
class BayesNet:
    """A DAG over ``n`` binary variables, stored as parent sets."""

    n: int
    parents: list[set[int]]

    @classmethod
    def empty(cls, n: int) -> "BayesNet":
        return cls(n=n, parents=[set() for _ in range(n)])

    def has_edge(self, u: int, v: int) -> bool:
        return u in self.parents[v]

    def would_cycle(self, u: int, v: int) -> bool:
        """Whether adding u→v creates a cycle (v already reaches u)."""
        stack = [u]
        seen = set()
        while stack:
            node = stack.pop()
            if node == v:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.parents[node])
        return False

    def edges(self) -> list[tuple[int, int]]:
        return [(u, v) for v in range(self.n) for u in sorted(self.parents[v])]


def score(data: np.ndarray, net: BayesNet) -> float:
    """Total decomposable BIC score of the network."""
    return sum(
        family_bic(data, node, tuple(sorted(net.parents[node])))
        for node in range(net.n)
    )


def hill_climb(
    data: np.ndarray,
    max_parents: int = 3,
    max_iterations: int = 64,
    score_family=family_bic,
) -> tuple[BayesNet, float]:
    """Greedy hill climbing over add/delete/reverse edge operations.

    Exploits score decomposability: a candidate operation is scored by
    recomputing only the families it changes.  Stops at a local maximum
    or after ``max_iterations`` improving moves.  ``score_family`` is
    any decomposable family score (:func:`family_bic` default,
    :func:`family_k2` the Bayesian alternative).
    """
    if data.ndim != 2:
        raise ConfigurationError(f"data must be 2-D, got shape {data.shape}")
    n = data.shape[1]
    net = BayesNet.empty(n)
    family_scores = [score_family(data, node, ()) for node in range(n)]

    def rescored(node: int, parents: set[int]) -> float:
        return score_family(data, node, tuple(sorted(parents)))

    for _ in range(max_iterations):
        best_gain = 1e-9
        best_apply = None
        for u in range(n):
            for v in range(n):
                if u == v:
                    continue
                if not net.has_edge(u, v):
                    # Try add u→v.
                    if len(net.parents[v]) >= max_parents or net.would_cycle(u, v):
                        continue
                    gain = rescored(v, net.parents[v] | {u}) - family_scores[v]
                    if gain > best_gain:
                        best_gain = gain
                        best_apply = ("add", u, v)
                else:
                    # Try delete u→v.
                    gain = rescored(v, net.parents[v] - {u}) - family_scores[v]
                    if gain > best_gain:
                        best_gain = gain
                        best_apply = ("delete", u, v)
                    # Try reverse u→v (delete + add v→u).
                    if len(net.parents[u]) < max_parents:
                        net.parents[v].discard(u)
                        cycle = net.would_cycle(v, u)
                        net.parents[v].add(u)
                        if not cycle:
                            gain = (
                                rescored(v, net.parents[v] - {u})
                                - family_scores[v]
                                + rescored(u, net.parents[u] | {v})
                                - family_scores[u]
                            )
                            if gain > best_gain:
                                best_gain = gain
                                best_apply = ("reverse", u, v)
        if best_apply is None:
            break
        op, u, v = best_apply
        if op == "add":
            net.parents[v].add(u)
            family_scores[v] = rescored(v, net.parents[v])
        elif op == "delete":
            net.parents[v].discard(u)
            family_scores[v] = rescored(v, net.parents[v])
        else:
            net.parents[v].discard(u)
            net.parents[u].add(v)
            family_scores[v] = rescored(v, net.parents[v])
            family_scores[u] = rescored(u, net.parents[u])
    return net, sum(family_scores)


def traced_snp_kernel(
    recorder: TraceRecorder,
    arena: MemoryArena,
    n_sequences: int = 200,
    length: int = 12,
    max_parents: int = 2,
    seed: int = 7,
) -> tuple[BayesNet, float]:
    """Hill-climbing structure learning on an instrumented genotype matrix.

    Each family re-score scans the participating columns of the
    genotype matrix — the strided column walks that dominate SNP's
    memory behaviour (and explain its two-level working set: hot
    counting buffers plus the full 600k x 50 matrix).
    """
    from repro.mining.datasets import genotype_matrix

    data = genotype_matrix(n_sequences=n_sequences, length=length, seed=seed)
    traced = arena.wrap(recorder, data)

    def traced_family_bic(node: int, parents: tuple[int, ...]) -> float:
        for column in (node, *parents):
            traced[:, column]  # traced column scan
        recorder.retire(n_sequences * (1 + len(parents)))
        return family_bic(data, node, parents)

    net = BayesNet.empty(length)
    family_scores = [traced_family_bic(node, ()) for node in range(length)]
    for _ in range(16):
        best_gain = 1e-9
        best_apply = None
        for u in range(length):
            for v in range(length):
                if u == v or net.has_edge(u, v):
                    continue
                if len(net.parents[v]) >= max_parents or net.would_cycle(u, v):
                    continue
                gain = (
                    traced_family_bic(v, tuple(sorted(net.parents[v] | {u})))
                    - family_scores[v]
                )
                if gain > best_gain:
                    best_gain = gain
                    best_apply = (u, v)
        if best_apply is None:
            break
        u, v = best_apply
        net.parents[v].add(u)
        family_scores[v] = traced_family_bic(v, tuple(sorted(net.parents[v])))
    return net, sum(family_scores)
