"""Synthetic dataset generators matching Table 1's input shapes.

The paper's real inputs (HGBASE SNP sequences, a cancer micro-array,
GenBank RNA, the Kosarak click stream, MPEG-2 video) are not
redistributable; these generators produce statistically similar data:

* genotype matrices with allele-frequency structure (SNP: "600k
  sequences, each with length 50");
* micro-array expression with informative and noise genes (SVM-RFE:
  "253 tissue samples, each with 15k genes");
* nucleotide databases with embedded homologs (RSEARCH: "100MB
  database, search sequence size 100");
* power-law transaction sets (FIMI: "990k transactions", Kosarak-like);
* DNA pairs with controlled mutation distance (PLSA: "two sequences in
  30k length");
* Zipf-vocabulary document collections (MDS: "220 pages with 25k
  sequences");
* synthetic sports video with scene cuts and a playfield (SHOT /
  VIEWTYPE: "10-min MPEG-2 video, 720x576").

All generators take an explicit seed and a ``scale`` in (0, 1] that
shrinks the instance while preserving its distributional shape, so the
instrumented kernels can run at Python-feasible sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

NUCLEOTIDES = np.array([0, 1, 2, 3], dtype=np.uint8)  # A C G U/T


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


# -- SNP -------------------------------------------------------------------


def genotype_matrix(
    n_sequences: int = 600, length: int = 50, seed: int = 7
) -> np.ndarray:
    """Binary genotype matrix with linkage between nearby loci.

    Each column is a SNP locus; nearby loci are correlated (as real
    haplotype blocks are), giving the structure-learning search real
    dependencies to find.
    """
    rng = _rng(seed)
    base = rng.random(length)
    data = np.empty((n_sequences, length), dtype=np.uint8)
    for j in range(length):
        if j and rng.random() < 0.6:
            # Linked locus: copy the previous one with noise.
            flips = rng.random(n_sequences) < 0.15
            data[:, j] = np.where(flips, 1 - data[:, j - 1], data[:, j - 1])
        else:
            data[:, j] = (rng.random(n_sequences) < base[j]).astype(np.uint8)
    return data


# -- SVM-RFE -----------------------------------------------------------------


@dataclass(frozen=True)
class MicroArray:
    """Expression matrix plus class labels (+1 / -1)."""

    expression: np.ndarray  # (samples, genes), float64
    labels: np.ndarray  # (samples,), int8
    informative: np.ndarray  # indices of the genes that carry signal


def micro_array(
    samples: int = 64, genes: int = 512, informative: int = 16, seed: int = 11
) -> MicroArray:
    """Two-class expression data where only ``informative`` genes matter."""
    rng = _rng(seed)
    informative = min(informative, genes)
    labels = np.where(rng.random(samples) < 0.5, 1, -1).astype(np.int8)
    expression = rng.normal(0.0, 1.0, size=(samples, genes))
    signal_genes = rng.choice(genes, size=informative, replace=False)
    for g in signal_genes:
        expression[:, g] += labels * rng.uniform(0.8, 1.6)
    return MicroArray(expression, labels, np.sort(signal_genes))


# -- RSEARCH ------------------------------------------------------------------


def rna_database(length: int = 20000, seed: int = 13) -> np.ndarray:
    """A nucleotide database (uint8 codes 0-3)."""
    rng = _rng(seed)
    return rng.integers(0, 4, size=length, dtype=np.uint8)


def rna_query(length: int = 100, seed: int = 17) -> np.ndarray:
    """A query sequence with hairpin structure (reverse-complement halves).

    SCFGs model base-pairing; giving the query genuine stem structure
    makes the CYK scores discriminative.
    """
    rng = _rng(seed)
    half = rng.integers(0, 4, size=length // 2, dtype=np.uint8)
    complement = (3 - half)[::-1]
    full = np.concatenate([half, complement])
    return full[:length]


def plant_homolog(database: np.ndarray, query: np.ndarray, position: int, mutation_rate: float = 0.1, seed: int = 19) -> np.ndarray:
    """Insert a mutated copy of ``query`` into ``database`` at ``position``."""
    rng = _rng(seed)
    copy = query.copy()
    flips = rng.random(len(copy)) < mutation_rate
    copy[flips] = rng.integers(0, 4, size=int(flips.sum()), dtype=np.uint8)
    out = database.copy()
    out[position : position + len(copy)] = copy
    return out


# -- FIMI ------------------------------------------------------------------------


def transactions(
    n_transactions: int = 2000,
    n_items: int = 200,
    avg_length: int = 8,
    zipf_alpha: float = 1.3,
    seed: int = 23,
) -> list[list[int]]:
    """Kosarak-like transaction set: Zipf item popularity, geometric sizes."""
    rng = _rng(seed)
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks ** (-zipf_alpha)
    weights /= weights.sum()
    result: list[list[int]] = []
    for _ in range(n_transactions):
        size = max(1, int(rng.geometric(1.0 / avg_length)))
        size = min(size, n_items)
        items = rng.choice(n_items, size=size, replace=False, p=weights)
        result.append(sorted(int(i) for i in items))
    return result


# -- PLSA --------------------------------------------------------------------------


def dna_pair(
    length: int = 512, divergence: float = 0.2, seed: int = 29
) -> tuple[np.ndarray, np.ndarray]:
    """Two homologous DNA sequences ``divergence`` apart (PLSA's input)."""
    rng = _rng(seed)
    first = rng.integers(0, 4, size=length, dtype=np.uint8)
    second = first.copy()
    mutations = rng.random(length) < divergence
    second[mutations] = rng.integers(0, 4, size=int(mutations.sum()), dtype=np.uint8)
    # A few indels, confined to the final quarter so the bulk of the
    # pair stays position-aligned (local alignment still has real work
    # at the indel sites, and element-wise identity remains meaningful).
    tail_start = 3 * length // 4
    for _ in range(max(1, length // 128)):
        cut = rng.integers(tail_start, len(second) - 4)
        second = np.concatenate(
            [second[:cut], second[cut + 3 :], rng.integers(0, 4, size=3, dtype=np.uint8)]
        )
    return first, second[:length]


# -- MDS ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DocumentSet:
    """Tokenized sentences grouped into documents, plus a query."""

    sentences: list[list[int]]  # token ids
    document_of: list[int]  # sentence -> document index
    query: list[int]
    vocabulary_size: int


def document_set(
    n_documents: int = 24,
    sentences_per_document: int = 12,
    vocabulary_size: int = 600,
    sentence_length: int = 14,
    topic_words: int = 40,
    seed: int = 31,
) -> DocumentSet:
    """Multi-document summarization input with a shared topic.

    All documents mix a shared topic vocabulary (so they overlap, which
    is what makes redundancy-aware MMR meaningful) with per-document
    noise words; the query is drawn from the topic.
    """
    rng = _rng(seed)
    topic = rng.choice(vocabulary_size, size=topic_words, replace=False)
    sentences: list[list[int]] = []
    document_of: list[int] = []
    for d in range(n_documents):
        noise = rng.choice(vocabulary_size, size=topic_words, replace=False)
        for _ in range(sentences_per_document):
            k_topic = rng.integers(2, sentence_length // 2 + 2)
            words = list(rng.choice(topic, size=k_topic)) + list(
                rng.choice(noise, size=sentence_length - k_topic)
            )
            sentences.append([int(w) for w in words])
            document_of.append(d)
    query = [int(w) for w in rng.choice(topic, size=6, replace=False)]
    return DocumentSet(sentences, document_of, query, vocabulary_size)


# -- SHOT / VIEWTYPE ------------------------------------------------------------------


@dataclass(frozen=True)
class SyntheticVideo:
    """Frames plus ground truth for shot boundaries and view types."""

    frames: np.ndarray  # (n, h, w, 3) uint8 RGB
    shot_boundaries: list[int]  # frame indices starting new shots
    view_types: list[str]  # per-shot ground-truth view type


VIEW_TYPES = ("global", "medium", "closeup", "outofview")


def synthetic_video(
    n_frames: int = 60,
    height: int = 36,
    width: int = 48,
    mean_shot_length: int = 12,
    seed: int = 37,
) -> SyntheticVideo:
    """Sports-broadcast-like synthetic video.

    Each shot has a dominant playfield color occupying an area fraction
    characteristic of its view type (global > medium > close-up >
    out-of-view), plus per-frame noise and slow drift, so both the
    histogram-difference shot detector and the dominant-color view
    classifier have realistic signal.
    """
    rng = _rng(seed)
    frames = np.zeros((n_frames, height, width, 3), dtype=np.uint8)
    boundaries: list[int] = [0]
    view_types: list[str] = []
    field_fraction = {"global": 0.7, "medium": 0.4, "closeup": 0.12, "outofview": 0.0}
    # One stadium per video: the playfield color is constant across
    # shots, which is what lets the accumulated-histogram training find
    # it as the dominant color.
    field_color = np.array([40, rng.integers(150, 200), 50], dtype=np.uint8)
    frame = 0
    while frame < n_frames:
        shot_len = max(3, int(rng.poisson(mean_shot_length)))
        view = VIEW_TYPES[rng.integers(0, len(VIEW_TYPES))]
        view_types.append(view)
        background = rng.integers(0, 255, size=3).astype(np.uint8)
        rows = int(height * field_fraction[view])
        for f in range(frame, min(frame + shot_len, n_frames)):
            img = np.empty((height, width, 3), dtype=np.uint8)
            img[:, :] = background
            if rows:
                img[height - rows :, :] = field_color
                # Players: small non-field blobs on the field.
                for _ in range(rng.integers(1, 4)):
                    r = rng.integers(height - rows, height)
                    c = rng.integers(0, width - 2)
                    img[r : r + 2, c : c + 2] = rng.integers(0, 255, size=3)
            noise = rng.integers(0, 12, size=img.shape, dtype=np.uint8)
            frames[f] = np.clip(img.astype(np.int16) + noise, 0, 255).astype(np.uint8)
        frame += shot_len
        if frame < n_frames:
            boundaries.append(frame)
    return SyntheticVideo(frames, boundaries, view_types)
