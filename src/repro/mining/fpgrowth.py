"""Frequent-itemset mining with FP-growth (the FIMI workload).

Section 2.3: "The FIMI workload in use is based on the FP-Zhu package,
which includes three stages: first-scan, FP-tree construction, and
mining."  This module implements exactly those stages:

1. **first scan** — count item supports and order items by frequency;
2. **FP-tree construction** — insert frequency-ordered transactions
   into a prefix tree with header-table node chains;
3. **mining** — recursive conditional-pattern-base / conditional-tree
   FP-growth.

A brute-force enumerator (:func:`bruteforce_frequent_itemsets`) serves
as the test oracle.  The traced kernel runs the same code with a
:class:`~repro.trace.instrument.TraceRecorder` wired to the tree, so
node traversals emit the pointer-heavy access pattern that gives FIMI
its cache behaviour (a big shared read-only tree + per-thread private
conditional trees — the paper's category-B sharing pattern).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.trace.instrument import MemoryArena, TraceRecorder
from repro.trace.record import AccessKind

#: Modelled size of one FP-tree node in guest memory (pointers, count,
#: item id, padding) — used to lay nodes out in the trace address space.
NODE_BYTES = 64


@dataclass
class FPNode:
    """One prefix-tree node."""

    item: int
    count: int = 0
    parent: "FPNode | None" = None
    children: dict[int, "FPNode"] = field(default_factory=dict)
    next_homonym: "FPNode | None" = None  # header-table chain
    node_id: int = 0  # position in the arena layout


class FPTree:
    """An FP-tree with a header table, optionally memory-instrumented.

    When a recorder is supplied, every node visit during construction
    and mining records a read/write at the node's modelled address.
    """

    def __init__(
        self,
        min_support: int,
        recorder: TraceRecorder | None = None,
        arena: MemoryArena | None = None,
    ) -> None:
        self.min_support = min_support
        self.root = FPNode(item=-1)
        self.header: dict[int, FPNode] = {}
        self.supports: dict[int, int] = {}
        self.recorder = recorder
        self._base = arena.allocate(1 << 20) if (recorder and arena) else 0
        self._next_node_id = 1

    # -- instrumentation ----------------------------------------------------

    def _touch(self, node: FPNode, kind: AccessKind) -> None:
        if self.recorder is not None:
            self.recorder.record(self._base + node.node_id * NODE_BYTES, kind)

    def _new_node(self, item: int, parent: FPNode) -> FPNode:
        node = FPNode(item=item, parent=parent, node_id=self._next_node_id)
        self._next_node_id += 1
        self._touch(node, AccessKind.WRITE)
        return node

    # -- construction ---------------------------------------------------------

    def insert(self, transaction: list[int]) -> None:
        """Insert a frequency-ordered transaction."""
        node = self.root
        for item in transaction:
            self._touch(node, AccessKind.READ)
            child = node.children.get(item)
            if child is None:
                child = self._new_node(item, node)
                node.children[item] = child
                head = self.header.get(item)
                child.next_homonym = head
                self.header[item] = child
            child.count += 1
            self._touch(child, AccessKind.WRITE)
            self.supports[item] = self.supports.get(item, 0) + 1
            node = child

    # -- mining ------------------------------------------------------------------

    def _prefix_paths(self, item: int) -> list[tuple[list[int], int]]:
        """Conditional pattern base of ``item``: (path, count) pairs."""
        paths: list[tuple[list[int], int]] = []
        node = self.header.get(item)
        while node is not None:
            self._touch(node, AccessKind.READ)
            path: list[int] = []
            ancestor = node.parent
            while ancestor is not None and ancestor.item != -1:
                self._touch(ancestor, AccessKind.READ)
                path.append(ancestor.item)
                ancestor = ancestor.parent
            if path:
                paths.append((path[::-1], node.count))
            node = node.next_homonym
        return paths

    def mine(self, suffix: tuple[int, ...] = ()) -> dict[tuple[int, ...], int]:
        """FP-growth: all frequent itemsets with their supports."""
        result: dict[tuple[int, ...], int] = {}
        # Items in increasing support order (standard FP-growth order).
        items = sorted(self.header, key=lambda i: self.supports.get(i, 0))
        for item in items:
            support = self.supports.get(item, 0)
            if support < self.min_support:
                continue
            itemset = tuple(sorted((item, *suffix)))
            result[itemset] = support
            paths = self._prefix_paths(item)
            conditional = FPTree(self.min_support, self.recorder)
            conditional._base = self._base  # conditional trees share the arena block
            conditional._next_node_id = self._next_node_id
            for path, count in paths:
                conditional._insert_counted(path, count)
            result.update(conditional.mine(itemset))
        return result

    def _insert_counted(self, transaction: list[int], count: int) -> None:
        """Insert a path with multiplicity ``count`` (conditional trees)."""
        node = self.root
        for item in transaction:
            self._touch(node, AccessKind.READ)
            child = node.children.get(item)
            if child is None:
                child = self._new_node(item, node)
                node.children[item] = child
                head = self.header.get(item)
                child.next_homonym = head
                self.header[item] = child
            child.count += count
            self._touch(child, AccessKind.WRITE)
            self.supports[item] = self.supports.get(item, 0) + count
            node = child

    @property
    def node_count(self) -> int:
        return self._next_node_id - 1


def first_scan(transactions: list[list[int]], min_support: int) -> dict[int, int]:
    """Stage 1: item supports, keeping only frequent items."""
    counts: dict[int, int] = {}
    for transaction in transactions:
        for item in transaction:
            counts[item] = counts.get(item, 0) + 1
    return {item: c for item, c in counts.items() if c >= min_support}


def order_transaction(
    transaction: list[int], frequent: dict[int, int]
) -> list[int]:
    """Filter to frequent items and order by decreasing support."""
    kept = [i for i in set(transaction) if i in frequent]
    return sorted(kept, key=lambda i: (-frequent[i], i))


def fp_growth(
    transactions: list[list[int]],
    min_support: int,
    recorder: TraceRecorder | None = None,
    arena: MemoryArena | None = None,
) -> dict[tuple[int, ...], int]:
    """Full three-stage FIMI pipeline; returns itemset → support."""
    frequent = first_scan(transactions, min_support)
    tree = FPTree(min_support, recorder, arena)
    for transaction in transactions:
        ordered = order_transaction(transaction, frequent)
        if ordered:
            tree.insert(ordered)
    return tree.mine()


def bruteforce_frequent_itemsets(
    transactions: list[list[int]], min_support: int, max_size: int = 4
) -> dict[tuple[int, ...], int]:
    """Oracle: enumerate all itemsets up to ``max_size`` and count support."""
    items = sorted({i for t in transactions for i in t})
    sets = [set(t) for t in transactions]
    result: dict[tuple[int, ...], int] = {}
    for size in range(1, max_size + 1):
        for combo in itertools.combinations(items, size):
            needed = set(combo)
            support = sum(1 for s in sets if needed <= s)
            if support >= min_support:
                result[combo] = support
    return result
