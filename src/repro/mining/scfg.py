"""Stochastic context-free grammars and CYK decoding (the RSEARCH workload).

Section 2.2: "A Cocke-Younger-Kasami (CYK) algorithm is a basic parsing
algorithm for context-free language.  RSEARCH uses it for RNA secondary
structure homolog searches.  It decodes the Stochastic Context-Free
Grammar (SCFG) to search a single RNA sequence against the database to
find its homologous RNAs."

We implement a small RNA covariance-style SCFG in Chomsky normal form
with log-probability rules, the O(n^3) CYK *inside* algorithm that
scores a window, and the database scan that slides the query-sized
window along the database — the access pattern that gives RSEARCH its
streaming-over-database + hot-DP-table memory profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.trace.instrument import MemoryArena, TraceRecorder

NEG_INF = -1e18


@dataclass(frozen=True)
class SCFG:
    """A CNF stochastic grammar: A→BC and A→terminal rules in log space.

    Attributes:
        n_nonterminals: nonterminal count; 0 is the start symbol.
        binary_rules: (A, B, C, log_p) entries for A → B C.
        terminal_logp: array (n_nonterminals, 4): log P(A → symbol).
    """

    n_nonterminals: int
    binary_rules: tuple[tuple[int, int, int, float], ...]
    terminal_logp: np.ndarray

    def __post_init__(self) -> None:
        if self.terminal_logp.shape != (self.n_nonterminals, 4):
            raise ConfigurationError(
                f"terminal_logp must be ({self.n_nonterminals}, 4), "
                f"got {self.terminal_logp.shape}"
            )


def rna_hairpin_grammar(seed: int = 41) -> SCFG:
    """A small grammar rewarding base-paired (complementary) structure.

    Nonterminals: 0=S (start/pair), 1=L (left extension), 2=E (emit).
    S → L L rewards pairing-friendly splits; terminal probabilities of S
    favour the complementary alphabet halves, so hairpin-shaped queries
    score above random sequence — enough structure for homolog search
    experiments without a full covariance model.
    """
    rng = np.random.default_rng(seed)
    terminal = np.log(rng.dirichlet(np.ones(4), size=3) + 1e-9)
    # Bias S's emissions toward A/U (codes 0/3), E's toward C/G (1/2).
    terminal[0] = np.log(np.array([0.35, 0.15, 0.15, 0.35]))
    terminal[2] = np.log(np.array([0.15, 0.35, 0.35, 0.15]))
    rules = (
        (0, 1, 2, np.log(0.45)),
        (0, 2, 1, np.log(0.25)),
        (1, 0, 2, np.log(0.3)),
        (1, 2, 2, np.log(0.3)),
        (2, 2, 2, np.log(0.2)),
    )
    return SCFG(n_nonterminals=3, binary_rules=rules, terminal_logp=terminal)


def cyk_inside(grammar: SCFG, sequence: np.ndarray) -> float:
    """Log-probability of ``sequence`` under the grammar (max-derivation).

    The classic CYK chart: ``chart[span, start, A]`` holds the best log
    probability that nonterminal A derives the subsequence.  Returns the
    start symbol's score over the whole sequence.
    """
    n = len(sequence)
    if n == 0:
        return NEG_INF
    k = grammar.n_nonterminals
    chart = np.full((n, n, k), NEG_INF)
    chart[0, np.arange(n), :] = grammar.terminal_logp[:, sequence].T
    for span in range(2, n + 1):
        for start in range(0, n - span + 1):
            cell = chart[span - 1, start]
            for a, b, c, log_p in grammar.binary_rules:
                best = cell[a]
                for split in range(1, span):
                    left = chart[split - 1, start, b]
                    if left <= NEG_INF / 2:
                        continue
                    right = chart[span - split - 1, start + split, c]
                    candidate = log_p + left + right
                    if candidate > best:
                        best = candidate
                cell[a] = best
    return float(chart[n - 1, 0, 0])


def null_model_logp(sequence: np.ndarray) -> float:
    """Uniform-background score used to normalize window scores."""
    return float(len(sequence) * np.log(0.25))


class PairingSCFG:
    """A structure-aware SCFG in the RNA-folding normal form.

    Rules (with log scores rather than normalized probabilities, as
    covariance-model bit scores are):

    * ``S → a S a'`` — emit a base *pair*; complementary pairs (A-U,
      C-G) score ``pair_bonus``, others ``mismatch_penalty``;
    * ``S → a S`` / ``S → S a`` — unpaired emission, ``unpaired_score``;
    * ``S → S S`` — bifurcation, free.

    This is the Nussinov-style DP that actual RNA homolog search decodes
    with CYK; hairpin-structured windows (many nested complementary
    pairs) score far above random sequence, which is what lets
    :func:`rsearch_scan` locate planted homologs.
    """

    def __init__(
        self,
        pair_bonus: float = 2.0,
        mismatch_penalty: float = -1.5,
        unpaired_score: float = -0.3,
    ) -> None:
        self.pair_bonus = pair_bonus
        self.mismatch_penalty = mismatch_penalty
        self.unpaired_score = unpaired_score

    def pair_score(self, left: int, right: int) -> float:
        """A-U (0,3) and C-G (1,2) are Watson-Crick complements."""
        return self.pair_bonus if left + right == 3 else self.mismatch_penalty

    def cyk_score(self, sequence: np.ndarray) -> float:
        """Best-derivation log score of ``sequence`` (O(n^3) CYK).

        Every base is either part of a pair (contributing half the pair
        score) or unpaired (contributing ``unpaired_score``); nested and
        adjacent (bifurcated) structures are both explored.
        """
        n = len(sequence)
        if n == 0:
            return 0.0
        score = np.full((n, n), 0.0)
        for i in range(n):
            score[i, i] = self.unpaired_score  # single unpaired base
        for span in range(2, n + 1):
            for start in range(0, n - span + 1):
                end = start + span - 1
                best = score[start + 1, end] + self.unpaired_score  # S → a S
                candidate = score[start, end - 1] + self.unpaired_score  # S → S a
                if candidate > best:
                    best = candidate
                inner = score[start + 1, end - 1] if span > 2 else 0.0
                candidate = inner + self.pair_score(
                    int(sequence[start]), int(sequence[end])
                )  # S → a S a'
                if candidate > best:
                    best = candidate
                for split in range(start + 1, end):  # S → S S
                    candidate = score[start, split] + score[split + 1, end]
                    if candidate > best:
                        best = candidate
                score[start, end] = best
        return float(score[0, n - 1])


def rsearch_scan(
    grammar: "SCFG | PairingSCFG",
    database: np.ndarray,
    window: int,
    step: int = 1,
    query: np.ndarray | None = None,
    sequence_weight: float = 2.0,
) -> list[tuple[int, float]]:
    """Slide a CYK window along the database; returns (position, bitscore).

    When a ``query`` is given the score combines structure (CYK bit
    score of the window) with sequence similarity to the query
    (Smith-Waterman), mirroring RSEARCH's joint sequence+structure
    RIBOSUM scoring — structure alone cannot separate homologs from
    background because random RNA also folds well.
    """
    if window <= 0 or step <= 0:
        raise ConfigurationError("window and step must be positive")
    scores: list[tuple[int, float]] = []
    for start in range(0, max(1, len(database) - window + 1), step):
        segment = database[start : start + window]
        bits = window_bitscore(grammar, segment)
        if query is not None:
            from repro.mining.align import sw_best_score

            bits += sequence_weight * sw_best_score(segment, query)
        scores.append((start, bits))
    return scores


def window_bitscore(grammar: "SCFG | PairingSCFG", segment: np.ndarray) -> float:
    """Null-model-normalized score of one window under either grammar."""
    if isinstance(grammar, PairingSCFG):
        # The pairing grammar is already in score space; normalize
        # against the all-unpaired derivation of the same window.
        return float(
            grammar.cyk_score(segment) - len(segment) * grammar.unpaired_score
        )
    raw = cyk_inside(grammar, segment)
    return float((raw - null_model_logp(segment)) / np.log(2.0))


def traced_rsearch_kernel(
    recorder: TraceRecorder,
    arena: MemoryArena,
    database_length: int = 512,
    window: int = 24,
    step: int = 12,
    seed: int = 13,
) -> list[tuple[int, float]]:
    """Database scan on instrumented buffers.

    The trace shows RSEARCH's two components: a forward streaming scan
    of the (large, shared) database and intense reuse of the (small,
    private) CYK chart — matching the paper's description of a big
    shared database with per-thread private DP state.
    """
    from repro.mining.datasets import rna_database

    grammar = PairingSCFG()
    database = rna_database(length=database_length, seed=seed)
    traced_db = arena.wrap(recorder, database)
    chart = arena.array(recorder, (window, window), dtype=np.float64)
    scores: list[tuple[int, float]] = []
    for start in range(0, max(1, database_length - window + 1), step):
        segment = traced_db[start : start + window]  # traced streaming read
        for span in range(2, window + 1):  # chart reuse pattern
            chart[span - 1, :]
            chart[span - 2, :]
        recorder.retire(window * window * 2)
        scores.append((start, window_bitscore(grammar, segment)))
    return scores
