"""Multi-document summarization: graph ranking + MMR (the MDS workload).

Section 2.5: the MDS workload "combines the advantages of the previous
two methods, the graph-based ranking algorithm and the Maximum Marginal
Relevance (MMR) algorithm, not only considering the similarities between
a user's query and the main topic of the documents, but also minimizing
the possible redundancy in the summary result."

Pipeline:

1. sentences → sparse term vectors → cosine similarity graph;
2. query-biased power iteration over the graph (topic-sensitive
   TextRank / personalized PageRank);
3. MMR selection: repeatedly take the sentence maximizing
   ``λ·rank − (1−λ)·max-similarity-to-selected``.

The workload's defining memory property (Section 4.3) is "a sparse
matrix of 300MB" referenced with no cache-size benefit up to 256 MB;
the analog here is the sentence-similarity matrix, which at paper scale
(25k sentences) is exactly such an object.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.mining.datasets import DocumentSet
from repro.trace.instrument import MemoryArena, TraceRecorder


def term_vectors(sentences: list[list[int]], vocabulary_size: int) -> np.ndarray:
    """Term-frequency vectors, L2-normalized (rows are sentences)."""
    matrix = np.zeros((len(sentences), vocabulary_size))
    for i, sentence in enumerate(sentences):
        for token in sentence:
            matrix[i, token] += 1.0
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return matrix / norms


def similarity_matrix(vectors: np.ndarray) -> np.ndarray:
    """Cosine similarities with a zeroed diagonal."""
    sims = vectors @ vectors.T
    np.fill_diagonal(sims, 0.0)
    return sims


def query_bias(vectors: np.ndarray, query: list[int], vocabulary_size: int) -> np.ndarray:
    """Normalized query-similarity vector (the personalization vector)."""
    q = np.zeros(vocabulary_size)
    for token in query:
        q[token] += 1.0
    norm = np.linalg.norm(q)
    if norm:
        q /= norm
    bias = vectors @ q
    total = bias.sum()
    return bias / total if total else np.full(len(vectors), 1.0 / len(vectors))


def rank_sentences(
    similarities: np.ndarray,
    bias: np.ndarray,
    damping: float = 0.85,
    iterations: int = 50,
    tolerance: float = 1e-8,
) -> np.ndarray:
    """Query-biased power iteration (personalized PageRank on the graph)."""
    if not 0 < damping < 1:
        raise ConfigurationError(f"damping must be in (0,1), got {damping}")
    n = len(similarities)
    column_sums = similarities.sum(axis=0)
    column_sums[column_sums == 0] = 1.0
    transition = similarities / column_sums
    ranks = np.full(n, 1.0 / n)
    for _ in range(iterations):
        updated = (1 - damping) * bias + damping * (transition @ ranks)
        if np.abs(updated - ranks).sum() < tolerance:
            ranks = updated
            break
        ranks = updated
    return ranks


def mmr_select(
    ranks: np.ndarray,
    similarities: np.ndarray,
    k: int,
    lambda_relevance: float = 0.7,
) -> list[int]:
    """Maximum-marginal-relevance selection of ``k`` sentences."""
    if not 0 <= lambda_relevance <= 1:
        raise ConfigurationError(
            f"lambda_relevance must be in [0,1], got {lambda_relevance}"
        )
    selected: list[int] = []
    candidates = set(range(len(ranks)))
    while candidates and len(selected) < k:
        best, best_score = -1, -np.inf
        for i in candidates:
            redundancy = max((similarities[i, j] for j in selected), default=0.0)
            mmr = lambda_relevance * ranks[i] - (1 - lambda_relevance) * redundancy
            if mmr > best_score:
                best, best_score = i, mmr
        selected.append(best)
        candidates.discard(best)
    return selected


def summarize(documents: DocumentSet, k: int = 5, lambda_relevance: float = 0.7) -> list[int]:
    """Full MDS pipeline: returns the selected sentence indices."""
    vectors = term_vectors(documents.sentences, documents.vocabulary_size)
    sims = similarity_matrix(vectors)
    bias = query_bias(vectors, documents.query, documents.vocabulary_size)
    ranks = rank_sentences(sims, bias)
    return mmr_select(ranks, sims, k, lambda_relevance)


def summary_quality(
    documents: DocumentSet, selected: list[int]
) -> tuple[float, float]:
    """Evaluate a summary: (query coverage, redundancy).

    Coverage is the fraction of query terms appearing in the selected
    sentences; redundancy is the mean pairwise token-overlap (Jaccard)
    among them.  A good MMR summary has high coverage and low
    redundancy — the two objectives Section 2.5 says the MDS workload
    balances.
    """
    if not selected:
        return 0.0, 0.0
    chosen = [set(documents.sentences[i]) for i in selected]
    union = set().union(*chosen)
    coverage = len(set(documents.query) & union) / max(1, len(set(documents.query)))
    if len(chosen) < 2:
        return coverage, 0.0
    overlaps = []
    for i in range(len(chosen)):
        for j in range(i + 1, len(chosen)):
            intersection = len(chosen[i] & chosen[j])
            union_size = len(chosen[i] | chosen[j])
            overlaps.append(intersection / union_size if union_size else 0.0)
    return coverage, sum(overlaps) / len(overlaps)


@dataclass(frozen=True)
class TracedSummary:
    selected: list[int]
    sentences: int


def traced_mds_kernel(
    recorder: TraceRecorder,
    arena: MemoryArena,
    n_documents: int = 10,
    sentences_per_document: int = 8,
    k: int = 5,
    iterations: int = 8,
    seed: int = 31,
) -> TracedSummary:
    """MDS on an instrumented similarity matrix.

    Each power-iteration step streams the entire similarity matrix row
    by row — the huge-matrix scan that makes MDS insensitive to any
    cache smaller than the matrix (Figure 4's flat curve).
    """
    from repro.mining.datasets import document_set

    documents = document_set(
        n_documents=n_documents,
        sentences_per_document=sentences_per_document,
        seed=seed,
    )
    vectors = term_vectors(documents.sentences, documents.vocabulary_size)
    sims = similarity_matrix(vectors)
    bias = query_bias(vectors, documents.query, documents.vocabulary_size)
    traced_sims = arena.wrap(recorder, sims)
    n = len(sims)
    ranks_buffer = arena.array(recorder, n)
    ranks_buffer.scan_write(1.0 / n)
    column_sums = sims.sum(axis=0)
    column_sums[column_sums == 0] = 1.0
    for _ in range(iterations):
        ranks = ranks_buffer.scan_read().copy()
        updated = np.empty(n)
        for i in range(n):
            row = traced_sims[i, :]  # traced matrix-row stream
            recorder.retire(2 * n)
            updated[i] = 0.15 * bias[i] + 0.85 * float((row / column_sums) @ ranks)
        ranks_buffer.scan_write(updated)
    final_ranks = ranks_buffer.scan_read()
    selected = mmr_select(final_ranks, sims, k)
    return TracedSummary(selected=selected, sentences=n)
