"""Linear SVM training and recursive feature elimination (SVM-RFE).

Section 2.2: "Support Vector Machines-Recursive Feature Elimination
(SVM-RFE) is one of feature selection method, which is extensively used
in disease finding (gene expression).  The selection is obtained by a
recursive feature elimination process: at each RFE step, a gene is
discarded from the active variables of a SVM classification model,
according to some prior criteria."

The SVM is a linear soft-margin machine trained in the dual by a
simplified SMO-style coordinate ascent (adequate for the micro-array
scale and easy to verify); the RFE criterion is the standard Guyon
ranking, ``w_j^2`` — at each step the genes with the smallest squared
weight are dropped and the machine is retrained.

The traced kernel runs the same training loop on instrumented buffers:
SVM-RFE's dominant access pattern is repeated full passes over the
(samples x active-genes) expression matrix — the cyclic re-scan that
gives the workload its 4 MB working set in Figure 4 and its strong
response to larger cache lines in Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.trace.instrument import MemoryArena, TraceRecorder


@dataclass(frozen=True)
class SVMModel:
    """A trained linear SVM."""

    weights: np.ndarray
    bias: float
    alphas: np.ndarray

    def decision(self, x: np.ndarray) -> np.ndarray:
        return x @ self.weights + self.bias

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.where(self.decision(x) >= 0, 1, -1)


def train_svm(
    x: np.ndarray,
    y: np.ndarray,
    c: float = 1.0,
    epochs: int = 40,
    tolerance: float = 1e-4,
    seed: int = 0,
) -> SVMModel:
    """Train a linear SVM by dual coordinate ascent.

    Implements the Hsieh et al. dual coordinate-descent update for
    L1-loss SVMs: for each example, the optimal single-variable step is
    ``(1 - y_i w·x_i) / ||x_i||^2`` clipped to [0, C].
    """
    if x.ndim != 2:
        raise ConfigurationError(f"x must be 2-D, got shape {x.shape}")
    if set(np.unique(y)) - {1, -1}:
        raise ConfigurationError("labels must be +1/-1")
    n, d = x.shape
    rng = np.random.default_rng(seed)
    alphas = np.zeros(n)
    w = np.zeros(d)
    norms = np.einsum("ij,ij->i", x, x) + 1e-12
    for _ in range(epochs):
        largest_step = 0.0
        for i in rng.permutation(n):
            margin = y[i] * (x[i] @ w)
            gradient = margin - 1.0
            step = -gradient / norms[i]
            new_alpha = float(np.clip(alphas[i] + step, 0.0, c))
            delta = new_alpha - alphas[i]
            if delta:
                w += delta * y[i] * x[i]
                alphas[i] = new_alpha
                largest_step = max(largest_step, abs(delta))
        if largest_step < tolerance:
            break
    support = alphas > 1e-8
    if support.any():
        margins = x[support] @ w
        bias = float(np.mean(y[support] - margins))
    else:
        bias = 0.0
    return SVMModel(weights=w, bias=bias, alphas=alphas)


def rfe(
    x: np.ndarray,
    y: np.ndarray,
    keep: int = 8,
    drop_fraction: float = 0.5,
    c: float = 1.0,
) -> list[int]:
    """Recursive feature elimination; returns surviving gene indices.

    Each round trains on the active genes and discards the
    ``drop_fraction`` with the smallest ``w_j^2`` (at least one), until
    ``keep`` genes remain — the classic SVM-RFE schedule.
    """
    if keep <= 0:
        raise ConfigurationError(f"keep must be positive, got {keep}")
    active = list(range(x.shape[1]))
    while len(active) > keep:
        model = train_svm(x[:, active], y, c=c)
        ranking = np.argsort(model.weights**2)
        n_drop = max(1, min(int(len(active) * drop_fraction), len(active) - keep))
        dropped = set(int(ranking[i]) for i in range(n_drop))
        active = [g for j, g in enumerate(active) if j not in dropped]
    return active


def traced_rfe_kernel(
    recorder: TraceRecorder,
    arena: MemoryArena,
    samples: int = 24,
    genes: int = 96,
    keep: int = 6,
    seed: int = 11,
) -> list[int]:
    """SVM-RFE on instrumented buffers, emitting the real access trace.

    Keeps the algorithm identical but routes every expression-matrix
    row read and weight update through :class:`TracedArray`, so the
    trace shows the cyclic matrix-scan structure.
    """
    from repro.mining.datasets import micro_array

    data = micro_array(samples=samples, genes=genes, informative=max(4, keep), seed=seed)
    x = arena.wrap(recorder, data.expression.copy())
    y = data.labels
    active = list(range(genes))
    weights = arena.array(recorder, genes)
    while len(active) > keep:
        # One training epoch per RFE round (traced, reduced-cost variant).
        weights.scan_write(0.0)
        w = weights.data
        alphas = np.zeros(samples)
        for _ in range(4):
            for i in range(samples):
                row = x[i, :]  # traced full-row read
                recorder.retire(len(active) * 2)  # dot-product arithmetic
                margin = y[i] * float(row[active] @ w[active])
                step = (1.0 - margin) / (float(row[active] @ row[active]) + 1e-12)
                new_alpha = float(np.clip(alphas[i] + step, 0.0, 1.0))
                delta = new_alpha - alphas[i]
                if delta:
                    w[active] += delta * y[i] * row[active]
                    weights.scan_write(w)
                    alphas[i] = new_alpha
        ranking = sorted(range(len(active)), key=lambda j: w[active[j]] ** 2)
        n_drop = max(1, len(active) // 2)
        if len(active) - n_drop < keep:
            n_drop = len(active) - keep
        dropped = set(ranking[:n_drop])
        active = [g for j, g in enumerate(active) if j not in dropped]
    return active
