"""Video mining: shot-boundary detection and view-type classification.

Section 2.6 describes both video workloads:

* **SHOT** — "a color histogram of 48 bins in RGB space, 16 bins for
  each channel, and a pixel-wise difference feature, as a supplement to
  the color histogram, are used to introduce spatial information and
  infer the final shot information."
* **VIEWTYPE** — "uses playfield area and player size to determine four
  kinds of view type: global, medium, close-up, and out of view ...
  playfield segmentation by the HSV dominant color of playfield and
  connect-component analysis.  The dominant color of the playfield is
  adaptively trained by the accumulation of the HSV color histogram on
  a lot of frames."

Both pipelines are implemented here on raw RGB frame arrays, plus
traced kernels: SHOT streams frames with a constant stride (its
signature linear access pattern, which the paper credits for its large
line-size gains), while VIEWTYPE makes two passes per frame
(segmentation + component analysis) over ~1 MB/thread of private data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.errors import ConfigurationError
from repro.trace.instrument import MemoryArena, TraceRecorder

HIST_BINS_PER_CHANNEL = 16  # 48 bins total: 16 per RGB channel


# -- SHOT -------------------------------------------------------------------


def rgb_histogram_48(frame: np.ndarray) -> np.ndarray:
    """The paper's 48-bin color histogram: 16 bins per RGB channel."""
    if frame.ndim != 3 or frame.shape[2] != 3:
        raise ConfigurationError(f"frame must be (h, w, 3), got {frame.shape}")
    bins = []
    for channel in range(3):
        histogram, _ = np.histogram(
            frame[:, :, channel], bins=HIST_BINS_PER_CHANNEL, range=(0, 256)
        )
        bins.append(histogram)
    counts = np.concatenate(bins).astype(np.float64)
    return counts / frame.shape[0] / frame.shape[1]


def histogram_difference(h1: np.ndarray, h2: np.ndarray) -> float:
    """L1 distance between consecutive frames' histograms."""
    return float(np.abs(h1 - h2).sum())


def pixel_difference(f1: np.ndarray, f2: np.ndarray) -> float:
    """Mean absolute pixel-wise difference (the spatial supplement)."""
    return float(
        np.abs(f1.astype(np.int16) - f2.astype(np.int16)).mean() / 255.0
    )


def detect_shots(
    frames: np.ndarray,
    histogram_threshold: float = 0.6,
    pixel_threshold: float = 0.18,
) -> list[int]:
    """Shot boundaries: frames where both features jump.

    A boundary is declared when the histogram difference exceeds its
    threshold and the pixel-wise difference confirms it (the supplement
    suppresses flash/ motion false positives).  Frame 0 always starts a
    shot.
    """
    boundaries = [0]
    previous_histogram = rgb_histogram_48(frames[0])
    for f in range(1, len(frames)):
        histogram = rgb_histogram_48(frames[f])
        h_diff = histogram_difference(previous_histogram, histogram)
        p_diff = pixel_difference(frames[f - 1], frames[f])
        if h_diff > histogram_threshold and p_diff > pixel_threshold:
            boundaries.append(f)
        previous_histogram = histogram
    return boundaries


# -- HSV / VIEWTYPE ---------------------------------------------------------------


def rgb_to_hsv(frame: np.ndarray) -> np.ndarray:
    """Vectorized RGB→HSV (H in [0,360), S,V in [0,1])."""
    rgb = frame.astype(np.float64) / 255.0
    r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]
    maximum = rgb.max(axis=-1)
    minimum = rgb.min(axis=-1)
    chroma = maximum - minimum
    hue = np.zeros_like(maximum)
    mask = chroma > 0
    r_max = mask & (maximum == r)
    g_max = mask & (maximum == g) & ~r_max
    b_max = mask & ~r_max & ~g_max
    hue[r_max] = (60 * ((g - b) / np.where(chroma == 0, 1, chroma)))[r_max] % 360
    hue[g_max] = (60 * ((b - r) / np.where(chroma == 0, 1, chroma)) + 120)[g_max]
    hue[b_max] = (60 * ((r - g) / np.where(chroma == 0, 1, chroma)) + 240)[b_max]
    saturation = np.where(maximum > 0, chroma / np.where(maximum == 0, 1, maximum), 0.0)
    return np.stack([hue, saturation, maximum], axis=-1)


def train_dominant_color(frames: np.ndarray, hue_bins: int = 36) -> tuple[float, float]:
    """Adaptively train the playfield's dominant HSV color.

    Per the paper, the dominant color is "adaptively trained by the
    accumulation of the HSV color histogram on a lot of frames".  Each
    frame votes for its own dominant hue bin (saturation-and-value
    weighted, so grey areas do not vote); the playfield hue recurs
    across shots while backgrounds change shot to shot, so the modal
    per-frame dominant bin is the playfield.  Returns the hue range
    ``(hue_low, hue_high)`` of that bin.
    """
    votes = np.zeros(hue_bins)
    for frame in frames:
        hsv = rgb_to_hsv(frame)
        hue = hsv[..., 0].ravel()
        weight = (hsv[..., 1] * hsv[..., 2]).ravel()
        histogram, _ = np.histogram(hue, bins=hue_bins, range=(0, 360), weights=weight)
        if histogram.max() > 0:
            votes[int(np.argmax(histogram))] += 1
    dominant = int(np.argmax(votes))
    width = 360.0 / hue_bins
    return dominant * width, (dominant + 1) * width


def segment_playfield(frame: np.ndarray, hue_range: tuple[float, float]) -> np.ndarray:
    """Binary playfield mask: pixels within the trained dominant hue."""
    hsv = rgb_to_hsv(frame)
    hue_low, hue_high = hue_range
    return (
        (hsv[..., 0] >= hue_low)
        & (hsv[..., 0] < hue_high)
        & (hsv[..., 1] > 0.2)
        & (hsv[..., 2] > 0.1)
    )


@dataclass(frozen=True)
class ViewFeatures:
    """Per-frame features driving view classification."""

    field_fraction: float
    largest_player_fraction: float


def view_features(frame: np.ndarray, hue_range: tuple[float, float]) -> ViewFeatures:
    """Playfield area and player size via connected-component analysis."""
    mask = segment_playfield(frame, hue_range)
    field_fraction = float(mask.mean())
    if field_fraction < 0.05:
        return ViewFeatures(field_fraction, 0.0)
    # Players: non-field blobs inside the field's bounding rows.
    rows = np.where(mask.any(axis=1))[0]
    region = ~mask[rows.min() : rows.max() + 1]
    labels, count = ndimage.label(region)
    if count == 0:
        return ViewFeatures(field_fraction, 0.0)
    sizes = ndimage.sum_labels(np.ones_like(labels), labels, index=range(1, count + 1))
    largest = float(np.max(sizes)) / mask.size
    return ViewFeatures(field_fraction, largest)


def classify_view(features: ViewFeatures) -> str:
    """The paper's four view types from playfield area and player size."""
    if features.field_fraction < 0.05:
        return "outofview"
    if features.field_fraction > 0.55 and features.largest_player_fraction < 0.1:
        return "global"
    if features.field_fraction > 0.25:
        return "medium"
    return "closeup"


def classify_video_views(
    frames: np.ndarray, training_frames: int | None = None
) -> list[str]:
    """End-to-end VIEWTYPE: train dominant color, classify every frame.

    Training defaults to the whole video ("a lot of frames"); pass
    ``training_frames`` to restrict to a prefix.
    """
    window = frames if training_frames is None else frames[:training_frames]
    hue_range = train_dominant_color(window)
    return [classify_view(view_features(frame, hue_range)) for frame in frames]


# -- traced kernels ------------------------------------------------------------------


def traced_shot_kernel(
    recorder: TraceRecorder,
    arena: MemoryArena,
    n_frames: int = 24,
    height: int = 24,
    width: int = 32,
    seed: int = 37,
) -> list[int]:
    """Shot detection on instrumented frame buffers.

    Each frame is scanned twice per step (histogram + pixel diff) in
    strict sequential order — the constant-stride streaming the paper
    singles out ("SHOT iterates on a large array with a constant
    stride").
    """
    from repro.mining.datasets import synthetic_video

    video = synthetic_video(n_frames=n_frames, height=height, width=width, seed=seed)
    traced_frames = [arena.wrap(recorder, f.copy()) for f in video.frames.reshape(n_frames, -1)]
    boundaries = [0]
    previous_histogram = rgb_histogram_48(video.frames[0])
    for f in range(1, n_frames):
        flat = traced_frames[f].scan_read()  # traced full-frame stream
        traced_frames[f - 1].scan_read()  # pixel-difference second stream
        recorder.retire(flat.size)
        frame = flat.reshape(height, width, 3)
        histogram = rgb_histogram_48(frame)
        h_diff = histogram_difference(previous_histogram, histogram)
        p_diff = pixel_difference(video.frames[f - 1], frame)
        if h_diff > 0.6 and p_diff > 0.18:
            boundaries.append(f)
        previous_histogram = histogram
    return boundaries


def traced_viewtype_kernel(
    recorder: TraceRecorder,
    arena: MemoryArena,
    n_frames: int = 16,
    height: int = 24,
    width: int = 32,
    seed: int = 37,
) -> list[str]:
    """View classification on instrumented frames (two passes per frame)."""
    from repro.mining.datasets import synthetic_video

    video = synthetic_video(n_frames=n_frames, height=height, width=width, seed=seed)
    hue_range = train_dominant_color(video.frames[: max(4, n_frames // 4)])
    results: list[str] = []
    for f in range(n_frames):
        flat = arena.wrap(recorder, video.frames[f].reshape(-1).copy())
        flat.scan_read()  # segmentation pass
        flat.scan_read()  # connected-component pass
        recorder.retire(flat.data.size * 2)
        features = view_features(video.frames[f], hue_range)
        results.append(classify_view(features))
    return results
