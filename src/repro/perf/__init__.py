"""Performance models: CPI stacks, bus bandwidth, prefetch gains.

* :mod:`repro.perf.cpi` — the CPI-stack IPC model behind Table 2's IPC
  column;
* :mod:`repro.perf.bandwidth` — the shared front-side-bus occupancy
  model that throttles prefetching under parallel contention;
* :mod:`repro.perf.prefetch_study` — the Figure 8 experiment: hardware
  stride-prefetch speedups in serial and 16-thread mode.
"""

from repro.perf.cpi import CpiStack, cpi_stack, predicted_ipc
from repro.perf.bandwidth import BusModel, bandwidth_headroom
from repro.perf.prefetch_study import PrefetchGain, prefetch_gain, prefetch_study

__all__ = [
    "CpiStack",
    "cpi_stack",
    "predicted_ipc",
    "BusModel",
    "bandwidth_headroom",
    "PrefetchGain",
    "prefetch_gain",
    "prefetch_study",
]
