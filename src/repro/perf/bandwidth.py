"""Shared front-side-bus bandwidth model.

Section 4.4's asymmetry hinges on bandwidth: "for other workloads, such
as SNP and MDS, parallel versions of these workloads impose higher
contention on the bandwidth than serial versions due to high cache miss
rates.  As a result, little bandwidth is available for hardware
prefetching."

The model: the Unisys Xeon's shared bus moves a fixed number of cache
lines per second.  Demand misses consume
``threads x MPKI/1000 x line_size x instruction_rate`` of it; whatever
is left is *headroom* the prefetcher may spend.  Prefetch effectiveness
scales with headroom, so high-miss-rate workloads lose their prefetch
benefit exactly when parallelized.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BusModel:
    """A shared front-side bus.

    Attributes:
        peak_bytes_per_second: aggregate bus bandwidth.  The 16-way
            Unisys ES7000's processor buses deliver a few GB/s to each
            4-processor pod; a single pooled figure is enough for the
            contention asymmetry.
        core_frequency_hz: guest clock for converting CPI to time.
    """

    peak_bytes_per_second: float = 6.4e9
    core_frequency_hz: float = 3.0e9

    def demand_bandwidth(
        self, mpki: float, cpi: float, threads: int, line_size: int = 64
    ) -> float:
        """Bytes/second of demand-miss traffic for ``threads`` cores."""
        if cpi <= 0:
            raise ConfigurationError(f"cpi must be positive, got {cpi}")
        instructions_per_second = self.core_frequency_hz / cpi
        per_core = mpki / 1000.0 * line_size * instructions_per_second
        return per_core * threads

    def utilization(
        self, mpki: float, cpi: float, threads: int, line_size: int = 64
    ) -> float:
        """Fraction of the bus consumed by demand misses (capped at 1)."""
        return min(
            1.0,
            self.demand_bandwidth(mpki, cpi, threads, line_size)
            / self.peak_bytes_per_second,
        )


def bandwidth_headroom(
    bus: BusModel, mpki: float, cpi: float, threads: int, line_size: int = 64
) -> float:
    """Fraction of bus bandwidth left over for prefetch traffic."""
    return 1.0 - bus.utilization(mpki, cpi, threads, line_size)
