"""CPI-stack IPC model (Table 2's IPC column).

``CPI = base + exposure * (L2-hit stalls + memory stalls)`` where

* L2-hit stalls = (DL1 MPKI − DL2 MPKI) x L2 latency / 1000,
* memory stalls = DL2 MPKI x memory latency / 1000,
* ``exposure`` is the calibrated fraction of miss latency the core
  cannot hide (out-of-order overlap, MLP, hardware prefetch): streaming
  workloads like SVM-RFE hide most of it (high IPC despite 61 misses
  per 1000 instructions), pointer-chasing workloads like SNP and MDS
  expose nearly all of it (IPC 0.12 / 0.06).

``base_cpi`` and ``exposure`` are fitted to Table 2 (see
:data:`repro.workloads.profiles.CPI_PARAMETERS`); the *model-predicted*
IPC then uses the memory models' own DL1/DL2 MPKIs, so Table 2's IPC
column is reproduced by the same machinery that reproduces its cache
columns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.profiles import (
    CPI_PARAMETERS,
    L2_LATENCY,
    MEMORY_LATENCY,
    PAPER_TABLE2,
)


@dataclass(frozen=True)
class CpiStack:
    """Decomposed cycles-per-instruction."""

    workload: str
    base: float
    l2_stall: float
    memory_stall: float
    exposure: float

    @property
    def total(self) -> float:
        return self.base + self.exposure * (self.l2_stall + self.memory_stall)

    @property
    def ipc(self) -> float:
        return 1.0 / self.total

    @property
    def memory_bound_fraction(self) -> float:
        """Share of execution time spent exposed to the memory system."""
        return self.exposure * (self.l2_stall + self.memory_stall) / self.total


def cpi_stack(
    workload: str,
    dl1_mpki: float,
    dl2_mpki: float,
    l2_latency: float = L2_LATENCY,
    memory_latency: float = MEMORY_LATENCY,
) -> CpiStack:
    """Build the CPI stack of ``workload`` from its miss rates."""
    params = CPI_PARAMETERS[workload]
    l2_hits = max(0.0, dl1_mpki - dl2_mpki)
    return CpiStack(
        workload=workload,
        base=params.base_cpi,
        l2_stall=l2_hits * l2_latency / 1000.0,
        memory_stall=dl2_mpki * memory_latency / 1000.0,
        exposure=params.exposure,
    )


def predicted_ipc(workload: str, dl1_mpki: float, dl2_mpki: float) -> float:
    """Model-predicted IPC from the workload's miss rates."""
    return cpi_stack(workload, dl1_mpki, dl2_mpki).ipc


def paper_ipc(workload: str) -> float:
    """Table 2's measured IPC (for comparison in EXPERIMENTS.md)."""
    return PAPER_TABLE2[workload].ipc
