"""DRAM-cache evaluation: the paper's headline design conclusion.

The paper's conclusion: "Since large SRAM cache organizations can be
expensive to build, alternative cache organizations using DRAM (e.g.
embedded DRAM (eDRAM), off-die DRAM-based large last-level caches, 3D
die-stacking) are essential to reduce the latency and bandwidth to main
memory" — and Section 4.3's projection: "we believe that 5 of the 8
workloads will benefit from a large DRAM cache when scaled to a
128-core CMP."

The organization evaluated here is the one the paper proposes: a large
DRAM cache *behind* the on-die SRAM LLC, turning main-memory misses
into (slower-than-SRAM but much-faster-than-DRAM-bus) DRAM-cache hits:

* without: ``stall = MPKI(SRAM) x memory_latency``
* with:    ``stall = [MPKI(SRAM) − MPKI(DRAM)] x dram_hit_latency
  + MPKI(DRAM) x memory_latency``

both in cycles per 1000 instructions, with MPKIs from the calibrated
workload models at the projected core count.

A workload *benefits* (the paper's verdict) when a fixed SRAM LLC
cannot hold its working set at scale: either the working set grows with
the core count (categories B and C), or it exceeds even very large
caches (MDS's 300 MB matrix).  :func:`dram_cache_verdict` encodes that
criterion; the stall model quantifies the win.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import MB
from repro.workloads.profiles import WORKLOAD_NAMES, memory_model

#: On-die SRAM LLC capacity assumed at the 128-core design point.
SRAM_CAPACITY = 8 * MB
#: DRAM cache capacity (eDRAM / 3D-stacked / off-die).
DRAM_CAPACITY = 128 * MB
#: Latencies in core cycles.
DRAM_HIT_LATENCY = 90.0
MEMORY_LATENCY_CYCLES = 400.0

#: Verdict thresholds: a workload is a DRAM-cache candidate when its
#: misses at a 32 MB cache grow this much from 1 thread to the target
#: core count (working set scales with cores), or when it still misses
#: heavily beyond the DRAM-cache capacity (working set exceeds any
#: buildable SRAM).
SCALING_RATIO_THRESHOLD = 1.45
RESIDUAL_MPKI_THRESHOLD = 2.0


@dataclass(frozen=True)
class DramCacheResult:
    """One workload's DRAM-cache evaluation at a core count."""

    workload: str
    threads: int
    sram_mpki: float  # misses past the SRAM LLC
    dram_mpki: float  # misses past the DRAM cache too
    scaling_ratio: float  # 32MB MPKI growth, 1 thread → `threads`
    residual_mpki: float  # MPKI beyond a 128MB cache

    @property
    def stall_without(self) -> float:
        """Memory stall cycles per 1000 instructions, SRAM LLC only."""
        return self.sram_mpki * MEMORY_LATENCY_CYCLES

    @property
    def stall_with(self) -> float:
        """Stall cycles with the DRAM cache behind the SRAM LLC."""
        dram_hits = max(0.0, self.sram_mpki - self.dram_mpki)
        return dram_hits * DRAM_HIT_LATENCY + self.dram_mpki * MEMORY_LATENCY_CYCLES

    @property
    def stall_saving_percent(self) -> float:
        if self.stall_without <= 0:
            return 0.0
        return 100.0 * (self.stall_without - self.stall_with) / self.stall_without

    @property
    def benefits(self) -> bool:
        """The paper's verdict: does this workload need the DRAM cache?

        True when the working set scales with cores (no fixed SRAM size
        holds it) or exceeds even the DRAM-cache capacity.
        """
        return (
            self.scaling_ratio >= SCALING_RATIO_THRESHOLD
            or self.residual_mpki > RESIDUAL_MPKI_THRESHOLD
        )


def evaluate_dram_cache(workload: str, threads: int = 128) -> DramCacheResult:
    """Evaluate the DRAM-cache organization for one workload."""
    model = memory_model(workload)
    single_thread = max(model.llc_mpki(32 * MB, 64, 1), 1e-9)
    scaled = model.llc_mpki(32 * MB, 64, threads)
    return DramCacheResult(
        workload=workload,
        threads=threads,
        sram_mpki=model.llc_mpki(SRAM_CAPACITY, 64, threads),
        dram_mpki=model.llc_mpki(DRAM_CAPACITY, 64, threads),
        scaling_ratio=scaled / single_thread,
        residual_mpki=model.llc_mpki(DRAM_CAPACITY, 64, threads),
    )


def dram_cache_study(threads: int = 128) -> list[DramCacheResult]:
    """The Section 4.3 projection for every workload."""
    return [evaluate_dram_cache(name, threads) for name in WORKLOAD_NAMES]
