"""The Figure 8 experiment: hardware-prefetch speedups.

Section 4.4 measures each workload on a 16-way Xeon with the stride
prefetcher on versus off, in single-threaded and 16-threaded mode, and
finds (a) everything improves, up to ~33%; (b) most workloads improve
*more* in parallel mode (more streams for the prefetcher, bandwidth to
spare); (c) SNP and MDS improve *less* in parallel mode because their
high miss rates saturate the bus, starving the prefetcher.

The model composes three calibrated pieces:

* **coverage** — the fraction of misses a stride prefetcher can target,
  from each memory model's component mixture (each component carries a
  ``prefetch_fraction``: 1 for strided streams, 0 for pointer chases,
  intermediate for semi-regular structures);
* **effectiveness** — a timeliness factor for covered misses, boosted
  in parallel mode by the extra concurrent streams the prefetcher can
  track, and throttled by the shared-bus headroom from
  :mod:`repro.perf.bandwidth`-style contention (per-instruction miss
  bytes times thread count against a fixed bus budget);
* **CPI stack** — covered stalls are removed from the Table 2 CPI
  stack; the speedup is the CPI ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.cpi import CpiStack, cpi_stack
from repro.units import KB
from repro.workloads.models import WorkloadMemoryModel
from repro.workloads.profiles import memory_model

#: Fraction of a covered miss's latency the prefetcher actually hides
#: (timeliness/accuracy of a stride prefetcher in steady state).
TIMELINESS = 0.40

#: Extra streams visible in parallel mode let the prefetcher cover more
#: concurrent sequences ("multiple data streams recognized by the
#: prefetcher", Section 4.4).
PARALLEL_STREAM_BONUS = 1.5

#: Bus-contention scale: aggregate DL2 MPKI (threads x per-thread MPKI)
#: at which demand misses fully consume the shared bus.
CONTENTION_CAPACITY_MPKI = 220.0
HEADROOM_FLOOR = 0.05

#: Stride-prefetchability of the non-stream patterns, by component-name
#: suffix conventions in profiles.py.  Semi-regular structures (FP-tree
#: levels allocated in order, DP charts, label arrays) are partially
#: detectable; true scatter (sparse index lookups) is not.
PARTIAL_PREFETCHABILITY: dict[str, float] = {
    "fimi-tree": 0.55,
    "fimi-fresh": 0.30,
    "fimi-l2": 0.45,
    "fimi-private": 0.30,
    "rsearch-l2": 0.50,
    "rsearch-chart": 0.50,
    "rsearch-fresh": 0.30,
    "view-labels": 0.40,
    "view-l2": 0.50,
    "svm-alpha": 0.30,
    "snp-index": 0.20,
    "snp-l2": 0.20,
    "mds-index": 0.00,
    "mds-l2": 0.15,
    "plsa-scatter": 0.00,
    "plsa-fresh": 0.30,
    "shot-hist": 0.40,
}


def component_prefetch_fraction(name: str, pattern: str) -> float:
    """How much of a component's miss traffic a stride prefetcher covers."""
    if pattern in ("cyclic", "stream"):
        return 1.0
    return PARTIAL_PREFETCHABILITY.get(name, 0.0)


def coverage_at(model: WorkloadMemoryModel, cache_size: int, threads: int = 1) -> float:
    """Prefetchable fraction of the miss traffic at ``cache_size``."""
    capacity_lines = cache_size / 64
    covered = 0.0
    total = 0.0
    for component in model.components:
        miss = component.profile(64, threads).miss_rate(capacity_lines)
        total += miss
        covered += miss * component_prefetch_fraction(component.name, component.pattern)
    return covered / total if total else 0.0


def contention_headroom(dl2_mpki: float, threads: int) -> float:
    """Bus bandwidth fraction left for prefetches (see module docs)."""
    utilization = threads * dl2_mpki / CONTENTION_CAPACITY_MPKI
    return max(HEADROOM_FLOOR, 1.0 - utilization)


@dataclass(frozen=True)
class PrefetchGain:
    """Prefetch speedup of one workload in one mode."""

    workload: str
    threads: int
    coverage_memory: float
    coverage_l2: float
    headroom: float
    effectiveness: float
    cpi_off: float
    cpi_on: float

    @property
    def speedup_percent(self) -> float:
        """Percentage performance gain with the prefetcher enabled."""
        return 100.0 * (self.cpi_off / self.cpi_on - 1.0)


def prefetch_gain(workload: str, threads: int = 1) -> PrefetchGain:
    """Model the Figure 8 speedup of ``workload`` at ``threads`` threads."""
    model = memory_model(workload)
    dl1 = model.dl1_mpki()
    dl2 = model.dl2_mpki()
    stack: CpiStack = cpi_stack(workload, dl1, dl2)
    coverage_memory = coverage_at(model, 512 * KB, 1)
    coverage_l2 = coverage_at(model, 8 * KB, 1)
    headroom = contention_headroom(dl2, threads)
    bonus = PARALLEL_STREAM_BONUS if threads > 1 else 1.0
    effectiveness = TIMELINESS * bonus * headroom
    cpi_on = stack.base + stack.exposure * (
        stack.l2_stall * (1.0 - min(0.95, coverage_l2 * effectiveness))
        + stack.memory_stall * (1.0 - min(0.95, coverage_memory * effectiveness))
    )
    return PrefetchGain(
        workload=workload,
        threads=threads,
        coverage_memory=coverage_memory,
        coverage_l2=coverage_l2,
        headroom=headroom,
        effectiveness=effectiveness,
        cpi_off=stack.total,
        cpi_on=cpi_on,
    )


def measured_coverage(
    workload: str,
    cores: int = 4,
    cache_size: int = 1024 * KB,
    degree: int = 2,
    trace_cache=None,
) -> tuple[float, float]:
    """Exact-path (coverage, accuracy) of the stride prefetcher.

    The model's ``coverage_at`` is an analytic projection; this runs
    the workload's instrumented kernel once through the replay engine
    (:mod:`repro.harness.replay`) and feeds the captured, AF-filtered,
    PC-tagged transaction stream to the real reference-prediction-table
    prefetcher wrapped around a live cache — the measured counterpart
    Figure 8's calibration leans on.  With a warm ``trace_cache`` the
    kernel never re-runs.
    """
    from repro.cache.cache import CacheConfig, SetAssociativeCache
    from repro.cache.prefetch import PrefetchingCache, StridePrefetcher
    from repro.harness.replay import load_or_capture
    from repro.workloads.registry import get_workload

    log, _ = load_or_capture(
        get_workload(workload).kernel_guest(),
        cores,
        trace_cache=trace_cache,
        key_extra={"source": "kernel"},
    )
    prefetching = PrefetchingCache(
        SetAssociativeCache(CacheConfig(size=cache_size)),
        StridePrefetcher(degree=degree),
    )
    prefetching.access_chunk(log.to_chunk())
    return prefetching.coverage, prefetching.prefetcher.stats.accuracy


def _gain_pair(task: tuple[str, int]) -> tuple[PrefetchGain, PrefetchGain]:
    """Serial and parallel gains for one workload (picklable task)."""
    name, threads_parallel = task
    return prefetch_gain(name, 1), prefetch_gain(name, threads_parallel)


def prefetch_study(
    threads_parallel: int = 16, jobs: int | None = None
) -> dict[str, tuple[PrefetchGain, PrefetchGain]]:
    """Serial and parallel prefetch gains for every workload (Figure 8)."""
    from repro.harness.parallel import parallel_map
    from repro.workloads.profiles import WORKLOAD_NAMES

    pairs = parallel_map(
        _gain_pair, [(name, threads_parallel) for name in WORKLOAD_NAMES], jobs=jobs
    )
    return dict(zip(WORKLOAD_NAMES, pairs))
