"""The SoftSDV→Dragonhead FSB message protocol.

Section 3.3: "Some memory transactions are predefined as messages from
SoftSDV to Dragonhead", carrying five commands — start emulation, stop
emulation, core-ID, instructions retired, and cycles completed.  Because
Dragonhead passively snoops the bus, the only channel the simulator has
is the address lines of ordinary memory transactions, so each message is
encoded *into an address* within a reserved window that no real workload
data maps to.

Encoding (64-bit address)::

    [ MESSAGE_BASE (high bits) | opcode (8 bits) | payload (40 bits) ]

Payloads wider than 40 bits (cumulative instruction counts) are sent as
multiple transactions using the ``*_LOW``/``*_HIGH`` opcode pairs; this
module hides that behind :class:`MessageCodec`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ProtocolError

#: Base of the reserved message address window.  Chosen far above any
#: address the MemoryArena allocator hands out.
MESSAGE_BASE: int = 0xD_A60_0000_0000_0000

_OPCODE_SHIFT = 40
_PAYLOAD_MASK = (1 << _OPCODE_SHIFT) - 1
_OPCODE_MASK = 0xFF


class MessageKind(enum.IntEnum):
    """Command opcodes of the co-simulation protocol (Section 3.3)."""

    START_EMULATION = 0x01
    STOP_EMULATION = 0x02
    CORE_ID = 0x03
    INSTRUCTIONS_RETIRED = 0x04
    CYCLES_COMPLETED = 0x05
    # Wide-payload continuation opcodes (implementation detail).
    INSTRUCTIONS_RETIRED_HIGH = 0x14
    CYCLES_COMPLETED_HIGH = 0x15


@dataclass(frozen=True, slots=True)
class Message:
    """A decoded protocol message."""

    kind: MessageKind
    payload: int = 0


class MessageCodec:
    """Encode messages to bus addresses and decode them back.

    The decoder is stateful only for wide payloads: a ``*_HIGH``
    transaction stashes the upper bits until the matching low word
    arrives.  :meth:`is_message` is the address filter's fast check.
    """

    def __init__(self) -> None:
        self._pending_high: dict[MessageKind, int] = {}

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict[str, object]:
        """Decoder state for a checkpoint (the stashed ``*_HIGH`` words).

        Keys are opcode ints rather than :class:`MessageKind` members so
        the snapshot payload stays plain-data.
        """
        return {"pending_high": {int(k): v for k, v in self._pending_high.items()}}

    def load_state_dict(self, state: dict[str, object]) -> None:
        """Restore decoder state captured by :meth:`state_dict`."""
        pending = state["pending_high"]
        self._pending_high = {
            MessageKind(int(k)): int(v) for k, v in pending.items()  # type: ignore[union-attr]
        }

    # -- classification ----------------------------------------------------

    @staticmethod
    def is_message(address: int) -> bool:
        """Whether a bus address falls in the reserved message window."""
        return (address & MESSAGE_BASE) == MESSAGE_BASE

    @staticmethod
    def peek_opcode(address: int) -> int:
        """The raw opcode field of a message address, without decoding.

        Cheap classification for components that must route messages
        (the fault injector, bus taps) without owning decoder state —
        the returned value may be outside :class:`MessageKind` for a
        corrupted transaction.
        """
        return (address >> _OPCODE_SHIFT) & _OPCODE_MASK

    # -- encoding -----------------------------------------------------------

    @staticmethod
    def encode(message: Message) -> list[int]:
        """Encode a message into one or two bus addresses."""
        payload = message.payload
        if payload < 0:
            raise ProtocolError(f"negative payload: {payload}")
        if payload <= _PAYLOAD_MASK:
            return [MESSAGE_BASE | (int(message.kind) << _OPCODE_SHIFT) | payload]
        high = payload >> _OPCODE_SHIFT
        if high > _PAYLOAD_MASK:
            raise ProtocolError(f"payload too wide: {payload}")
        low = payload & _PAYLOAD_MASK
        if message.kind is MessageKind.INSTRUCTIONS_RETIRED:
            high_kind = MessageKind.INSTRUCTIONS_RETIRED_HIGH
        elif message.kind is MessageKind.CYCLES_COMPLETED:
            high_kind = MessageKind.CYCLES_COMPLETED_HIGH
        else:
            raise ProtocolError(
                f"message kind {message.kind.name} does not support wide payloads"
            )
        return [
            MESSAGE_BASE | (int(high_kind) << _OPCODE_SHIFT) | high,
            MESSAGE_BASE | (int(message.kind) << _OPCODE_SHIFT) | low,
        ]

    # -- decoding -------------------------------------------------------------

    def decode(self, address: int) -> Message | None:
        """Decode one bus address; returns None for continuation words."""
        if not self.is_message(address):
            raise ProtocolError(f"address {address:#x} is not in the message window")
        opcode = (address >> _OPCODE_SHIFT) & _OPCODE_MASK
        payload = address & _PAYLOAD_MASK
        try:
            kind = MessageKind(opcode)
        except ValueError:
            raise ProtocolError(f"unknown message opcode {opcode:#x}") from None
        if kind is MessageKind.INSTRUCTIONS_RETIRED_HIGH:
            self._pending_high[MessageKind.INSTRUCTIONS_RETIRED] = payload
            return None
        if kind is MessageKind.CYCLES_COMPLETED_HIGH:
            self._pending_high[MessageKind.CYCLES_COMPLETED] = payload
            return None
        high = self._pending_high.pop(kind, 0)
        return Message(kind, (high << _OPCODE_SHIFT) | payload)

    def decode_stream(self, addresses: list[int]) -> Iterator[Message]:
        """Decode a sequence of message addresses."""
        for address in addresses:
            message = self.decode(address)
            if message is not None:
                yield message
