"""Stack-distance theory: analytic cache modelling.

Full-run simulation of the paper's workloads executes 10^10-10^11
instructions — far beyond pure-Python trace simulation.  The standard
shape-preserving substitute is reuse/stack-distance analysis: under LRU,
an access hits in a fully-associative cache of C lines exactly when its
*stack distance* (distinct lines touched since the previous access to
the same line) is below C.  One profile therefore yields the entire
MPKI-versus-capacity curve.

* :mod:`repro.reuse.olken` — exact stack distances from traces
  (order-statistic/Fenwick tree, O(N log N));
* :mod:`repro.reuse.histogram` — profiles: weighted stack-distance
  distributions, composable across phases and components;
* :mod:`repro.reuse.model` — MPKI curves from profiles, plus the
  validation helpers tests use to compare against exact simulation;
* :mod:`repro.reuse.interleave` — multi-thread composition (private-
  region dilation, shared-region invariance).
"""

from repro.reuse.olken import stack_distances, COLD
from repro.reuse.histogram import ReuseProfile
from repro.reuse.model import mpki_at, mpki_curve, miss_ratio_at
from repro.reuse.interleave import dilate_private, compose_threads

__all__ = [
    "stack_distances",
    "COLD",
    "ReuseProfile",
    "mpki_at",
    "mpki_curve",
    "miss_ratio_at",
    "dilate_private",
    "compose_threads",
]
