"""Set-associativity correction for stack-distance miss curves.

The reuse models assume fully-associative LRU (exact stack-distance
theory).  Real caches — including Dragonhead's emulated LLC — are
set-associative, which adds conflict misses.  A. J. Smith's classical
correction estimates the set-associative miss ratio from the
fully-associative stack-distance distribution:

an access with stack distance ``D`` hits an ``A``-way, ``S``-set LRU
cache when fewer than ``A`` of the ``D`` distinct intervening lines map
to its own set; with lines distributed uniformly over sets (the hashing
assumption), that count is Binomial(D, 1/S), so

``P(hit | D) = P(Binomial(D, 1/S) <= A - 1)``.

The module evaluates that transform on a :class:`ReuseProfile` and is
validated against the exact set-associative simulator in
``tests/test_reuse_associativity.py``.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError
from repro.reuse.histogram import ReuseProfile


def hit_probability(distances: np.ndarray, associativity: int, num_sets: int) -> np.ndarray:
    """P(hit) per stack distance in an (A-way, S-set) LRU cache."""
    if associativity <= 0 or num_sets <= 0:
        raise ConfigurationError("associativity and num_sets must be positive")
    distances = np.asarray(distances, dtype=np.float64)
    result = np.zeros_like(distances)
    finite = np.isfinite(distances)
    if num_sets == 1:
        # Fully associative: hit iff D < A.
        result[finite] = (distances[finite] < associativity).astype(np.float64)
        return result
    d = np.floor(distances[finite])
    # P(Binomial(D, 1/S) <= A-1): survival of the conflict count.
    result[finite] = stats.binom.cdf(associativity - 1, d, 1.0 / num_sets)
    return result


def set_associative_miss_rate(
    profile: ReuseProfile, cache_size: int, line_size: int, associativity: int
) -> float:
    """Misses per 1000 instructions in a set-associative cache.

    ``cache_size / (line_size * associativity)`` sets; infinite
    distances (cold/streaming) always miss.
    """
    num_sets = int(cache_size // (line_size * associativity))
    if num_sets < 1:
        raise ConfigurationError(
            f"cache of {cache_size}B cannot hold one {associativity}-way set "
            f"of {line_size}B lines"
        )
    hits = hit_probability(profile.distances, associativity, num_sets)
    return float((profile.rates * (1.0 - hits)).sum())


def conflict_overhead(
    profile: ReuseProfile, cache_size: int, line_size: int, associativity: int
) -> float:
    """Extra misses (per 1000 instructions) versus fully-associative LRU.

    The quantity that justifies the reuse models' fully-associative
    assumption: for 8-16-way LLCs it is a few percent of the miss rate.
    """
    fully = profile.miss_rate(cache_size / line_size)
    setassoc = set_associative_miss_rate(profile, cache_size, line_size, associativity)
    return setassoc - fully
