"""Working-set functions (Denning) from traces.

The paper speaks throughout in working-set terms — "the workloads have
working-set sizes of 32MB or more", knees in the miss curves, footprints
that scale with threads.  This module computes the underlying function
from a trace rather than reading it off a miss curve:

* :func:`working_set_function` — Denning's ws(τ): the average number of
  distinct lines referenced in a window of τ accesses, computed exactly
  for a set of window sizes in one pass per window;
* :func:`working_set_size` — the classic operating point: ws(τ) at a
  window matching the cache's reuse horizon;
* :func:`footprint_at_knee` — invert a miss curve into the working-set
  reading the paper performs on Figures 4-6.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.trace.record import TraceChunk


def distinct_in_windows(lines: np.ndarray, window: int) -> float:
    """Average distinct lines over all length-``window`` slices, exactly.

    Per-access counting (the footprint-theory identity): access ``i``
    with previous same-line occurrence ``p`` is the *first* occurrence
    of its line in window ``[s, s+window)`` for exactly the starts
    ``s`` in ``(max(p, i-window), min(i, n-window)]``.  Summing those
    counts over all accesses gives the total distinct-line mass over
    all windows in one pass.
    """
    n = len(lines)
    if window <= 0:
        raise ConfigurationError(f"window must be positive, got {window}")
    if n == 0:
        return 0.0
    window = min(window, n)
    last_seen: dict[int, int] = {}
    previous = np.empty(n, dtype=np.int64)
    for i, line in enumerate(lines):
        line = int(line)
        previous[i] = last_seen.get(line, -1)
        last_seen[line] = i
    indices = np.arange(n, dtype=np.int64)
    lower = np.maximum(previous, indices - window)  # exclusive
    upper = np.minimum(indices, n - window)  # inclusive
    counts = np.clip(upper - lower, 0, None)
    return float(counts.sum() / (n - window + 1))


def working_set_function(
    chunk: TraceChunk, windows: list[int], line_size: int = 64
) -> list[tuple[int, float]]:
    """Denning's ws(τ) at the given window sizes, in lines."""
    lines = chunk.lines(line_size)
    return [(window, distinct_in_windows(lines, window)) for window in windows]


def working_set_size(
    chunk: TraceChunk, window: int, line_size: int = 64
) -> int:
    """ws(τ) in bytes at one window (rounded up to whole lines)."""
    average = distinct_in_windows(chunk.lines(line_size), window)
    return int(np.ceil(average)) * line_size


def footprint_at_knee(
    sweep: list[tuple[int, float]], drop_fraction: float = 0.3
) -> int | None:
    """Read a working set off a miss curve the way the paper does.

    Returns the first swept size whose MPKI sits at least
    ``drop_fraction`` below the previous point's — the left edge of the
    knee — or None for flat curves.
    """
    for (previous_size, previous_mpki), (size, mpki) in zip(sweep, sweep[1:]):
        if previous_mpki > 0 and (previous_mpki - mpki) / previous_mpki >= drop_fraction:
            return size
    return None
