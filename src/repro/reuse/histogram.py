"""Reuse profiles: weighted stack-distance distributions.

A :class:`ReuseProfile` describes the steady-state memory behaviour of a
workload (or one component of it) as a set of ``(stack distance, rate)``
points, where *rate* is measured in accesses per 1000 instructions.
Profiles compose by concatenation — the mixture of two access streams
has the union of their distance masses — which is what lets the workload
models be assembled from per-data-structure components and then across
threads.

Distances are in cache lines, so a profile is specific to a line size;
the workload components generate profiles per line size, capturing
spatial-locality effects (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.reuse.olken import COLD


@dataclass(frozen=True)
class ReuseProfile:
    """A weighted stack-distance distribution.

    Attributes:
        distances: support points, in cache lines (float; ``np.inf``
            marks never-reused accesses, e.g. cold streaming data).
        rates: accesses per 1000 instructions carried by each point.
    """

    distances: np.ndarray
    rates: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "distances", np.asarray(self.distances, dtype=np.float64)
        )
        object.__setattr__(self, "rates", np.asarray(self.rates, dtype=np.float64))
        if self.distances.shape != self.rates.shape:
            raise TraceError("distances and rates must have matching shapes")
        if np.any(self.rates < 0):
            raise TraceError("rates must be non-negative")

    # -- constructors ----------------------------------------------------

    @classmethod
    def empty(cls) -> "ReuseProfile":
        return cls(np.empty(0), np.empty(0))

    @classmethod
    def point(cls, distance: float, rate: float) -> "ReuseProfile":
        """All accesses share one stack distance (cyclic scans)."""
        return cls(np.array([distance]), np.array([rate]))

    @classmethod
    def uniform(cls, footprint_lines: float, rate: float, points: int = 64) -> "ReuseProfile":
        """Distances uniform on [0, footprint): the uniform-random pattern.

        Classical result: under uniform independent references over N
        items, the LRU stack position of the referenced item is uniform
        on [0, N), so the miss ratio at capacity C is (N-C)/N.
        """
        if footprint_lines <= 0:
            raise TraceError(f"footprint must be positive, got {footprint_lines}")
        centers = (np.arange(points) + 0.5) * (footprint_lines / points)
        return cls(centers, np.full(points, rate / points))

    @classmethod
    def streaming(cls, rate: float) -> "ReuseProfile":
        """Never-reused accesses (infinite distance): pure streaming."""
        return cls(np.array([np.inf]), np.array([rate]))

    @classmethod
    def uniform_range(
        cls, low: float, high: float, rate: float, points: int = 32
    ) -> "ReuseProfile":
        """Distances uniform on [low, high): spread around a working set.

        Used to smooth the step response of cyclic scans: phase drift
        and competing structures spread reuse distances around the
        nominal footprint rather than concentrating them exactly on it.
        """
        if not 0 <= low < high:
            raise TraceError(f"need 0 <= low < high, got [{low}, {high})")
        centers = low + (np.arange(points) + 0.5) * ((high - low) / points)
        return cls(centers, np.full(points, rate / points))

    @classmethod
    def from_distances(
        cls, distances: np.ndarray, instructions: int, cold_as_infinite: bool = True
    ) -> "ReuseProfile":
        """Build an empirical profile from exact per-access distances.

        ``instructions`` normalizes counts into per-1000-instruction
        rates, so empirical profiles compare directly with model ones.
        """
        distances = np.asarray(distances)
        if instructions <= 0:
            raise TraceError(f"instructions must be positive, got {instructions}")
        finite = distances[distances != COLD].astype(np.float64)
        values, counts = np.unique(finite, return_counts=True)
        rates = counts * (1000.0 / instructions)
        if cold_as_infinite:
            cold = int(np.count_nonzero(distances == COLD))
            if cold:
                values = np.append(values, np.inf)
                rates = np.append(rates, cold * 1000.0 / instructions)
        return cls(values, rates)

    # -- algebra ----------------------------------------------------------

    def combine(self, *others: "ReuseProfile") -> "ReuseProfile":
        """Mixture of this profile with ``others`` (rates add)."""
        parts = (self, *others)
        return ReuseProfile(
            np.concatenate([p.distances for p in parts]),
            np.concatenate([p.rates for p in parts]),
        )

    def scaled(self, factor: float) -> "ReuseProfile":
        """Scale all rates (e.g. phase weighting)."""
        if factor < 0:
            raise TraceError(f"scale factor must be non-negative, got {factor}")
        return ReuseProfile(self.distances, self.rates * factor)

    def dilated(self, factor: float, footprint_cap: float = np.inf) -> "ReuseProfile":
        """Multiply all distances by ``factor`` (thread interleaving).

        ``footprint_cap`` bounds the dilated distances: a reuse can never
        see more distinct lines than the total data footprint.
        """
        if factor <= 0:
            raise TraceError(f"dilation factor must be positive, got {factor}")
        dilated = np.where(
            np.isinf(self.distances),
            self.distances,  # streaming accesses stay never-reused
            np.minimum(self.distances * factor, footprint_cap),
        )
        return ReuseProfile(dilated, self.rates)

    # -- queries ------------------------------------------------------------

    @property
    def total_rate(self) -> float:
        """Total accesses per 1000 instructions."""
        return float(self.rates.sum())

    def miss_rate(self, capacity_lines: float) -> float:
        """Misses per 1000 instructions in a ``capacity_lines`` LRU cache."""
        return float(self.rates[self.distances >= capacity_lines].sum())

    def miss_ratio(self, capacity_lines: float) -> float:
        """Miss probability per access."""
        total = self.total_rate
        return self.miss_rate(capacity_lines) / total if total else 0.0

    def footprint_lines(self) -> float:
        """Largest finite distance — a lower bound on the working set."""
        finite = self.distances[np.isfinite(self.distances)]
        return float(finite.max()) if len(finite) else 0.0
