"""Multi-thread reuse composition for a shared LLC.

When SoftSDV time-slices T workload threads onto the platform, the
shared-LLC reference stream is their interleaving.  Section 4.3 groups
the workloads by what that does to the working set:

* threads sharing one primary data structure (MDS, SVM-RFE, SNP):
  cache performance "does not vary with increasing thread count";
* threads with a big shared structure plus small private data (FIMI,
  RSEARCH, PLSA): footprint grows by a small per-thread increment;
* threads with mostly-private data (SHOT: ~4 MB/thread, VIEWTYPE:
  ~1 MB/thread): footprint grows ~linearly with threads.

The composition rules implemented here produce exactly those behaviours
from per-thread profiles:

* **shared** regions: the interleaved stream revisits the same lines at
  T times the per-thread rate, so stack distances in distinct lines are
  unchanged — the profile passes through untouched;
* **private** regions: between two accesses of one thread, the other
  T-1 (symmetric) threads insert roughly (T-1)/T of the interleaved
  distinct-line traffic, so per-thread distances dilate by a factor of
  T, capped by the total private footprint T x W.

Rates stay in per-1000-*aggregate*-instructions: with all threads
retiring instructions, per-instruction rates of symmetric threads equal
the single-thread rates.
"""

from __future__ import annotations

import numpy as np

from repro.reuse.histogram import ReuseProfile


def dilate_private(profile: ReuseProfile, threads: int) -> ReuseProfile:
    """Compose a per-thread *private-region* profile across ``threads``.

    Distances multiply by the thread count (interleaving dilation); the
    cap is the total footprint across all threads' private copies.
    """
    if threads <= 0:
        raise ValueError(f"threads must be positive, got {threads}")
    if threads == 1:
        return profile
    finite = profile.distances[np.isfinite(profile.distances)]
    footprint = float(finite.max()) if len(finite) else 0.0
    return profile.dilated(threads, footprint_cap=max(footprint * threads, 1.0))


def compose_threads(
    shared: ReuseProfile, private: ReuseProfile, threads: int
) -> ReuseProfile:
    """Full composition: shared profile unchanged, private dilated."""
    return shared.combine(dilate_private(private, threads))
