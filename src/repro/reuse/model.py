"""MPKI curves from reuse profiles, and model↔simulation validation.

The paper's Figures 4-7 plot shared-LLC misses per 1000 instructions
against cache size or line size.  Given a :class:`ReuseProfile` at the
relevant line size, those curves are direct reads:
``MPKI(C) = profile.miss_rate(C / line_size)``.

The fully-associative-LRU assumption matches the stack-distance theory
exactly; for the high-associativity LLCs of interest (16-way), set
conflicts perturb the curve by a few percent, which is far below the
workload-to-workload differences the paper interprets.  The validation
helpers here quantify exactly that on down-scaled traces.
"""

from __future__ import annotations

from typing import Sequence

from repro.cache.cache import FullyAssociativeLRU
from repro.reuse.histogram import ReuseProfile
from repro.reuse.olken import miss_count, stack_distances
from repro.trace.record import TraceChunk


def miss_ratio_at(profile: ReuseProfile, cache_size: int, line_size: int) -> float:
    """Miss probability per access at the given cache geometry."""
    return profile.miss_ratio(cache_size / line_size)


def mpki_at(profile: ReuseProfile, cache_size: int, line_size: int) -> float:
    """Misses per 1000 instructions at the given cache geometry."""
    return profile.miss_rate(cache_size / line_size)


def mpki_curve(
    profile: ReuseProfile, cache_sizes: Sequence[int], line_size: int = 64
) -> list[tuple[int, float]]:
    """MPKI across a cache-size sweep (one Figure 4-6 series)."""
    return [(size, mpki_at(profile, size, line_size)) for size in cache_sizes]


def predicted_misses(
    profile: ReuseProfile, cache_size: int, line_size: int, instructions: int
) -> float:
    """Absolute miss count the profile predicts for a run length."""
    return mpki_at(profile, cache_size, line_size) * instructions / 1000.0


def exact_miss_count(chunk: TraceChunk, cache_size: int, line_size: int = 64) -> int:
    """Misses of a fully-associative LRU cache on an actual trace."""
    cache = FullyAssociativeLRU(capacity_lines=cache_size // line_size, line_size=line_size)
    cache.access_chunk(chunk)
    return cache.stats.misses


def stack_distance_miss_count(
    chunk: TraceChunk, cache_size: int, line_size: int = 64
) -> int:
    """Misses predicted by exact stack distances — must equal
    :func:`exact_miss_count`; the property tests assert this identity."""
    distances = stack_distances(chunk, line_size)
    return miss_count(distances, cache_size // line_size, count_cold=True)


def empirical_profile(
    chunk: TraceChunk, instructions: int, line_size: int = 64
) -> ReuseProfile:
    """Measure a trace's reuse profile (the exact-path→model-path bridge)."""
    return ReuseProfile.from_distances(
        stack_distances(chunk, line_size), instructions=instructions
    )


def relative_error(predicted: float, observed: float) -> float:
    """Symmetric relative error used by the validation tests."""
    denominator = max(abs(observed), 1e-12)
    return abs(predicted - observed) / denominator
