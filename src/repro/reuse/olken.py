"""Exact LRU stack distances (Olken's algorithm).

For each access, the stack distance is the number of *distinct* lines
referenced since the previous reference to the same line; cold (first)
references get :data:`COLD`.  A fully-associative LRU cache of capacity
``C`` lines misses exactly the accesses with distance >= C, which is the
bridge between trace simulation and the analytic models — and the
property the test suite verifies against :class:`FullyAssociativeLRU`.

The textbook formulation keeps a Fenwick tree holding a 1 at the
last-reference time of every tracked line and, per access, *moves* the
one from the previous reference to the current time (two point updates)
and takes the difference of two prefix sums.  This implementation
batches everything batchable and halves the sequential tree work:

* previous-occurrence times are computed for the whole chunk up front
  with one ``np.unique(..., return_inverse=True)`` plus a stable
  argsort — no per-access dict probes;
* the minuend ``prefix_sum(t - 1)`` is just the number of distinct
  lines seen so far (every tracked line contributes exactly one 1), so
  it comes from one vectorized ``cumsum`` over the cold mask instead of
  a tree walk;
* the tree tracks *superseded* last-use positions instead of current
  ones.  When access ``t`` re-references the line last used at ``p``,
  position ``p`` stops being a last use — one ``add(p, +1)``.  The
  number of still-current positions ``<= p`` is then
  ``(p + 1) - prefix_sum(p)``, so each non-cold access costs one walk
  plus one update (the classic tree pays two of each), and cold
  accesses never touch the tree at all.

The tree itself is a flat ``numpy.int64`` array; the sequential
walk/update loop is the only part of the algorithm that is inherently
serial.  ``benchmarks/test_simulator_throughput.py`` holds a throughput
floor over this path.
"""

from __future__ import annotations

import numpy as np

from repro.trace.record import TraceChunk

#: Sentinel distance for cold (first-ever) references.
COLD: int = -1


def previous_occurrences(lines: np.ndarray) -> np.ndarray:
    """Index of each access's previous same-line access (-1 when cold).

    Vectorized: group accesses by line with one stable argsort of the
    ``np.unique`` inverse, then link neighbours within each group.
    """
    n = len(lines)
    previous = np.full(n, -1, dtype=np.int64)
    if n < 2:
        return previous
    _, inverse = np.unique(np.asarray(lines), return_inverse=True)
    order = np.argsort(inverse, kind="stable")
    same_line = inverse[order[1:]] == inverse[order[:-1]]
    previous[order[1:][same_line]] = order[:-1][same_line]
    return previous


def stack_distances(chunk: TraceChunk, line_size: int = 64) -> np.ndarray:
    """Exact per-access stack distances of ``chunk`` at ``line_size``.

    Returns an int64 array; cold references are :data:`COLD`.
    Distances are in cache lines.
    """
    lines = chunk.lines(line_size)
    n = len(lines)
    result = np.full(n, COLD, dtype=np.int64)
    if n == 0:
        return result
    previous = previous_occurrences(lines)
    warm = previous >= 0
    if not warm.any():
        return result
    # distinct[t] = lines seen before access t = prefix_sum over the
    # tracked-line ones at time t (the minuend of the textbook form).
    distinct = np.cumsum(~warm) - (~warm)
    # Fenwick tree (1-based) over superseded last-use positions.  The
    # walk loop reads/writes it through a memoryview: scalar indexing
    # then yields native ints instead of boxed numpy scalars, which is
    # ~40% faster without giving up the flat int64 storage.
    tree_array = np.zeros(n + 1, dtype=np.int64)
    tree = memoryview(tree_array)
    times = np.flatnonzero(warm)
    warm_distinct = distinct[times].tolist()
    warm_previous = previous[times].tolist()
    warm_result = []
    note = warm_result.append
    for seen, p in zip(warm_distinct, warm_previous):
        # Current last-use positions <= p: (p + 1) minus superseded ones.
        i = p + 1
        superseded = 0
        while i > 0:
            superseded += tree[i]
            i -= i & (-i)
        note(seen - (p + 1) + superseded)
        # Position p is no longer a last use.
        i = p + 1
        while i <= n:
            tree[i] += 1
            i += i & (-i)
    result[times] = warm_result
    return result


def miss_count(distances: np.ndarray, capacity_lines: int, count_cold: bool = True) -> int:
    """Misses a fully-associative LRU cache of ``capacity_lines`` incurs."""
    capacity_misses = int(np.count_nonzero(distances >= capacity_lines))
    if count_cold:
        return capacity_misses + int(np.count_nonzero(distances == COLD))
    return capacity_misses


def miss_curve(
    distances: np.ndarray, capacities: list[int], count_cold: bool = True
) -> list[tuple[int, int]]:
    """Miss counts across several capacities from one distance array."""
    return [(c, miss_count(distances, c, count_cold)) for c in capacities]
