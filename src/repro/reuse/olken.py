"""Exact LRU stack distances (Olken's algorithm).

For each access, the stack distance is the number of *distinct* lines
referenced since the previous reference to the same line; cold (first)
references get :data:`COLD`.  A fully-associative LRU cache of capacity
``C`` lines misses exactly the accesses with distance >= C, which is the
bridge between trace simulation and the analytic models — and the
property the test suite verifies against :class:`FullyAssociativeLRU`.

Implementation: a Fenwick tree over access timestamps holds a 1 at the
last-reference time of every currently-tracked line; the distance of an
access at time ``t`` whose line was last referenced at ``p`` is the
number of ones strictly between ``p`` and ``t``.
"""

from __future__ import annotations

import numpy as np

from repro.trace.record import TraceChunk

#: Sentinel distance for cold (first-ever) references.
COLD: int = -1


class _Fenwick:
    """Fenwick (binary-indexed) tree with point update / prefix sum."""

    __slots__ = ("tree", "size")

    def __init__(self, size: int) -> None:
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        tree = self.tree
        while i <= self.size:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of elements [0, index]."""
        i = index + 1
        total = 0
        tree = self.tree
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total


def stack_distances(chunk: TraceChunk, line_size: int = 64) -> np.ndarray:
    """Exact per-access stack distances of ``chunk`` at ``line_size``.

    Returns an int64 array; cold references are :data:`COLD`.
    Distances are in cache lines.
    """
    lines = chunk.lines(line_size)
    n = len(lines)
    result = np.empty(n, dtype=np.int64)
    if n == 0:
        return result
    fenwick = _Fenwick(n)
    last_time: dict[int, int] = {}
    for t in range(n):
        line = int(lines[t])
        previous = last_time.get(line)
        if previous is None:
            result[t] = COLD
        else:
            # Distinct lines referenced strictly after `previous`:
            # each tracked line contributes a 1 at its last-use time.
            result[t] = fenwick.prefix_sum(t - 1) - fenwick.prefix_sum(previous)
            fenwick.add(previous, -1)
        fenwick.add(t, +1)
        last_time[line] = t
    return result


def miss_count(distances: np.ndarray, capacity_lines: int, count_cold: bool = True) -> int:
    """Misses a fully-associative LRU cache of ``capacity_lines`` incurs."""
    capacity_misses = int(np.count_nonzero(distances >= capacity_lines))
    if count_cold:
        return capacity_misses + int(np.count_nonzero(distances == COLD))
    return capacity_misses


def miss_curve(
    distances: np.ndarray, capacities: list[int], count_cold: bool = True
) -> list[tuple[int, int]]:
    """Miss counts across several capacities from one distance array."""
    return [(c, miss_count(distances, c, count_cold)) for c in capacities]
