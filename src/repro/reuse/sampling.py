"""Sampled stack-distance analysis (SHARDS-style).

Exact stack distances cost O(N log N) with a large constant in Python;
for long traces that dominates experiment turnaround.  The fixed-rate
spatial-sampling estimator (Waldspurger et al.'s SHARDS) cuts the cost
by analysing only a hash-selected subset of *lines*:

* a line is sampled iff ``hash(line) mod M < R·M`` — every access to a
  sampled line is analysed, accesses to unsampled lines are skipped
  entirely, so the sampled trace is a faithful sub-trace of the sampled
  lines' reuse behaviour;
* a sampled access's stack distance over the sampled lines
  underestimates the true distance by exactly the sampling rate in
  expectation, so distances are rescaled by ``1/R``;
* rates (accesses per 1000 instructions) are likewise scaled by ``1/R``.

The estimator converges to the exact profile as R→1 and is unbiased for
miss-ratio curves under the spatial-hash assumption;
``tests/test_reuse_sampling.py`` quantifies the error against the exact
analyser.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.reuse.histogram import ReuseProfile
from repro.reuse.olken import stack_distances
from repro.trace.record import TraceChunk

#: Modulus of the sampling hash (2^24 as in the SHARDS paper).
HASH_MODULUS = 1 << 24
_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)


def sampled_lines_mask(lines: np.ndarray, rate: float) -> np.ndarray:
    """Boolean mask of accesses whose *line* falls in the sample.

    The hash is a fixed multiplicative mix, so the same line is either
    always sampled or never — the spatial-sampling property the
    distance rescaling depends on.
    """
    if not 0 < rate <= 1:
        raise ConfigurationError(f"rate must be in (0, 1], got {rate}")
    threshold = np.uint64(int(rate * HASH_MODULUS))
    hashed = (lines * _HASH_MULTIPLIER) >> np.uint64(40)  # top 24 bits
    return hashed < threshold


def sampled_profile(
    chunk: TraceChunk,
    instructions: int,
    rate: float = 0.1,
    line_size: int = 64,
) -> ReuseProfile:
    """Estimate a trace's reuse profile from a ``rate`` line sample."""
    if instructions <= 0:
        raise ConfigurationError(f"instructions must be positive, got {instructions}")
    lines = chunk.lines(line_size)
    mask = sampled_lines_mask(lines, rate)
    sampled = TraceChunk(
        chunk.addresses[mask], chunk.kinds[mask], chunk.cores[mask], chunk.pcs[mask]
    )
    if len(sampled) == 0:
        return ReuseProfile.empty()
    distances = stack_distances(sampled, line_size).astype(np.float64)
    cold = distances < 0
    distances[~cold] /= rate  # rescale sampled distances to full-trace scale
    distances[cold] = np.inf
    rates = np.full(len(distances), 1000.0 / instructions / rate)
    return ReuseProfile(distances, rates)


def sampled_mpki(
    chunk: TraceChunk,
    instructions: int,
    cache_size: int,
    rate: float = 0.1,
    line_size: int = 64,
) -> float:
    """Estimated misses per 1000 instructions at ``cache_size``."""
    profile = sampled_profile(chunk, instructions, rate, line_size)
    return profile.miss_rate(cache_size / line_size)
