"""Co-simulation as a service: the ``repro-serve`` job server.

The package turns the one-shot harness CLIs into a long-running
serving layer:

* :mod:`repro.serve.jobspec` — the canonical job-spec/job-result model
  every front door shares (``repro-cosim``, ``repro-runall``, the
  server), plus the content-key helpers that keep server dedup,
  sweep journals, and trace-cache addressing derived from one place;
* :mod:`repro.serve.queue` — admission queue, priority scheduler, and
  the batch planner that coalesces jobs sharing a captured trace into
  single-pass multi-config replays;
* :mod:`repro.serve.server` — the daemon: JSON over local HTTP,
  streaming results and telemetry windows back to clients;
* :mod:`repro.serve.client` — a zero-dependency client used by the
  traffic-replay harness, the tests, and CI;
* :mod:`repro.serve.daemon` — the ``repro-serve`` command line.
"""

from repro.serve.jobspec import (
    JOBSPEC_VERSION,
    JobSpec,
    canonicalize,
    content_key,
    pickle_digest,
    point_content_key,
    raw_digest,
    result_digest,
)

__all__ = [
    "JOBSPEC_VERSION",
    "JobSpec",
    "canonicalize",
    "content_key",
    "pickle_digest",
    "point_content_key",
    "raw_digest",
    "result_digest",
]
