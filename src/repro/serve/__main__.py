"""``python -m repro.serve`` — the repro-serve daemon."""

from repro.serve.daemon import main

if __name__ == "__main__":
    raise SystemExit(main())
