"""A zero-dependency client for the ``repro-serve`` HTTP API.

Used by the traffic-replay harness, the test suite, and the CI smoke —
thin wrappers over :mod:`http.client` that speak the daemon's JSON
bodies and raise :class:`~repro.errors.ServeError` with the server's
own status code on any non-2xx reply, so callers branch on ``.status``
(429 backpressure, 503 draining, 400 bad spec) instead of parsing
error strings.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Mapping

from repro.errors import ServeError


class ServeClient:
    """One daemon endpoint; a fresh connection per call (thread-safe)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str, body: Any = None) -> Any:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            if response.status >= 400:
                message = f"HTTP {response.status}"
                try:
                    message = json.loads(raw.decode("utf-8"))["error"]
                except (ValueError, KeyError, UnicodeDecodeError):
                    pass
                raise ServeError(message, status=response.status)
            if not raw:
                return None
            content_type = response.getheader("Content-Type", "")
            if content_type.startswith("text/plain"):
                return raw.decode("utf-8")
            return json.loads(raw.decode("utf-8"))
        except (OSError, http.client.HTTPException) as error:
            raise ServeError(f"server unreachable: {error}", status=502) from error
        finally:
            connection.close()

    # -- API ----------------------------------------------------------

    def submit(
        self,
        spec: Mapping[str, Any],
        mode: str = "batch",
        priority: int = 0,
    ) -> dict[str, Any]:
        return self._request(
            "POST",
            "/v1/jobs",
            {"spec": dict(spec), "mode": mode, "priority": priority},
        )

    def job(self, job_id: str, wait: float = 0.0) -> dict[str, Any]:
        path = f"/v1/jobs/{job_id}"
        if wait > 0:
            path += f"?wait={wait:g}"
        return self._request("GET", path)

    def wait(self, job_id: str, timeout: float = 300.0) -> dict[str, Any]:
        """Long-poll until the job leaves the queue/run states."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeError(f"timed out waiting for {job_id}", status=504)
            payload = self.job(job_id, wait=min(remaining, 30.0))
            if payload["state"] in ("done", "failed", "cancelled"):
                return payload

    def windows(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}/windows")

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def metrics(self) -> str:
        return self._request("GET", "/v1/metrics")

    def healthz(self) -> dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def drain(self) -> dict[str, Any]:
        return self._request("POST", "/v1/drain")

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Poll ``/v1/healthz`` until the daemon answers (or time out)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.healthz()
                return
            except ServeError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
