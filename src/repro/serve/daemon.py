"""``repro-serve``: the co-simulation job server's command line.

Starts the daemon, prints (and optionally writes to ``--ready-file``)
the bound address, and serves until told to stop:

* ``SIGTERM`` or ``POST /v1/drain`` — stop admitting, finish every
  pending job, print the end-of-run summary, exit 0 (clean drain);
* ``SIGINT`` — the same drain, exit 130 (the shell convention all the
  repro CLIs share);
* ``--deadline`` — the governor's run-level budget; expiry drains and
  exits 124, exactly like ``repro-cosim``.

Examples::

    repro-serve --port 8123 --trace-cache ~/.cache/repro-traces
    repro-serve --port 0 --ready-file /tmp/serve.addr --profile
    repro-serve --no-batching --max-queue 64   # A/B baseline server
"""

from __future__ import annotations

import argparse
import signal
import threading
import time

from repro.exit_codes import EXIT_DEADLINE, EXIT_INTERRUPTED, EXIT_OK
from repro.governor.budget import active_governor, govern
from repro.harness.cli import build_budget, startup_gc, telemetry_requested
from repro.harness.supervisor import SupervisorPolicy
from repro.serve.server import JobServer
from repro.telemetry import profile as profiling
from repro.telemetry import runtime as telemetry
from repro.telemetry.sinks import write_prometheus
from repro.trace.cache import resolve_trace_cache
from repro.units import parse_size


def build_parser() -> argparse.ArgumentParser:
    """The repro-serve argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve co-simulation jobs over local HTTP: admission "
        "queue, priority scheduler, and batch planner over the replay "
        "engine.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=8123,
        help="bind port (0 picks a free one; see --ready-file)",
    )
    parser.add_argument(
        "--ready-file",
        metavar="FILE",
        default=None,
        help="write 'host port' to FILE once listening (atomic); how "
        "harnesses discover a --port 0 daemon",
    )
    parser.add_argument(
        "--trace-cache",
        metavar="DIR",
        default=None,
        help="content-addressed trace cache shared with the CLIs "
        "(default: $REPRO_TRACE_CACHE; 'off' disables)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes per replay pass (0 = one per CPU)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=256,
        metavar="N",
        help="admission bound; a full queue answers 429 (default: 256)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=16,
        metavar="N",
        help="jobs one replay pass may coalesce (default: 16)",
    )
    parser.add_argument(
        "--no-batching",
        dest="batching",
        action="store_false",
        help="disable coalescing: every pass runs exactly one job (the "
        "traffic harness's A/B baseline)",
    )
    parser.set_defaults(batching=True)
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-point wall-clock budget inside a replay pass",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="re-runs granted to a failing sweep point (default: 2)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="run-level wall-clock budget; expiry drains and exits 124",
    )
    parser.add_argument(
        "--disk-quota",
        metavar="SIZE",
        default=None,
        help="trace-cache disk budget, e.g. 512MB (LRU eviction)",
    )
    parser.add_argument(
        "--mem-budget",
        metavar="SIZE",
        default=None,
        help="process maxrss high-water mark, e.g. 2GB",
    )
    parser.add_argument(
        "--telemetry",
        nargs="?",
        const=True,
        default=False,
        metavar="EVENTS.jsonl",
        help="enable the telemetry subsystem (gauges, counters, spans, "
        "the /v1/metrics endpoint); with a path, also log every event",
    )
    parser.add_argument(
        "--metrics-file",
        metavar="FILE",
        default=None,
        help="write the final registry to FILE in Prometheus format at "
        "drain (implies --telemetry)",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const=True,
        default=False,
        metavar="FILE",
        help="print the end-of-run profile at drain, reconciling the "
        "serve counters with the span tree (implies --telemetry)",
    )
    # build_budget/startup_gc are shared with the other CLIs and read
    # this attribute; the daemon has no checkpoint directory.
    parser.set_defaults(checkpoint_dir=None)
    return parser


def _write_ready_file(path: str, host: str, port: int) -> None:
    import os
    import tempfile

    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, staged = tempfile.mkstemp(dir=directory, prefix=".ready-")
    with os.fdopen(fd, "w") as handle:
        handle.write(f"{host} {port}\n")
    os.replace(staged, path)


def _summary_line(server: JobServer) -> str:
    stats = server.stats()
    return (
        f"repro-serve drained: {stats['completed']} completed, "
        f"{stats['deduplicated']} deduplicated, {stats['failed']} failed "
        f"over {stats['replay_passes']} replay pass(es) "
        f"({stats['jobs_per_pass']:.2f} jobs/pass), "
        f"{stats['priority_inversions']} priority inversion(s)"
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if telemetry_requested(args):
        telemetry.configure(
            events_path=args.telemetry if isinstance(args.telemetry, str) else None
        )
    try:
        with govern(build_budget(args)):
            return _main(args)
    finally:
        if telemetry_requested(args):
            telemetry.shutdown()


def _main(args: argparse.Namespace) -> int:
    trace_cache = resolve_trace_cache(
        args.trace_cache,
        disk_quota=parse_size(args.disk_quota) if args.disk_quota else None,
    )
    startup_gc(args, trace_cache)
    server = JobServer(
        trace_cache=trace_cache,
        jobs=args.jobs,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        batching=args.batching,
        policy=SupervisorPolicy(timeout=args.timeout, retries=args.retries),
    )

    stop = threading.Event()
    interrupted = threading.Event()

    def _on_sigterm(signum, frame) -> None:
        server.queue.drain()
        stop.set()

    def _on_sigint(signum, frame) -> None:
        interrupted.set()
        server.queue.drain()
        stop.set()

    signal.signal(signal.SIGTERM, _on_sigterm)
    signal.signal(signal.SIGINT, _on_sigint)

    with telemetry.span("run"):
        server.start_worker()
        host, port = server.start_http(args.host, args.port)
        print(f"repro-serve listening on {host}:{port}", flush=True)
        if args.ready_file:
            _write_ready_file(args.ready_file, host, port)

        exit_code = EXIT_OK
        governor = active_governor()
        while not stop.is_set():
            if server.queue.draining:
                break
            if governor is not None and governor.deadline_expired():
                print("deadline: serve budget expired; draining", flush=True)
                server.queue.drain()
                exit_code = EXIT_DEADLINE
                break
            stop.wait(0.1)

        # Drain: the queue stops admitting (new submits answer 503) and
        # the executor finishes every already-admitted job.
        server.drain(wait=True)
        print(_summary_line(server), flush=True)
        if interrupted.is_set():
            exit_code = EXIT_INTERRUPTED
        server.shutdown()
    _emit_telemetry(args, server)
    return exit_code


def _emit_telemetry(args: argparse.Namespace, server: JobServer) -> None:
    """The end-of-run profile/metrics, after the root span closed."""
    if not telemetry.enabled():
        return
    registry = telemetry.registry()
    # Workers do not share this registry: publish the served results'
    # aggregates parent-side (the CLI's contract) so the profile's
    # reconciliation compares real sums, not empty ones.
    profiling.publish_results(registry, server.completed_results)
    if args.profile:
        profile = profiling.build_profile(
            server.completed_results, telemetry.tracker(), registry
        )
        print()
        print(profiling.render_profile(profile))
        if isinstance(args.profile, str):
            profiling.write_profile(profile, args.profile)
    if args.metrics_file:
        write_prometheus(registry, args.metrics_file)


if __name__ == "__main__":
    raise SystemExit(main())
