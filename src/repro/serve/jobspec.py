"""The canonical job-spec/job-result model every front door shares.

A :class:`JobSpec` is one simulation job — (workload, geometry, cores,
quantum, flags) — in a single canonical, content-keyed form.
``repro-cosim`` builds one from its argument namespace, the
``repro-serve`` daemon parses one out of each request body, and both
run it through the same replay engine, so a served job's result is
byte-identical to the same spec run from the command line
(:func:`result_digest` makes that checkable in one line).

Three content keys, one derivation chain:

* :meth:`JobSpec.content_key` — the *job* identity: every field that
  can change the result.  The server's dedup map and result store are
  keyed by it.
* :meth:`JobSpec.capture_key` — the *captured trace* identity: exactly
  the :func:`repro.harness.replay.log_cache_key` the trace cache uses,
  so "two jobs share a capture" and "the cache already holds this
  trace" are, by construction, the same question.
* :meth:`JobSpec.coalesce_key` — the *replay pass* identity: the
  capture key plus the per-pass knobs (lenient/inject/audit/sample).
  Jobs with equal coalesce keys can ride one single-pass multi-config
  replay; the batch planner groups by it.

This module also owns the canonicalization helpers the sweep journal
and fabric ledger key their records with (:func:`canonicalize`,
:func:`point_content_key`, :func:`pickle_digest`).  They used to live
in the supervisor; hoisted here so server dedup, journal resume keys,
and ledger byte-identity checks can never drift apart.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, fields as dataclass_fields
from fractions import Fraction
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import JobSpecError, ReproError
from repro.trace.cache import cache_key
from repro.units import format_size, parse_size

#: Bumped whenever a field is added or a default changes meaning; part
#: of every content key, so two builds can never silently share state
#: for specs they would run differently.
JOBSPEC_VERSION = 1

#: Boot-noise transactions the capture path always uses (the platform
#: default ``repro-cosim`` never exposes as a flag).
BOOT_NOISE_ACCESSES = 8192

_SOURCES = ("kernel", "synthetic")
_MODES = ("interactive", "batch")


# -- canonical content keys (shared with journal + ledger) -------------


class CanonicalSet(tuple):
    """Marker wrapper for a set canonicalized to an ordered tuple.

    A distinct type keeps a canonicalized set from colliding with a
    genuine tuple of the same members in the key space.
    """

    __slots__ = ()


def canonicalize(value: Any) -> Any:
    """Rebuild ``value`` with deterministic container ordering.

    Pickle serializes dicts and sets in iteration order, so two equal
    items built in different orders pickle to different bytes and get
    different content keys.  Dicts are rebuilt with entries sorted by
    their pickled keys (a total, content-stable order — ``repr`` ties
    or cross-type ``<`` comparisons are not), sets become sorted
    :class:`CanonicalSet` tuples, and lists/tuples/namedtuples recurse
    elementwise.  Items without dicts or sets are returned structurally
    identical, so their keys — and existing journals holding them —
    are unchanged.
    """
    if isinstance(value, dict):
        pairs = [(key, canonicalize(item)) for key, item in value.items()]
        pairs.sort(key=lambda pair: pickle.dumps(pair[0], protocol=4))
        return dict(pairs)
    if isinstance(value, (set, frozenset)):
        members = sorted(
            (canonicalize(member) for member in value),
            key=lambda member: pickle.dumps(member, protocol=4),
        )
        return CanonicalSet(members)
    if isinstance(value, list):
        return [canonicalize(item) for item in value]
    if isinstance(value, tuple):
        items = tuple(canonicalize(item) for item in value)
        if type(value) is tuple:
            return items
        if hasattr(value, "_fields"):  # namedtuple: rebuild same type
            return type(value)(*items)
        return value  # unknown tuple subclass: leave untouched
    return value


def point_content_key(identity: str, item: Any) -> str:
    """Content key of one grid point: task identity + canonical item.

    The key the sweep journal, the fabric ledger's manifest, and the
    server's per-point bookkeeping all share —
    :meth:`repro.harness.supervisor.SweepJournal.point_key` delegates
    here, so existing journals keep their keys.
    """
    payload = pickle.dumps(canonicalize(item), protocol=4)
    return hashlib.sha256(
        identity.encode("utf-8") + b"\x1f" + payload
    ).hexdigest()


def raw_digest(raw: bytes) -> str:
    """SHA-256 hex digest of raw bytes — the platform's one hash spelling."""
    return hashlib.sha256(raw).hexdigest()


def pickle_digest(value: Any) -> str:
    """SHA-256 of ``value``'s protocol-4 pickle bytes.

    The byte-identity currency of the platform: the fabric ledger
    verifies racing re-executions with it, and the serving layer stamps
    every job result with it so "served equals CLI" is one string
    comparison.
    """
    return raw_digest(pickle.dumps(value, protocol=4))


def result_digest(results: Iterable[Any]) -> str:
    """Digest of an ordered result list (the job-result identity)."""
    return pickle_digest(list(results))


def content_key(fields: Mapping[str, object]) -> str:
    """Content address of a JSON-serializable field mapping.

    Re-exported from the trace cache so every layer that needs a
    canonical-JSON SHA-256 (server dedup, fingerprint cache, capture
    keys) spells it the same way.
    """
    return cache_key(fields)


# -- the job spec ------------------------------------------------------


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise JobSpecError(message)


def _as_int(name: str, value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise JobSpecError(f"{name} must be an integer, got {value!r}")
    return value


def _parse_cache(value: Any) -> tuple[int, ...]:
    """Cache sizes from any accepted form: "1MB,4MB", ints, or a list."""
    if isinstance(value, str):
        tokens = [token.strip() for token in value.split(",") if token.strip()]
        _require(bool(tokens), f"cache list {value!r} names no sizes")
        return tuple(parse_size(token) for token in tokens)
    if isinstance(value, int) and not isinstance(value, bool):
        return (value,)
    if isinstance(value, (list, tuple)):
        _require(bool(value), "cache list names no sizes")
        sizes = []
        for item in value:
            if isinstance(item, str):
                sizes.append(parse_size(item))
            else:
                sizes.append(_as_int("cache size", item))
        return tuple(sizes)
    raise JobSpecError(f"cache must be a size, a list, or a CSV string, got {value!r}")


def _parse_scale(value: Any) -> str:
    """Canonical footprint scale: the ``str(Fraction)`` the cache keys use."""
    try:
        fraction = Fraction(value)
    except (ValueError, TypeError, ZeroDivisionError) as error:
        raise JobSpecError(f"scale {value!r} is not a fraction: {error}") from error
    _require(fraction > 0, f"scale must be positive, got {value!r}")
    return str(fraction)


@dataclass(frozen=True)
class JobSpec:
    """One simulation job in canonical form.

    Field defaults mirror ``repro-cosim``'s flag defaults exactly, so a
    spec that names only a workload runs the same simulation the bare
    CLI invocation would.  Instances are validated on construction and
    immutable afterwards; every accepted spec maps 1:1 onto a CLI flag
    combination (:meth:`to_cli_argv`) and back
    (:meth:`from_cli_args`).
    """

    workload: str
    cores: int = 4
    cache: tuple[int, ...] = (4 * 1024 * 1024,)
    line: int = 64
    quantum: int = 4096
    source: str = "kernel"
    accesses: int = 65536
    scale: str = "1/256"
    repeats: int = 1
    sample: str | None = None
    inject: str | None = None
    lenient: bool = False
    audit: str | None = None

    def __post_init__(self) -> None:
        from repro.workloads.profiles import WORKLOAD_NAMES

        _require(
            self.workload in WORKLOAD_NAMES,
            f"unknown workload {self.workload!r}; choose from "
            f"{', '.join(WORKLOAD_NAMES)}",
        )
        object.__setattr__(self, "cache", _parse_cache(self.cache))
        object.__setattr__(self, "scale", _parse_scale(self.scale))
        _require(
            1 <= _as_int("cores", self.cores) <= 64,
            f"cores must be within 1-64, got {self.cores}",
        )
        _require(
            _as_int("quantum", self.quantum) >= 1,
            f"quantum must be positive, got {self.quantum}",
        )
        _require(
            self.source in _SOURCES,
            f"source must be one of {', '.join(_SOURCES)}, got {self.source!r}",
        )
        _require(
            _as_int("accesses", self.accesses) >= 1,
            f"accesses must be positive, got {self.accesses}",
        )
        _require(
            _as_int("repeats", self.repeats) >= 1,
            f"repeats must be >= 1, got {self.repeats}",
        )
        _as_int("line", self.line)
        # Geometry validation is the emulator's own: constructing the
        # Dragonhead configurations raises on anything outside the
        # hardware envelope (size bounds, powers of two, bank divisor).
        try:
            self.configs()
        except ReproError as error:
            raise JobSpecError(f"invalid geometry: {error}") from error
        if self.audit is not None:
            from repro.audit import AUDIT_MODES

            _require(
                self.audit in AUDIT_MODES,
                f"audit must be one of {', '.join(AUDIT_MODES)}, "
                f"got {self.audit!r}",
            )
        if self.inject is not None:
            _require(
                isinstance(self.inject, str) and bool(self.inject.strip()),
                f"inject must be a FAULTSPEC string, got {self.inject!r}",
            )
            try:
                self._fault_spec()
            except ReproError as error:
                raise JobSpecError(f"invalid inject spec: {error}") from error
        _require(isinstance(self.lenient, bool), "lenient must be a boolean")
        if self.sample is not None:
            _require(
                isinstance(self.sample, str) and bool(self.sample.strip()),
                f"sample must be an INTERVAL[,MAXK] string, got {self.sample!r}",
            )
            for conflict in ("inject", "lenient", "audit"):
                _require(
                    not getattr(self, conflict),
                    f"sample cannot be combined with {conflict}: the sampled "
                    "path replays representatives through the strict batched "
                    "pipeline only",
                )
            from repro.simpoint import parse_sample_spec

            try:
                parse_sample_spec(self.sample)
            except ReproError as error:
                raise JobSpecError(f"invalid sample spec: {error}") from error

    # -- JSON round-trip ----------------------------------------------

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "JobSpec":
        """Build a spec from a JSON object, rejecting unknown fields.

        Strictness is the admission contract: a typo'd field name must
        bounce with a 400, never silently run the default simulation.
        """
        if not isinstance(payload, Mapping):
            raise JobSpecError(f"job spec must be a JSON object, got {payload!r}")
        known = {field.name for field in dataclass_fields(cls)}
        data = dict(payload)
        version = data.pop("version", JOBSPEC_VERSION)
        if version != JOBSPEC_VERSION:
            raise JobSpecError(
                f"job spec version {version!r} is not the supported "
                f"{JOBSPEC_VERSION}"
            )
        unknown = sorted(set(data) - known)
        if unknown:
            raise JobSpecError(
                f"unknown job spec field(s): {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}"
            )
        if "workload" not in data:
            raise JobSpecError("job spec must name a workload")
        return cls(**data)

    def to_json(self) -> dict[str, Any]:
        """The canonical JSON form: every field, normalized values."""
        return {
            "version": JOBSPEC_VERSION,
            "workload": self.workload,
            "cores": self.cores,
            "cache": list(self.cache),
            "line": self.line,
            "quantum": self.quantum,
            "source": self.source,
            "accesses": self.accesses,
            "scale": self.scale,
            "repeats": self.repeats,
            "sample": self.sample,
            "inject": self.inject,
            "lenient": self.lenient,
            "audit": self.audit,
        }

    # -- content keys -------------------------------------------------

    def content_key(self) -> str:
        """The job identity: every field that can change the result."""
        fields: dict[str, Any] = {"kind": "jobspec"}
        fields.update(self.to_json())
        return content_key(fields)

    def capture_key_extra(self) -> dict[str, Any]:
        """The ``key_extra`` the CLI stamps captures with — byte-equal.

        Kept field-for-field identical to what ``repro-cosim`` always
        wrote so every trace cached before the serving layer existed
        stays warm.
        """
        if self.source == "kernel":
            extra: dict[str, Any] = {"source": "kernel"}
        else:
            extra = {
                "source": "synthetic",
                "accesses": self.accesses,
                "scale": self.scale,
            }
        if self.repeats != 1:
            extra["repeats"] = self.repeats
        return extra

    def capture_key(self) -> str:
        """The captured trace's content address — the trace cache's key.

        Jobs sharing this key share one generation pass, and a warm
        cache answers it without re-capture; the server's dedup and the
        cache's addressing agree by construction.
        """
        from repro.harness.replay import log_cache_key

        return log_cache_key(
            self.workload,
            self.cores,
            self.quantum,
            BOOT_NOISE_ACCESSES,
            self.capture_key_extra(),
        )

    def coalesce_key(self) -> str:
        """The replay-pass identity: capture plus the per-pass knobs.

        Jobs with equal coalesce keys can ride one single-pass
        multi-config replay (their Dragonhead configurations are the
        only thing that differs); the batch planner groups by it.
        """
        return content_key(
            {
                "kind": "replay-pass",
                "capture": self.capture_key(),
                "lenient": self.lenient,
                "inject": self.inject,
                "audit": self.audit,
                "sample": self.sample,
            }
        )

    # -- run helpers ---------------------------------------------------

    def configs(self) -> list:
        """The Dragonhead configurations this job sweeps."""
        from repro.cache.emulator import DragonheadConfig

        return [
            DragonheadConfig(cache_size=size, line_size=self.line)
            for size in self.cache
        ]

    def build_guest(self):
        """The guest workload this job captures (kernel or synthetic)."""
        from repro.workloads.registry import get_workload

        workload = get_workload(self.workload)
        if self.source == "kernel":
            return workload.kernel_guest(repeats=self.repeats)
        return workload.synthetic_guest(
            accesses_per_thread=self.accesses,
            scale=float(Fraction(self.scale)),
            repeats=self.repeats,
        )

    def _fault_spec(self):
        from repro.faults.spec import parse_fault_spec

        return parse_fault_spec(self.inject)

    def run(self, trace_cache=None, jobs: int | None = None) -> list:
        """Execute this spec through the replay engine; ordered results.

        The exact path ``repro-cosim`` takes: one capture (or cache
        load), one replay per configuration — so
        ``result_digest(spec.run(...))`` is byte-equal no matter which
        front door issued the job.  Sampled specs route through the
        sampled sweep and return ``SampledCoSimResult`` objects.
        """
        from repro.harness.replay import load_or_capture, replay_sweep

        if self.sample is not None:
            from repro.simpoint import parse_sample_spec, sampled_sweep

            log, _ = load_or_capture(
                self.build_guest(),
                self.cores,
                quantum=self.quantum,
                trace_cache=trace_cache,
                key_extra=self.capture_key_extra(),
            )
            log_key = self.capture_key() if trace_cache is not None else None
            return sampled_sweep(
                log,
                self.configs(),
                parse_sample_spec(self.sample),
                trace_cache=trace_cache,
                log_key=log_key,
            )
        return replay_sweep(
            self.build_guest(),
            self.cores,
            self.configs(),
            quantum=self.quantum,
            jobs=jobs,
            trace_cache=trace_cache,
            key_extra=self.capture_key_extra(),
            spec=self._fault_spec(),
            lenient=self.lenient,
            audit=self.audit,
        )

    # -- CLI mapping ---------------------------------------------------

    @classmethod
    def from_cli_args(cls, args) -> "JobSpec":
        """The spec one ``repro-cosim`` argument namespace describes."""
        return cls(
            workload=args.workload,
            cores=args.cores,
            cache=args.cache,
            line=args.line,
            quantum=args.quantum,
            source=args.source,
            accesses=args.accesses,
            scale=str(args.scale),
            repeats=args.repeats,
            sample=args.sample,
            inject=args.inject,
            lenient=args.lenient,
            audit=args.audit,
        )

    def to_cli_argv(self) -> list[str]:
        """``repro-cosim`` flags that reproduce this spec exactly."""
        argv = [
            "--workload", self.workload,
            "--cores", str(self.cores),
            "--cache", ",".join(format_size(size) for size in self.cache),
            "--line", str(self.line),
            "--quantum", str(self.quantum),
            "--source", self.source,
            "--accesses", str(self.accesses),
            "--scale", self.scale,
            "--repeats", str(self.repeats),
        ]
        if self.sample is not None:
            argv += ["--sample", self.sample]
        if self.inject is not None:
            argv += ["--inject", self.inject]
        if self.lenient:
            argv += ["--lenient"]
        if self.audit is not None:
            argv += ["--audit", self.audit]
        return argv


def run_batch(
    specs: Sequence[JobSpec], trace_cache=None, jobs: int | None = None
) -> list[list]:
    """Run coalesced specs through ONE replay pass; per-spec results.

    Every spec must share a coalesce key (same capture, same per-pass
    knobs) — only their Dragonhead geometries differ.  The union of the
    geometries replays over the single captured trace, and each spec's
    result list is sliced back out in its own configuration order, so
    ``result_digest`` of a slice is byte-equal to the digest of the same
    spec run alone: riding a batch is invisible in the result.
    """
    if not specs:
        return []
    lead = specs[0]
    if len(specs) == 1:
        return [lead.run(trace_cache=trace_cache, jobs=jobs)]
    passes = {spec.coalesce_key() for spec in specs}
    if len(passes) != 1:
        raise JobSpecError(
            f"batch mixes {len(passes)} replay passes; the planner must "
            "group by coalesce key"
        )
    union: list = []
    position: dict[tuple[int, int], int] = {}
    for spec in specs:
        for config in spec.configs():
            slot = (config.cache_size, config.line_size)
            if slot not in position:
                position[slot] = len(union)
                union.append(config)

    if lead.sample is not None:
        from repro.harness.replay import load_or_capture
        from repro.simpoint import parse_sample_spec, sampled_sweep

        log, _ = load_or_capture(
            lead.build_guest(),
            lead.cores,
            quantum=lead.quantum,
            trace_cache=trace_cache,
            key_extra=lead.capture_key_extra(),
        )
        pooled = sampled_sweep(
            log,
            union,
            parse_sample_spec(lead.sample),
            trace_cache=trace_cache,
            log_key=lead.capture_key() if trace_cache is not None else None,
        )
    else:
        from repro.harness.replay import replay_sweep

        pooled = replay_sweep(
            lead.build_guest(),
            lead.cores,
            union,
            quantum=lead.quantum,
            jobs=jobs,
            trace_cache=trace_cache,
            key_extra=lead.capture_key_extra(),
            spec=lead._fault_spec(),
            lenient=lead.lenient,
            audit=lead.audit,
        )
    return [
        [
            pooled[position[(config.cache_size, config.line_size)]]
            for config in spec.configs()
        ]
        for spec in specs
    ]


def summarize_results(spec: JobSpec, results: Sequence[Any]) -> dict[str, Any]:
    """The job-result payload both the server and the CLI can emit.

    One entry per configuration (index-aligned with ``spec.cache``)
    plus the result digest — the canonical, JSON-safe rendering of a
    job's outcome.  Sampled results carry their error bars; exact
    results carry the full counter set.
    """
    sampled = spec.sample is not None
    configs = []
    for size, result in zip(spec.cache, results):
        entry: dict[str, Any] = {
            "cache_size": size,
            "line_size": spec.line,
        }
        if sampled:
            entry.update(
                mpki=result.mpki.value,
                mpki_error=result.mpki.error,
                misses=result.misses,
                miss_ratio=result.miss_ratio,
            )
        else:
            entry.update(
                mpki=result.mpki,
                misses=result.llc_stats.misses,
                miss_ratio=result.llc_stats.miss_ratio,
                accesses=result.accesses,
                instructions=result.instructions,
                filtered=result.filtered,
                windows=len(result.samples),
                degraded=result.degraded,
            )
        configs.append(entry)
    return {
        "workload": spec.workload,
        "cores": spec.cores,
        "sampled": sampled,
        "digest": result_digest(results),
        "configs": configs,
    }
