"""Admission queue, priority scheduler, and batch planner.

The serving pipeline between the HTTP front door and the replay
engine, as three small pieces sharing one lock:

* **admission** — :meth:`JobQueue.submit` bounds the pending backlog
  (``max_queue``); past the bound new work is rejected with a 429-style
  :class:`~repro.errors.ServeError` rather than queued into unbounded
  latency, and a draining server admits nothing at all (503).
* **priority scheduler** — the next batch *leader* is always the
  globally most-urgent pending job: highest ``priority`` first, then
  ``interactive`` before ``batch``, then FIFO sequence.  Because the
  leader is chosen globally, a batch can never start while a
  strictly-more-urgent job waits — the priority-inversion counter the
  server exports stays zero by construction, and the traffic harness
  asserts it.
* **batch planner** — every other pending job sharing the leader's
  :meth:`~repro.serve.jobspec.JobSpec.coalesce_key` (same captured
  trace, same per-pass knobs) rides the leader's single replay pass as
  a *rider*, up to ``max_batch`` jobs.  Riders are taken regardless of
  their own priority: riding costs one extra Dragonhead configuration
  in an already-running pass, so a low-priority rider finishing early
  never delays anyone.  ``batching=False`` (the harness's
  ``--no-batching`` baseline) degrades every batch to its leader alone.

The queue knows nothing about HTTP or the replay engine — it moves
:class:`Job` records between states under a condition variable, which
is what makes the scheduler unit-testable without sockets.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ServeError
from repro.serve.jobspec import JobSpec
from repro.telemetry import runtime as telemetry

#: Scheduler rank of each mode at equal priority: interactive requests
#: model a user waiting on the result; batch requests model backfill.
_MODE_RANK = {"interactive": 0, "batch": 1}

MODES = tuple(_MODE_RANK)

#: Job lifecycle: ``pending`` (admitted, queued) → ``running`` (in a
#: replay pass) → ``done`` | ``failed``.  Deduplicated jobs are born
#: ``done``; a drained-away job ends ``cancelled``.
STATES = ("pending", "running", "done", "failed", "cancelled")


@dataclass
class Job:
    """One admitted request's full lifecycle record."""

    id: str
    spec: JobSpec
    mode: str
    priority: int
    seq: int
    submitted_wall: float = field(default_factory=time.time)
    submitted: float = field(default_factory=time.monotonic)
    started: float | None = None
    completed: float | None = None
    state: str = "pending"
    outcome: str | None = None  # completed | deduplicated | failed | cancelled
    error: str | None = None
    batch_id: int | None = None
    batch_size: int = 0
    coalesced: bool = False
    capture_warm: bool = False
    digest: str | None = None
    summary: dict[str, Any] | None = None
    windows: list[dict[str, Any]] | None = None
    done_event: threading.Event = field(default_factory=threading.Event)

    def precedence(self) -> tuple[int, int, int]:
        """Scheduler order key — smaller runs first."""
        return (-self.priority, _MODE_RANK[self.mode], self.seq)

    @property
    def queue_ms(self) -> float | None:
        """Admission-to-start latency (the number the harness collects)."""
        if self.started is None:
            return None
        return (self.started - self.submitted) * 1e3

    @property
    def run_ms(self) -> float | None:
        if self.started is None or self.completed is None:
            return None
        return (self.completed - self.started) * 1e3

    def describe(self) -> dict[str, Any]:
        """The JSON the status and result endpoints return."""
        payload: dict[str, Any] = {
            "job_id": self.id,
            "state": self.state,
            "mode": self.mode,
            "priority": self.priority,
            "seq": self.seq,
            "content_key": self.spec.content_key(),
            "spec": self.spec.to_json(),
            "submitted_at": self.submitted_wall,
            "queue_ms": self.queue_ms,
            "run_ms": self.run_ms,
            "outcome": self.outcome,
            "batch_id": self.batch_id,
            "batch_size": self.batch_size,
            "coalesced": self.coalesced,
            "capture_warm": self.capture_warm,
            "digest": self.digest,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.summary is not None:
            payload["result"] = self.summary
        return payload


@dataclass(frozen=True)
class Batch:
    """One planned replay pass: a leader plus its coalesced riders."""

    id: int
    jobs: tuple[Job, ...]
    coalesce_key: str

    @property
    def leader(self) -> Job:
        return self.jobs[0]

    def specs(self) -> list[JobSpec]:
        return [job.spec for job in self.jobs]


class JobQueue:
    """The pending-job store behind the scheduler, one lock around it."""

    def __init__(self, max_queue: int = 256, max_batch: int = 16) -> None:
        if max_queue < 1:
            raise ServeError(f"max_queue must be >= 1, got {max_queue}", status=400)
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}", status=400)
        self.max_queue = max_queue
        self.max_batch = max_batch
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._pending: list[Job] = []
        self._seq = 0
        self._batch_seq = 0
        self._draining = False
        self._stopped = False
        self.inversions = 0
        self.counts = {
            "admitted": 0,
            "rejected_full": 0,
            "rejected_draining": 0,
            "batches": 0,
            "coalesced_riders": 0,
        }

    # -- admission ----------------------------------------------------

    def submit(self, spec: JobSpec, mode: str, priority: int, job_id: str) -> Job:
        """Admit one job, or raise the backpressure/drain rejection."""
        if mode not in _MODE_RANK:
            raise ServeError(
                f"mode must be one of {', '.join(_MODE_RANK)}, got {mode!r}",
                status=400,
            )
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ServeError(f"priority must be an integer, got {priority!r}", status=400)
        with self._lock:
            if self._draining or self._stopped:
                self.counts["rejected_draining"] += 1
                raise ServeError("server is draining; not admitting jobs", status=503)
            if len(self._pending) >= self.max_queue:
                self.counts["rejected_full"] += 1
                raise ServeError(
                    f"admission queue full ({self.max_queue} pending); retry later",
                    status=429,
                )
            self._seq += 1
            job = Job(id=job_id, spec=spec, mode=mode, priority=priority, seq=self._seq)
            self._pending.append(job)
            self.counts["admitted"] += 1
            telemetry.gauge("repro_serve_queue_depth").set(len(self._pending))
            self._wake.notify()
            return job

    # -- scheduling ---------------------------------------------------

    def take_batch(self, batching: bool = True, timeout: float | None = None) -> Batch | None:
        """Block until work is available; plan and claim the next batch.

        Returns None when the queue is stopped and empty (the worker's
        exit signal) or when ``timeout`` elapses with nothing pending.
        """
        with self._lock:
            deadline = None if timeout is None else time.monotonic() + timeout
            while not self._pending:
                if self._stopped or (self._draining and not self._pending):
                    return None
                wait = None if deadline is None else deadline - time.monotonic()
                if wait is not None and wait <= 0:
                    return None
                self._wake.wait(wait)
            leader = min(self._pending, key=Job.precedence)
            if batching:
                key = leader.spec.coalesce_key()
                riders = [
                    job
                    for job in self._pending
                    if job is not leader and job.spec.coalesce_key() == key
                ]
                riders.sort(key=Job.precedence)
                members = [leader] + riders[: self.max_batch - 1]
            else:
                key = leader.spec.coalesce_key()
                members = [leader]
            # A leader chosen globally cannot leave a more-urgent job
            # pending; counting it anyway keeps the invariant observable
            # rather than assumed (the smoke asserts the counter is 0).
            floor = leader.precedence()
            for job in self._pending:
                if job not in members and job.precedence() < floor:
                    self.inversions += 1
            for job in members:
                self._pending.remove(job)
            now = time.monotonic()
            self._batch_seq += 1
            for job in members:
                job.state = "running"
                job.started = now
                job.batch_id = self._batch_seq
                job.batch_size = len(members)
                job.coalesced = len(members) > 1
            self.counts["batches"] += 1
            self.counts["coalesced_riders"] += len(members) - 1
            telemetry.gauge("repro_serve_queue_depth").set(len(self._pending))
            telemetry.gauge("repro_serve_in_flight").set(len(members))
            telemetry.histogram("repro_serve_batch_size").observe(len(members))
            return Batch(id=self._batch_seq, jobs=tuple(members), coalesce_key=key)

    def settle_batch(self) -> None:
        """A batch finished; the in-flight gauge returns to zero."""
        with self._lock:
            telemetry.gauge("repro_serve_in_flight").set(0)
            self._wake.notify_all()

    # -- lifecycle ----------------------------------------------------

    def drain(self) -> None:
        """Stop admitting; pending jobs still run (the SIGTERM path)."""
        with self._lock:
            self._draining = True
            self._wake.notify_all()

    def stop(self) -> None:
        """Stop immediately; pending jobs are cancelled (fast abort)."""
        with self._lock:
            self._stopped = True
            for job in self._pending:
                job.state = "cancelled"
                job.outcome = "cancelled"
                job.completed = time.monotonic()
                job.done_event.set()
            self._pending.clear()
            telemetry.gauge("repro_serve_queue_depth").set(0)
            self._wake.notify_all()

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining or self._stopped

    def depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def pending_jobs(self) -> Iterator[Job]:
        with self._lock:
            return iter(list(self._pending))

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "queue_depth": len(self._pending),
                "max_queue": self.max_queue,
                "max_batch": self.max_batch,
                "draining": self._draining or self._stopped,
                "priority_inversions": self.inversions,
                **self.counts,
            }
