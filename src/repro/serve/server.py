"""The ``repro-serve`` daemon core: job store, executor, HTTP front door.

One :class:`JobServer` owns the whole pipeline:

* a :class:`~repro.serve.queue.JobQueue` for admission, priority, and
  batch planning;
* a content-keyed **result store** — a job whose
  :meth:`~repro.serve.jobspec.JobSpec.content_key` already completed is
  answered from the store without touching the queue at all (the
  ``repro_serve_dedup_total{kind="result"}`` counter makes that
  observable), and a batch whose capture the trace cache already holds
  runs without re-capture (``kind="capture"``);
* a single **executor thread** draining batches through
  :func:`~repro.serve.jobspec.run_batch` under the ambient sweep
  supervisor, so per-point retries/timeouts behave exactly as they do
  for ``repro-cosim``;
* a :class:`ThreadingHTTPServer` speaking small JSON bodies on
  loopback.

Endpoints (all under ``/v1``)::

    POST /v1/jobs                submit {"spec": {...}, "mode", "priority"}
    GET  /v1/jobs/<id>[?wait=S]  job status (long-poll until done)
    GET  /v1/jobs/<id>/windows   live 500µs telemetry windows per config
    GET  /v1/stats               queue/batch/dedup counters
    GET  /v1/metrics             Prometheus text exposition
    GET  /v1/healthz             liveness + drain state
    POST /v1/drain               stop admitting, finish pending, then exit

The executor is deliberately single-threaded: batches execute in
priority order one pass at a time (each pass may still fan out across
worker processes via ``jobs``), which keeps the priority-inversion
invariant trivially auditable and result bytes independent of request
concurrency.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.errors import JobSpecError, ReproError, ServeError
from repro.serve.jobspec import JobSpec, run_batch, summarize_results
from repro.serve.queue import Batch, Job, JobQueue
from repro.telemetry import runtime as telemetry
from repro.telemetry.sinks import render_prometheus


def _window_payload(spec: JobSpec, results) -> list[dict[str, Any]]:
    """The per-configuration telemetry-window stream, JSON-safe."""
    if spec.sample is not None:
        return []  # sampled results carry error bars, not window streams
    payload = []
    for size, result in zip(spec.cache, results):
        payload.append(
            {
                "cache_size": size,
                "line_size": spec.line,
                "windows": [
                    {
                        "index": sample.index,
                        "cycles": sample.cycles,
                        "instructions": sample.instructions,
                        "accesses": sample.accesses,
                        "misses": sample.misses,
                        "mpki": sample.mpki,
                    }
                    for sample in result.samples
                ],
            }
        )
    return payload


class JobServer:
    """The serving pipeline: admission → scheduler → batches → results."""

    def __init__(
        self,
        trace_cache=None,
        jobs: int | None = None,
        max_queue: int = 256,
        max_batch: int = 16,
        batching: bool = True,
        policy=None,
    ) -> None:
        self.trace_cache = trace_cache
        self.jobs = jobs
        self.batching = batching
        self.policy = policy
        self.queue = JobQueue(max_queue=max_queue, max_batch=max_batch)
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._results: dict[str, Job] = {}
        self._job_seq = 0
        self._worker: threading.Thread | None = None
        self._httpd: ThreadingHTTPServer | None = None
        self._http_thread: threading.Thread | None = None
        self.started_wall = time.time()
        #: Exact per-config results of every completed batch, kept only
        #: while telemetry is on so the drain-time profile can publish
        #: and reconcile them the way the CLI does (sampled results are
        #: excluded there too — they carry estimates, not counters).
        self._completed_results: list[Any] = []
        self.counts = {
            "submitted": 0,
            "invalid": 0,
            "completed": 0,
            "failed": 0,
            "deduplicated": 0,
            "capture_warm_batches": 0,
        }

    # -- submission ---------------------------------------------------

    def submit(self, payload: Any) -> tuple[dict[str, Any], int]:
        """Admit (or dedup-answer) one request; (response body, status)."""
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object", status=400)
        unknown = sorted(set(payload) - {"spec", "mode", "priority"})
        if unknown:
            raise ServeError(
                f"unknown request field(s): {', '.join(unknown)}", status=400
            )
        mode = payload.get("mode", "batch")
        priority = payload.get("priority", 0)
        try:
            spec = JobSpec.from_json(payload.get("spec"))
        except JobSpecError as error:
            self.counts["invalid"] += 1
            telemetry.counter(
                "repro_serve_requests_total", mode=str(mode), outcome="invalid"
            ).inc()
            raise ServeError(str(error), status=400) from error
        key = spec.content_key()
        with self._lock:
            self.counts["submitted"] += 1
            done = self._results.get(key)
            if done is not None:
                # Answered from the content-keyed result store: no
                # queue, no capture, no replay.
                self._job_seq += 1
                job = Job(
                    id=f"job-{self._job_seq:06d}",
                    spec=spec,
                    mode=mode if mode in ("interactive", "batch") else "batch",
                    priority=priority if isinstance(priority, int) else 0,
                    seq=0,
                )
                now = time.monotonic()
                job.state = "done"
                job.outcome = "deduplicated"
                job.started = job.submitted
                job.completed = now
                job.digest = done.digest
                job.summary = done.summary
                job.windows = done.windows
                job.capture_warm = True
                job.done_event.set()
                self._jobs[job.id] = job
                self.counts["deduplicated"] += 1
                telemetry.counter("repro_serve_dedup_total", kind="result").inc()
                telemetry.counter(
                    "repro_serve_requests_total", mode=job.mode, outcome="deduplicated"
                ).inc()
                return job.describe(), 200
            self._job_seq += 1
            job_id = f"job-{self._job_seq:06d}"
        job = self.queue.submit(spec, mode, priority, job_id)
        with self._lock:
            self._jobs[job.id] = job
        return job.describe(), 202

    def get_job(self, job_id: str, wait: float = 0.0) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"no such job: {job_id}", status=404)
        if wait > 0:
            job.done_event.wait(timeout=min(wait, 60.0))
        return job

    # -- execution ----------------------------------------------------

    def _run_batch(self, batch: Batch) -> None:
        specs = batch.specs()
        leader = batch.leader
        warm = (
            self.trace_cache is not None
            and self.trace_cache.contains(leader.spec.capture_key())
        )
        if warm:
            self.counts["capture_warm_batches"] += 1
            telemetry.counter("repro_serve_dedup_total", kind="capture").inc()
        try:
            with telemetry.span("serve.batch"):
                per_spec = run_batch(specs, trace_cache=self.trace_cache, jobs=self.jobs)
        except ReproError as error:
            now = time.monotonic()
            for job in batch.jobs:
                job.state = "failed"
                job.outcome = "failed"
                job.error = f"{type(error).__name__}: {error}"
                job.completed = now
                job.capture_warm = warm
                self.counts["failed"] += 1
                telemetry.counter(
                    "repro_serve_requests_total", mode=job.mode, outcome="failed"
                ).inc()
                job.done_event.set()
            return
        now = time.monotonic()
        for job, results in zip(batch.jobs, per_spec):
            if telemetry.enabled() and job.spec.sample is None:
                self._completed_results.extend(results)
            job.summary = summarize_results(job.spec, results)
            job.digest = job.summary["digest"]
            job.windows = _window_payload(job.spec, results)
            job.state = "done"
            job.outcome = "completed"
            job.completed = now
            job.capture_warm = warm
            with self._lock:
                self._results.setdefault(job.spec.content_key(), job)
            self.counts["completed"] += 1
            telemetry.counter(
                "repro_serve_requests_total", mode=job.mode, outcome="completed"
            ).inc()
            job.done_event.set()

    def _worker_loop(self) -> None:
        from repro.harness.supervisor import SupervisorPolicy, supervise

        policy = self.policy or SupervisorPolicy()
        with supervise(policy):
            while True:
                # The wait span makes the profile's phase ledger add up:
                # a server's root span is mostly idle listening, and
                # idle time must be attributed, not unaccounted.
                with telemetry.span("serve.wait"):
                    batch = self.queue.take_batch(batching=self.batching)
                if batch is None:
                    return
                with telemetry.span("serve.job"):
                    self._run_batch(batch)
                self.queue.settle_batch()

    # -- lifecycle ----------------------------------------------------

    def start_worker(self) -> None:
        self._worker = threading.Thread(
            target=self._worker_loop, name="repro-serve-executor", daemon=True
        )
        self._worker.start()

    def start_http(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and serve; returns the (host, port) actually bound."""
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-http",
            daemon=True,
        )
        self._http_thread.start()
        bound = self._httpd.server_address
        return str(bound[0]), int(bound[1])

    def drain(self, wait: bool = True, timeout: float | None = None) -> bool:
        """Stop admissions, let pending work finish; True on clean drain."""
        self.queue.drain()
        if not wait:
            return True
        if self._worker is not None:
            self._worker.join(timeout=timeout)
            return not self._worker.is_alive()
        return True

    def shutdown(self) -> None:
        self.queue.stop()
        if self._worker is not None:
            self._worker.join(timeout=5.0)
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=5.0)

    # -- introspection ------------------------------------------------

    @property
    def completed_results(self) -> list[Any]:
        return self._completed_results

    def stats(self) -> dict[str, Any]:
        queue = self.queue.stats()
        with self._lock:
            counts = dict(self.counts)
            results_stored = len(self._results)
        passes = queue["batches"]
        ran = counts["completed"] + counts["failed"]
        stats = {
            **queue,
            **counts,
            "results_stored": results_stored,
            "batching": self.batching,
            "replay_passes": passes,
            "jobs_per_pass": (ran / passes) if passes else 0.0,
            "uptime_s": time.time() - self.started_wall,
        }
        if self.trace_cache is not None:
            stats["trace_cache"] = self.trace_cache.stats.describe()
        return stats


def _make_handler(server: JobServer):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve/1"

        def log_message(self, format: str, *args: Any) -> None:
            pass  # request logging goes through telemetry, not stderr

        def _reply(self, status: int, payload: Any) -> None:
            body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, status: int, message: str) -> None:
            self._reply(status, {"error": message, "status": status})

        def _read_body(self) -> Any:
            length = int(self.headers.get("Content-Length", 0) or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                return None
            try:
                return json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as error:
                raise ServeError(f"request body is not JSON: {error}", status=400)

        def do_POST(self) -> None:  # noqa: N802 (http.server convention)
            try:
                url = urlparse(self.path)
                if url.path == "/v1/jobs":
                    with telemetry.span("serve.admit"):
                        payload, status = server.submit(self._read_body())
                    self._reply(status, payload)
                elif url.path == "/v1/drain":
                    server.drain(wait=False)
                    self._reply(200, {"draining": True})
                else:
                    self._error(404, f"no such endpoint: {url.path}")
            except ServeError as error:
                self._error(error.status, str(error))

        def do_GET(self) -> None:  # noqa: N802
            try:
                url = urlparse(self.path)
                query = parse_qs(url.query)
                parts = [part for part in url.path.split("/") if part]
                if url.path == "/v1/healthz":
                    self._reply(
                        200, {"status": "ok", "draining": server.queue.draining}
                    )
                elif url.path == "/v1/stats":
                    self._reply(200, server.stats())
                elif url.path == "/v1/metrics":
                    registry = telemetry.registry()
                    text = render_prometheus(registry) if registry is not None else ""
                    body = text.encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", "text/plain; version=0.0.4")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                    wait = float(query.get("wait", ["0"])[0])
                    job = server.get_job(parts[2], wait=wait)
                    self._reply(200, job.describe())
                elif (
                    len(parts) == 4
                    and parts[:2] == ["v1", "jobs"]
                    and parts[3] == "windows"
                ):
                    job = server.get_job(parts[2])
                    if job.windows is None:
                        raise ServeError(
                            f"job {job.id} has no windows yet (state: {job.state})",
                            status=409,
                        )
                    self._reply(200, {"job_id": job.id, "configs": job.windows})
                else:
                    self._error(404, f"no such endpoint: {url.path}")
            except ServeError as error:
                self._error(error.status, str(error))
            except ValueError as error:
                self._error(400, str(error))

    return Handler
