"""Sampled simulation: representative-interval selection (SimPoint-style).

The paper simulates 15-357 *billion* instructions per workload; the
exact co-simulation path replays every captured access.  This package
closes the scale gap the way the phase-classification literature does:
slice the captured stream into fixed-size intervals, fingerprint each
interval's memory behaviour (reuse-distance histogram, windowed
footprint, per-core sharing mix, read fraction), cluster the
fingerprints with a deterministic seeded k-means, simulate only one
representative interval per cluster through the batched emulator path,
and recombine the per-representative statistics with cluster weights —
with per-metric error bars quantifying what the shortcut cost.

Entry points:

* :func:`~repro.simpoint.engine.sampled_sweep` — one captured
  :class:`~repro.harness.replay.ReplayLog`, N cache configurations,
  one fingerprint+clustering pass shared by all of them;
* :func:`~repro.simpoint.engine.parse_sample_spec` — the
  ``--sample INTERVAL[,MAXK]`` CLI syntax;
* :mod:`repro.simpoint.validate` — the sampled-versus-exact MPKI
  validation table (``python -m repro.simpoint.validate``).
"""

from repro.simpoint.cluster import Clustering, cluster_intervals
from repro.simpoint.engine import (
    MetricEstimate,
    SampleCoverage,
    SampledCoSimResult,
    SampleSpec,
    parse_sample_spec,
    sampled_sweep,
)
from repro.simpoint.fingerprint import FingerprintConfig, IntervalFingerprints
from repro.simpoint.intervals import interval_bounds, slice_progress

__all__ = [
    "Clustering",
    "FingerprintConfig",
    "IntervalFingerprints",
    "MetricEstimate",
    "SampleCoverage",
    "SampleSpec",
    "SampledCoSimResult",
    "cluster_intervals",
    "interval_bounds",
    "parse_sample_spec",
    "sampled_sweep",
    "slice_progress",
]
