"""Deterministic seeded k-means with BIC model selection.

The SimPoint recipe: cluster interval fingerprints with k-means for
every k up to ``max_k``, score each clustering with the Bayesian
Information Criterion under a spherical-Gaussian likelihood, and pick
the smallest k whose score reaches a fixed fraction of the best — the
elbow, found without eyeballing.

Everything is numpy and fully deterministic for a given seed: k-means++
initialization draws from ``np.random.default_rng(seed)``, assignment
ties break to the lowest cluster index (``argmin``), empty clusters are
re-seeded with the point farthest from its centroid, and the
representative of each cluster is the member closest to the centroid
(ties to the lowest interval index).  Two runs with the same inputs
produce identical clusters, representatives, and therefore identical
recombined statistics — the determinism contract ``tests/
test_simpoint.py`` pins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Pick the smallest k whose normalized BIC reaches this fraction of
#: the best score (the SimPoint paper's threshold).
BIC_THRESHOLD = 0.9

#: Lloyd-iteration cap; small fingerprint sets converge far earlier.
MAX_ITERATIONS = 64


@dataclass(frozen=True)
class Clustering:
    """One clustering of the interval fingerprints."""

    k: int
    #: Cluster id of every interval (int64, len = intervals).
    labels: np.ndarray
    #: Cluster centroids, row per cluster.
    centroids: np.ndarray
    #: Representative interval index of each cluster (member closest to
    #: the centroid), ordered by cluster id.
    representatives: tuple[int, ...]
    #: Sum of squared distances to assigned centroids.
    inertia: float
    #: BIC score of every candidate k (index 0 → k=1).
    bic_scores: tuple[float, ...]


def _squared_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances (points × centroids)."""
    diff = points[:, None, :] - centroids[None, :, :]
    return np.einsum("ijk,ijk->ij", diff, diff)


def _kmeans_once(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, float]:
    """One seeded k-means++ run; returns (labels, centroids, inertia)."""
    n = len(points)
    centroids = np.empty((k, points.shape[1]), dtype=np.float64)
    centroids[0] = points[int(rng.integers(n))]
    closest = _squared_distances(points, centroids[:1]).min(axis=1)
    for j in range(1, k):
        total = float(closest.sum())
        if total <= 0.0:
            centroids[j] = points[int(rng.integers(n))]
        else:
            # k-means++: next seed drawn proportional to D^2.
            target = float(rng.random()) * total
            index = int(np.searchsorted(np.cumsum(closest), target))
            centroids[j] = points[min(index, n - 1)]
        closest = np.minimum(
            closest, _squared_distances(points, centroids[j : j + 1]).min(axis=1)
        )
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(MAX_ITERATIONS):
        distances = _squared_distances(points, centroids)
        new_labels = distances.argmin(axis=1)
        for j in range(k):
            members = new_labels == j
            if members.any():
                centroids[j] = points[members].mean(axis=0)
            else:
                # Re-seed an emptied cluster with the worst-fit point.
                farthest = int(distances[np.arange(n), new_labels].argmax())
                centroids[j] = points[farthest]
                new_labels[farthest] = j
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    inertia = float(
        _squared_distances(points, centroids)[np.arange(n), labels].sum()
    )
    return labels, centroids, inertia


def _bic(points: np.ndarray, labels: np.ndarray, k: int, inertia: float) -> float:
    """Spherical-Gaussian BIC of one clustering (x-means formulation)."""
    n, dims = points.shape
    if n <= k:
        return -np.inf
    variance = max(inertia / (dims * (n - k)), 1e-12)
    sizes = np.bincount(labels, minlength=k).astype(np.float64)
    sizes = sizes[sizes > 0]
    log_likelihood = float(
        (sizes * np.log(sizes)).sum()
        - n * np.log(n)
        - n * dims / 2.0 * np.log(2.0 * np.pi * variance)
        - dims * (n - k) / 2.0
    )
    parameters = k * (dims + 1)
    return log_likelihood - parameters / 2.0 * np.log(n)


def cluster_intervals(
    features: np.ndarray, max_k: int = 8, seed: int = 0
) -> Clustering:
    """Cluster fingerprints, selecting k by the BIC-elbow rule.

    Runs k-means for every k in ``1..min(max_k, intervals)`` from one
    seeded generator, normalizes the BIC scores to [0, 1], and keeps
    the smallest k scoring at least :data:`BIC_THRESHOLD` — small
    cluster counts are the whole point: each extra cluster is another
    full emulator replay per configuration.
    """
    points = np.asarray(features, dtype=np.float64)
    n = len(points)
    rng = np.random.default_rng(seed)
    candidates: list[tuple[np.ndarray, np.ndarray, float]] = []
    scores: list[float] = []
    for k in range(1, min(max_k, n) + 1):
        labels, centroids, inertia = _kmeans_once(points, k, rng)
        candidates.append((labels, centroids, inertia))
        scores.append(_bic(points, labels, k, inertia))
    finite = [s for s in scores if np.isfinite(s)]
    low, high = (min(finite), max(finite)) if finite else (0.0, 0.0)
    if high - low <= 0.0:
        chosen = 0
    else:
        normalized = [
            (s - low) / (high - low) if np.isfinite(s) else -1.0 for s in scores
        ]
        chosen = next(
            i for i, score in enumerate(normalized) if score >= BIC_THRESHOLD
        )
    labels, centroids, inertia = candidates[chosen]
    k = chosen + 1
    representatives = []
    distances = _squared_distances(points, centroids)
    for j in range(k):
        members = np.flatnonzero(labels == j)
        if len(members):
            representatives.append(int(members[distances[members, j].argmin()]))
        else:
            # A cluster emptied on the final assignment; represent it by
            # the globally closest point so downstream weights stay total.
            representatives.append(int(distances[:, j].argmin()))
    return Clustering(
        k=k,
        labels=labels,
        centroids=centroids,
        representatives=tuple(representatives),
        inertia=inertia,
        bic_scores=tuple(float(s) for s in scores),
    )
