"""The sampled co-simulation engine: fingerprint, cluster, replay, recombine.

:func:`sampled_sweep` is the sampled counterpart of
:func:`repro.harness.replay.replay_map`: one captured
:class:`~repro.harness.replay.ReplayLog`, N cache configurations.  The
fingerprint and clustering passes run once (telemetry spans
``sample.fingerprint`` / ``sample.cluster``); each configuration then
replays only the cluster representatives through
:meth:`~repro.cache.emulator.DragonheadEmulator.emulate_stream`
(``sample.replay``), each on a fresh emulator warmed with the accesses
immediately preceding it; the recombiner then subtracts an analytic
cold-start correction — the reuse a standalone replay cannot see but
the exact run would have hit (:func:`~repro.simpoint.fingerprint.
cold_start_hit_ratio`).

Recombination weights each representative's measured miss ratio by its
cluster's access count:

    est_misses = Σ_c  accesses(cluster c) × miss_ratio(representative c)

MPKI and miss ratio derive from that with the log's *exact* instruction
and access totals.  The error bar combines the per-interval analytic
miss-ratio spread within each cluster (from the reuse-histogram
predictor, calibrated against the representative's measured ratio) with
a fixed relative floor:

    err_misses = sqrt(Σ_c Σ_{i∈c} (accesses_i · (p_i − p_rep_c) · κ_c)²)
                 + floor × est_misses

Degenerate sampling — one interval covering the whole trace — takes
:func:`~repro.harness.replay.replay` verbatim, so it is bit-identical
to the exact path by construction (no fingerprinting, no clustering,
zero error bars).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.emulator import DragonheadConfig, DragonheadEmulator
from repro.cache.stats import CacheStats
from repro.core.cosim import CoSimResult
from repro.errors import SamplingError
from repro.faults.report import collect_run_degradation
from repro.harness.replay import ReplayLog, replay
from repro.simpoint.cluster import Clustering, cluster_intervals
from repro.simpoint.fingerprint import (
    FINGERPRINT_VERSION,
    FingerprintConfig,
    IntervalFingerprints,
    cold_start_hit_ratio,
    cold_start_uncertainty,
    fingerprint_intervals,
    predicted_miss_ratio,
)
from repro.simpoint.intervals import (
    interval_bounds,
    interval_instructions,
    slice_progress,
)
from repro.telemetry import runtime as telemetry
from repro.trace.cache import TraceCache, cache_key
from repro.trace.record import AccessKind

#: Default warm-up accesses replayed (unmeasured) before each
#: representative interval; capped at the interval size and at the
#: stream prefix available before the representative.
DEFAULT_WARMUP = 8192

#: Relative error floor added to every recombined estimate: sampling
#: bias the per-interval residuals cannot see (cold-start remnants,
#: associativity and banking effects the analytic predictor ignores).
ERROR_FLOOR = 0.03

#: Calibration clip for the analytic-predictor scale factor.
_CALIBRATION_CLIP = (0.25, 4.0)

_EMPTY_PROGRESS = np.empty((0, 3), dtype=np.int64)


@dataclass(frozen=True)
class SampleSpec:
    """A parsed ``--sample`` request."""

    #: Accesses per interval (the SimPoint interval size).
    interval: int
    #: Upper bound on the cluster count (k-means tries 1..max_k).
    max_k: int = 8
    #: Warm-up accesses before each representative; None → the default
    #: (:data:`DEFAULT_WARMUP`, capped at the interval size).
    warmup: int | None = None
    #: k-means seed (fingerprinting itself is deterministic).
    seed: int = 0
    #: Fingerprint knobs (line size, SHARDS sample budget).
    fingerprint: FingerprintConfig = FingerprintConfig()

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise SamplingError(f"interval must be positive, got {self.interval}")
        if self.max_k <= 0:
            raise SamplingError(f"max_k must be positive, got {self.max_k}")

    def resolved_warmup(self) -> int:
        """The effective warm-up length for this spec."""
        if self.warmup is not None:
            return max(0, self.warmup)
        return min(self.interval, DEFAULT_WARMUP)


def parse_sample_spec(text: str) -> SampleSpec:
    """Parse the CLI syntax ``INTERVAL[,MAXK]`` into a :class:`SampleSpec`.

    ``INTERVAL`` accepts a plain access count or a ``k``/``m`` suffix
    (×1024 / ×1024²): ``--sample 64k,6`` means 65536-access intervals
    with at most six clusters.
    """
    parts = [p.strip() for p in text.split(",") if p.strip()]
    if not parts or len(parts) > 2:
        raise SamplingError(
            f"--sample expects INTERVAL[,MAXK], got {text!r}"
        )
    raw = parts[0].lower()
    multiplier = 1
    if raw.endswith("k"):
        raw, multiplier = raw[:-1], 1024
    elif raw.endswith("m"):
        raw, multiplier = raw[:-1], 1024 * 1024
    try:
        interval = int(raw) * multiplier
    except ValueError as error:
        raise SamplingError(f"bad --sample interval {parts[0]!r}") from error
    max_k = 8
    if len(parts) == 2:
        try:
            max_k = int(parts[1])
        except ValueError as error:
            raise SamplingError(f"bad --sample max_k {parts[1]!r}") from error
    return SampleSpec(interval=interval, max_k=max_k)


@dataclass(frozen=True)
class MetricEstimate:
    """A recombined metric with its one-sided error bar."""

    value: float
    error: float

    def brackets(self, exact: float) -> bool:
        """Whether ``exact`` lies within ``value ± error``."""
        return abs(exact - self.value) <= self.error

    def __format__(self, spec: str) -> str:
        return f"{format(self.value, spec)}±{format(self.error, spec)}"


@dataclass(frozen=True)
class SampleCoverage:
    """What the sampled run actually simulated, for the record."""

    intervals: int
    interval_size: int
    clusters: int
    #: Representative interval index per cluster (cluster-id order).
    representatives: tuple[int, ...]
    #: Cluster id of every interval.
    labels: tuple[int, ...]
    #: Accesses carried by each cluster (the recombination weights).
    cluster_accesses: tuple[int, ...]
    #: Measured accesses (representative intervals only).
    simulated_accesses: int
    #: Unmeasured warm-up accesses replayed before representatives.
    warmup_accesses: int
    total_accesses: int
    #: SHARDS spatial sampling rate of the fingerprint pass.
    fingerprint_rate: float
    #: Whether the fingerprints came from the trace cache.
    fingerprint_cached: bool

    @property
    def simulated_fraction(self) -> float:
        """Fraction of the stream that went through the emulator."""
        if not self.total_accesses:
            return 0.0
        return (self.simulated_accesses + self.warmup_accesses) / self.total_accesses


@dataclass(frozen=True)
class SampledCoSimResult:
    """Recombined outcome of one sampled co-simulation.

    Exact stream-level facts (``instructions``, ``accesses``,
    ``filtered``, ``reads``/``writes``) come from the captured log;
    cache metrics are estimates with error bars.  ``sampled`` is always
    True — reports key on it so sampled and exact numbers are never
    silently mixed.
    """

    workload: str
    cores: int
    config: DragonheadConfig
    coverage: SampleCoverage
    instructions: int
    accesses: int
    filtered: int
    reads: int
    writes: int
    misses: MetricEstimate
    mpki: MetricEstimate
    miss_ratio: MetricEstimate
    #: Per-representative exact results (cluster-id order); the
    #: degenerate single-interval run holds exactly one, equal to the
    #: exact path's CoSimResult field for field.
    representative_results: tuple[CoSimResult, ...]
    sampled: bool = True

    @property
    def llc_stats(self) -> CacheStats:
        """Merged counters of the representative replays (context only)."""
        total = CacheStats()
        for result in self.representative_results:
            total = total.merge(result.llc_stats)
        return total


def _fingerprint_key(log_key: str, spec: SampleSpec) -> str:
    """Content address of a log's fingerprints under one spec."""
    return cache_key(
        {
            "kind": "simpoint-fingerprint",
            "log": log_key,
            "version": FINGERPRINT_VERSION,
            "interval": spec.interval,
            "line_size": spec.fingerprint.line_size,
            "max_samples": spec.fingerprint.max_samples,
            "min_rate": spec.fingerprint.min_rate,
            "warmup": spec.resolved_warmup(),
        }
    )


def _load_or_fingerprint(
    log: ReplayLog,
    bounds: np.ndarray,
    spec: SampleSpec,
    trace_cache: TraceCache | None,
    log_key: str | None,
) -> tuple[IntervalFingerprints, bool]:
    """Fingerprint the log, via the trace cache when one is available.

    Fingerprints are content-addressed by the *log's* cache key plus the
    fingerprint parameters, so re-sampling a cached workload skips the
    fingerprint pass entirely; returns ``(fingerprints, cache_hit)``.
    """
    key = None
    if trace_cache is not None and log_key is not None:
        key = _fingerprint_key(log_key, spec)
        payload = trace_cache.load(key)
        if payload is not None:
            return IntervalFingerprints.from_payload(*payload), True
    fingerprints = fingerprint_intervals(
        log.to_chunk(), bounds, log.cores, spec.fingerprint,
        warmup=spec.resolved_warmup(),
    )
    if key is not None:
        trace_cache.store(key, *fingerprints.to_payload())
    return fingerprints, False


def _replay_representatives(
    log: ReplayLog,
    config: DragonheadConfig,
    spec: SampleSpec,
    bounds: np.ndarray,
    clustering: Clustering,
    chunk,
    table: np.ndarray,
    per_interval_instructions: np.ndarray,
) -> tuple[dict[int, CoSimResult], int, int]:
    """Measure every representative interval standalone.

    Each representative replays on a *fresh* emulator, warmed with the
    accesses immediately preceding it (unmeasured, via
    :meth:`~DragonheadEmulator.reset_statistics`).  Standalone replay is
    deliberate: the recombiner's cold-start correction models exactly
    the reuse a fresh cache cannot see, so carrying state between
    representatives would double-count those hits.  Returns the per-
    representative results plus (measured, warm-up) access totals.
    """
    warmup = spec.resolved_warmup()
    results: dict[int, CoSimResult] = {}
    measured = 0
    warmed = 0
    for rep in sorted(set(clustering.representatives)):
        emulator = DragonheadEmulator(config)
        lo = int(bounds[rep])
        hi = int(bounds[rep + 1])
        w = min(warmup, lo)
        if w > 0:
            emulator.emulate_stream(chunk[lo - w : lo], _EMPTY_PROGRESS)
            warmed += w
            emulator.reset_statistics()
        emulator.emulate_stream(chunk[lo:hi], slice_progress(table, lo, hi))
        measured += hi - lo
        performance = emulator.read_performance_data()
        results[rep] = CoSimResult(
            workload=log.workload,
            cores=log.cores,
            performance=performance,
            instructions=int(per_interval_instructions[rep]),
            accesses=performance.stats.accesses,
            filtered=performance.filtered_transactions,
            degradation=collect_run_degradation(None, performance),
        )
    return results, measured, warmed


def _recombine(
    log: ReplayLog,
    config: DragonheadConfig,
    clustering: Clustering,
    fingerprints: IntervalFingerprints,
    rep_results: dict[int, CoSimResult],
) -> tuple[MetricEstimate, MetricEstimate, MetricEstimate]:
    """Weight representative miss ratios into whole-trace estimates."""
    counts = fingerprints.counts.astype(np.float64)
    labels = clustering.labels
    capacity_lines = config.cache_size // fingerprints.line_size
    # Cold-start correction: subtract the estimated fraction of each
    # representative's misses that only exist because the replay could
    # not see reuse from before its warm-up window.
    correction = cold_start_hit_ratio(
        fingerprints, capacity_lines, config.associativity
    )
    rep_ratio = np.empty(clustering.k, dtype=np.float64)
    for j, rep in enumerate(clustering.representatives):
        stats = rep_results[rep].llc_stats
        measured = stats.misses / stats.accesses if stats.accesses else 0.0
        rep_ratio[j] = max(0.0, measured - float(correction[rep]))
    estimated_misses = float((counts * rep_ratio[labels]).sum())

    # Residual spread: the analytic predictor's per-interval miss ratio,
    # calibrated per cluster against the representative's measured one.
    predicted = predicted_miss_ratio(fingerprints, capacity_lines)
    finite = np.isfinite(predicted)
    fallback = (
        float((predicted[finite] * counts[finite]).sum() / counts[finite].sum())
        if finite.any()
        else 0.0
    )
    predicted = np.where(finite, predicted, fallback)
    variance = 0.0
    for j, rep in enumerate(clustering.representatives):
        members = labels == j
        p_rep = float(predicted[rep])
        if p_rep > 1e-9:
            scale = float(np.clip(rep_ratio[j] / p_rep, *_CALIBRATION_CLIP))
        else:
            scale = 1.0
        residuals = counts[members] * (predicted[members] - p_rep) * scale
        variance += float((residuals**2).sum())
    # Cold-start model error is systematic, not sampling noise: add it
    # linearly, weighted by each cluster's access mass.
    uncertainty = cold_start_uncertainty(
        fingerprints, capacity_lines, config.associativity
    )
    correction_error = float(
        sum(
            counts[labels == j].sum() * uncertainty[rep]
            for j, rep in enumerate(clustering.representatives)
        )
    )
    error_misses = (
        float(np.sqrt(variance))
        + correction_error
        + ERROR_FLOOR * estimated_misses
    )

    instructions = max(log.instructions, 1)
    accesses = max(log.accesses, 1)
    misses = MetricEstimate(estimated_misses, error_misses)
    mpki = MetricEstimate(
        1000.0 * estimated_misses / instructions, 1000.0 * error_misses / instructions
    )
    miss_ratio = MetricEstimate(
        estimated_misses / accesses, error_misses / accesses
    )
    return misses, mpki, miss_ratio


def _degenerate_result(
    log: ReplayLog, config: DragonheadConfig
) -> SampledCoSimResult:
    """Single-interval sampling: the exact path, wrapped with zero bars."""
    exact = replay(log, config)
    stats = exact.llc_stats
    ratio = stats.misses / stats.accesses if stats.accesses else 0.0
    coverage = SampleCoverage(
        intervals=1,
        interval_size=log.accesses,
        clusters=1,
        representatives=(0,),
        labels=(0,),
        cluster_accesses=(log.accesses,),
        simulated_accesses=log.accesses,
        warmup_accesses=0,
        total_accesses=log.accesses,
        fingerprint_rate=1.0,
        fingerprint_cached=False,
    )
    return SampledCoSimResult(
        workload=log.workload,
        cores=log.cores,
        config=config,
        coverage=coverage,
        instructions=log.instructions,
        accesses=log.accesses,
        filtered=log.filtered,
        reads=int(np.count_nonzero(log.kinds == int(AccessKind.READ))),
        writes=int(np.count_nonzero(log.kinds != int(AccessKind.READ))),
        misses=MetricEstimate(float(stats.misses), 0.0),
        mpki=MetricEstimate(exact.mpki, 0.0),
        miss_ratio=MetricEstimate(ratio, 0.0),
        representative_results=(exact,),
    )


def sampled_sweep(
    log: ReplayLog,
    configs,
    spec: SampleSpec,
    trace_cache: TraceCache | None = None,
    log_key: str | None = None,
) -> list[SampledCoSimResult]:
    """Sampled co-simulation of one log across N cache configurations.

    Fingerprinting and clustering run once and are shared by every
    configuration; per configuration only the cluster representatives
    replay.  ``trace_cache`` + ``log_key`` (the log's own cache key)
    enable fingerprint caching.  Results are index-aligned with
    ``configs``.
    """
    configs = list(configs)
    bounds = interval_bounds(log.accesses, spec.interval)
    n_intervals = len(bounds) - 1
    telemetry.counter("repro_sampled_intervals_total").inc(n_intervals)
    if n_intervals == 1:
        return [_degenerate_result(log, config) for config in configs]

    with telemetry.span("sample.fingerprint"):
        fingerprints, cached = _load_or_fingerprint(
            log, bounds, spec, trace_cache, log_key
        )
    with telemetry.span("sample.cluster"):
        clustering = cluster_intervals(
            fingerprints.features, max_k=spec.max_k, seed=spec.seed
        )
    telemetry.counter("repro_sampled_representatives_total").inc(
        clustering.k * len(configs)
    )
    chunk = log.to_chunk()
    table = log.progress_table()
    per_interval = interval_instructions(table, bounds, log.instructions)
    cluster_accesses = tuple(
        int(fingerprints.counts[clustering.labels == j].sum())
        for j in range(clustering.k)
    )
    reads = int(np.count_nonzero(log.kinds == int(AccessKind.READ)))

    results: list[SampledCoSimResult] = []
    for config in configs:
        with telemetry.span("sample.replay"):
            rep_results, measured, warmed = _replay_representatives(
                log, config, spec, bounds, clustering, chunk, table, per_interval
            )
        misses, mpki, miss_ratio = _recombine(
            log, config, clustering, fingerprints, rep_results
        )
        coverage = SampleCoverage(
            intervals=n_intervals,
            interval_size=spec.interval,
            clusters=clustering.k,
            representatives=clustering.representatives,
            labels=tuple(int(label) for label in clustering.labels),
            cluster_accesses=cluster_accesses,
            simulated_accesses=measured,
            warmup_accesses=warmed,
            total_accesses=log.accesses,
            fingerprint_rate=fingerprints.rate,
            fingerprint_cached=cached,
        )
        results.append(
            SampledCoSimResult(
                workload=log.workload,
                cores=log.cores,
                config=config,
                coverage=coverage,
                instructions=log.instructions,
                accesses=log.accesses,
                filtered=log.filtered,
                reads=reads,
                writes=log.accesses - reads,
                misses=misses,
                mpki=mpki,
                miss_ratio=miss_ratio,
                representative_results=tuple(
                    rep_results[rep] for rep in clustering.representatives
                ),
            )
        )
    return results
