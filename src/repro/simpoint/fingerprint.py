"""Per-interval memory-behaviour fingerprints.

Each interval of the captured stream is summarized by a feature vector
built from :mod:`repro.reuse`:

* a **reuse-distance histogram** — exact LRU stack distances from the
  vectorized Olken engine (:func:`repro.reuse.olken.stack_distances`),
  computed over a SHARDS spatial line sample
  (:func:`repro.reuse.sampling.sampled_lines_mask`) so the cost is
  bounded by a fixed sample budget regardless of trace length, with
  distances rescaled by ``1/rate`` to full-trace line scale and binned
  into log2 buckets (plus a cold bucket);
* a **windowed footprint** — the fraction of the interval's sampled
  accesses that touch a line not referenced earlier in the same
  interval (distinct-lines-per-window, the working-set signal);
* the **per-core sharing mix** — which virtual cores issued the
  interval's traffic (Section 4.3's taxonomy is visible here: shared
  structures interleave cores, private working sets do not);
* the **read fraction** of the interval.

Rows are fractions, so intervals of different lengths (the last one is
partial) are comparable, and the Euclidean metric k-means uses treats
every feature on the same scale.  The histograms double as an analytic
miss-ratio predictor (:func:`predicted_miss_ratio`): a fully-associative
LRU cache of ``C`` lines misses the accesses with distance ≥ C, which
is what the error bars of the recombined estimate are built from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Vectorized log-gamma (scipy is outside the dependency envelope).
gammaln = np.vectorize(math.lgamma, otypes=[np.float64])

from repro.reuse.olken import COLD, previous_occurrences, stack_distances
from repro.reuse.sampling import sampled_lines_mask
from repro.trace.record import AccessKind, TraceChunk

#: Log2 distance buckets 2^0 .. 2^33 (column 0 is the cold bucket).
DISTANCE_BUCKETS = 34

#: The cold-start histogram uses finer, quarter-log2 buckets: the
#: associativity-aware hit curve changes quickly near the capacity
#: knee, where octave-wide buckets would blur the correction.
COLD_BUCKETS_PER_OCTAVE = 4
COLD_BUCKETS = DISTANCE_BUCKETS * COLD_BUCKETS_PER_OCTAVE

#: Schema version stamped into cached fingerprint entries; bump on any
#: feature-layout change so stale cache entries miss instead of lying.
FINGERPRINT_VERSION = 1


@dataclass(frozen=True)
class FingerprintConfig:
    """Knobs of the fingerprinting pass.

    ``max_samples`` caps the SHARDS sub-trace the Olken engine sees —
    the sampling rate is ``min(1, max(min_rate, max_samples / N))`` —
    so fingerprinting cost stays roughly constant as traces grow, which
    is what keeps the sampled path 100-1000x-trace capable.
    """

    line_size: int = 64
    max_samples: int = 1 << 17
    min_rate: float = 1 / 4096


@dataclass(frozen=True)
class IntervalFingerprints:
    """Feature vectors plus raw reuse histograms for every interval."""

    #: Row-per-interval feature matrix (fractions; k-means input).
    features: np.ndarray
    #: Per-interval reuse histogram: column 0 cold, then log2 buckets,
    #: in SHARDS-sampled access counts (not rescaled).
    reuse_histogram: np.ndarray
    #: Quarter-log2-bucket histogram (column 0 cold, then
    #: :data:`COLD_BUCKETS` columns) restricted to *session-cold*
    #: accesses — those whose previous use lies before the interval's
    #: warm-up window, which a standalone replay of the interval sees as
    #: compulsory misses.  Their global distance distribution drives the
    #: cold-start correction (:func:`cold_start_hit_ratio`).
    cold_histogram: np.ndarray
    #: SHARDS-sampled accesses landing in each interval.
    sampled_counts: np.ndarray
    #: Total accesses in each interval (exact, not sampled).
    counts: np.ndarray
    #: The spatial sampling rate the fingerprints were computed at.
    rate: float
    #: Line size the reuse distances are expressed in.
    line_size: int
    #: Warm-up window the session-cold classification assumed.
    warmup: int

    @property
    def intervals(self) -> int:
        """Number of fingerprinted intervals."""
        return len(self.features)

    def to_payload(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Split into the (meta, arrays) form a TraceCache stores."""
        meta = {
            "version": FINGERPRINT_VERSION,
            "rate": self.rate,
            "line_size": self.line_size,
            "warmup": self.warmup,
        }
        arrays = {
            "features": self.features,
            "reuse_histogram": self.reuse_histogram,
            "cold_histogram": self.cold_histogram,
            "sampled_counts": self.sampled_counts,
            "counts": self.counts,
        }
        return meta, arrays

    @classmethod
    def from_payload(cls, meta, arrays) -> "IntervalFingerprints":
        """Rebuild from a cached (meta, arrays) payload."""
        return cls(
            features=np.asarray(arrays["features"]),
            reuse_histogram=np.asarray(arrays["reuse_histogram"]),
            cold_histogram=np.asarray(arrays["cold_histogram"]),
            sampled_counts=np.asarray(arrays["sampled_counts"]),
            counts=np.asarray(arrays["counts"]),
            rate=float(meta["rate"]),
            line_size=int(meta["line_size"]),
            warmup=int(meta["warmup"]),
        )


def _distance_buckets(distances: np.ndarray, rate: float) -> np.ndarray:
    """Histogram column of each sampled access (0 = cold, then log2)."""
    columns = np.zeros(len(distances), dtype=np.int64)
    warm = distances != COLD
    scaled = distances[warm].astype(np.float64) / rate
    logs = np.floor(np.log2(np.maximum(scaled, 1.0))).astype(np.int64)
    columns[warm] = 1 + np.minimum(logs, DISTANCE_BUCKETS - 1)
    return columns


def _cold_buckets(distances: np.ndarray, rate: float) -> np.ndarray:
    """Quarter-log2 histogram column of each access (0 = cold)."""
    columns = np.zeros(len(distances), dtype=np.int64)
    warm = distances != COLD
    scaled = distances[warm].astype(np.float64) / rate
    logs = np.floor(
        COLD_BUCKETS_PER_OCTAVE * np.log2(np.maximum(scaled, 1.0))
    ).astype(np.int64)
    columns[warm] = 1 + np.minimum(logs, COLD_BUCKETS - 1)
    return columns


def fingerprint_intervals(
    chunk: TraceChunk,
    bounds: np.ndarray,
    cores: int,
    config: FingerprintConfig = FingerprintConfig(),
    warmup: int = 0,
) -> IntervalFingerprints:
    """Fingerprint every interval of a core-tagged access stream.

    ``bounds`` comes from :func:`repro.simpoint.intervals.interval_bounds`
    (fixed-size intervals, partial tail); ``warmup`` is the warm-up
    window the replay stage will use, which defines the session-cold
    classification behind :attr:`IntervalFingerprints.cold_histogram`.
    All heavy per-access work runs on the SHARDS sub-trace; only the
    line hash itself touches the full stream, so cost is ~O(N) with a
    tiny constant plus ~O(max_samples log max_samples) for the Olken
    pass.
    """
    bounds = np.asarray(bounds, dtype=np.int64)
    n = len(chunk)
    n_intervals = len(bounds) - 1
    interval = int(bounds[1] - bounds[0]) if n_intervals > 1 else max(n, 1)
    counts = np.diff(bounds)

    lines = chunk.lines(config.line_size)
    rate = 1.0 if n <= config.max_samples else max(
        config.min_rate, config.max_samples / n
    )
    if rate < 1.0:
        positions = np.flatnonzero(sampled_lines_mask(lines, rate))
    else:
        positions = np.arange(n, dtype=np.int64)
    sampled = TraceChunk(
        chunk.addresses[positions],
        chunk.kinds[positions],
        chunk.cores[positions],
        chunk.pcs[positions],
    )
    interval_of = np.minimum(positions // interval, n_intervals - 1)
    sampled_counts = np.bincount(interval_of, minlength=n_intervals).astype(
        np.int64
    )

    # Reuse-distance histogram: exact Olken over the sampled sub-trace,
    # rescaled to full-trace line scale by 1/rate (SHARDS estimator).
    distances = stack_distances(sampled, config.line_size)
    columns = _distance_buckets(distances, rate)
    width = 1 + DISTANCE_BUCKETS
    histogram = np.bincount(
        interval_of * width + columns, minlength=n_intervals * width
    ).reshape(n_intervals, width).astype(np.float64)

    # Windowed footprint: sampled accesses whose line was not referenced
    # earlier in the same interval (previous occurrence before the
    # interval start, or cold).
    previous = previous_occurrences(sampled.lines(config.line_size))
    previous_global = np.where(previous >= 0, positions[np.maximum(previous, 0)], -1)
    first_touch = previous_global < bounds[interval_of]
    footprint = np.bincount(
        interval_of[first_touch], minlength=n_intervals
    ).astype(np.float64)

    # Session-cold accesses: previous use falls before the warm-up
    # window, so a standalone replay of the interval starts them cold.
    # Their *global* distance distribution says which of them the exact
    # path would have hit — the cold-start correction's input.
    session_cold = previous_global < (bounds[interval_of] - warmup)
    cold_columns = _cold_buckets(distances, rate)
    cold_width = 1 + COLD_BUCKETS
    cold_histogram = np.bincount(
        interval_of[session_cold] * cold_width + cold_columns[session_cold],
        minlength=n_intervals * cold_width,
    ).reshape(n_intervals, cold_width).astype(np.float64)

    # Per-core mix and read fraction, from the same sub-trace.
    core_mix = np.bincount(
        interval_of * cores + np.minimum(sampled.cores.astype(np.int64), cores - 1),
        minlength=n_intervals * cores,
    ).reshape(n_intervals, cores).astype(np.float64)
    reads = np.bincount(
        interval_of[sampled.kinds == int(AccessKind.READ)], minlength=n_intervals
    ).astype(np.float64)

    denominator = np.maximum(sampled_counts, 1).astype(np.float64)[:, None]
    features = np.concatenate(
        [
            histogram / denominator,
            footprint[:, None] / denominator,
            core_mix / denominator,
            reads[:, None] / denominator,
        ],
        axis=1,
    )
    return IntervalFingerprints(
        features=features,
        reuse_histogram=histogram,
        cold_histogram=cold_histogram,
        sampled_counts=sampled_counts,
        counts=counts,
        rate=rate,
        line_size=config.line_size,
        warmup=warmup,
    )


def _associative_hit_curve(
    capacity_lines: int, associativity: int
) -> np.ndarray:
    """Hit probability of each cold-histogram bucket in a set-assoc cache.

    Smith's associativity model: an access whose LRU stack distance is
    ``d`` sees ``d`` distinct intervening lines, of which a
    Binomial(d, 1/sets) number lands in its own set; it hits iff fewer
    than ``associativity`` do.  This is what bends the fully-associative
    step function into the soft knee real caches show — near
    ``d ≈ capacity`` roughly half the sets have already overflowed, and
    cyclically-reused working sets just past capacity thrash instead of
    half-hitting.  Evaluated at each quarter-log2 bucket's geometric
    midpoint; returns ``1 + COLD_BUCKETS`` probabilities (column 0, the
    cold bucket, is always 0).
    """
    capacity = max(int(capacity_lines), 1)
    assoc = int(min(associativity, capacity))
    sets = max(capacity // assoc, 1)
    exponents = (np.arange(COLD_BUCKETS) + 0.5) / COLD_BUCKETS_PER_OCTAVE
    d = np.exp2(exponents)
    if sets == 1:
        curve = (d <= assoc - 1).astype(np.float64)
        return np.concatenate([[0.0], curve])
    # Binomial CDF P(X <= assoc-1), X ~ B(d, 1/sets), via log-space
    # terms (d reaches 2^33; no scipy in the dependency envelope).
    log_p = -np.log(sets)
    log_q = np.log1p(-1.0 / sets)
    j = np.arange(assoc, dtype=np.float64)
    log_terms = (
        gammaln(d[:, None] + 1.0)
        - gammaln(j[None, :] + 1.0)
        - gammaln(d[:, None] - j[None, :] + 1.0)
        + j[None, :] * log_p
        + (d[:, None] - j[None, :]) * log_q
    )
    log_terms = np.where(j[None, :] <= d[:, None], log_terms, -np.inf)
    curve = np.exp(log_terms).sum(axis=1).clip(0.0, 1.0)
    return np.concatenate([[0.0], curve])


def cold_start_hit_ratio(
    fingerprints: IntervalFingerprints,
    capacity_lines: int,
    associativity: int,
) -> np.ndarray:
    """Per-interval fraction of accesses a standalone replay over-misses.

    A session-cold access (previous use before the interval's warm-up
    window) misses in a representative replay regardless of capacity;
    in the exact run it hits with the probability the associativity
    model assigns its global stack distance.  The expected count of
    such would-have-hit accesses over the interval's sampled accesses
    is the miss-ratio overestimate the representative carries — the
    recombiner subtracts it.
    """
    curve = _associative_hit_curve(capacity_lines, associativity)
    hits = fingerprints.cold_histogram @ curve
    with np.errstate(invalid="ignore", divide="ignore"):
        ratio = hits / fingerprints.sampled_counts
    return np.where(fingerprints.sampled_counts > 0, ratio, 0.0)


def cold_start_uncertainty(
    fingerprints: IntervalFingerprints,
    capacity_lines: int,
    associativity: int,
) -> np.ndarray:
    """Per-interval bound on the cold-start correction's own error.

    The hit curve is trustworthy at its extremes — far-below-capacity
    reuse hits, far-above-capacity reuse misses — but near the capacity
    knee the binomial model's uniform-set-mapping assumption can be off
    by the full ambiguous mass (skewed set occupancy, cyclic thrash).
    Bound the model error by the cold mass weighted by how ambiguous
    the curve is there (``min(p, 1-p)``), as a fraction of the
    interval's sampled accesses; the recombiner widens the error bars
    by it, so knee configurations are honestly bracketed instead of
    confidently wrong.
    """
    curve = _associative_hit_curve(capacity_lines, associativity)
    ambiguous = np.minimum(curve, 1.0 - curve)
    mass = fingerprints.cold_histogram @ ambiguous
    with np.errstate(invalid="ignore", divide="ignore"):
        ratio = mass / fingerprints.sampled_counts
    return np.where(fingerprints.sampled_counts > 0, ratio, 0.0)


def predicted_miss_ratio(
    fingerprints: IntervalFingerprints, capacity_lines: int
) -> np.ndarray:
    """Analytic per-interval miss-ratio estimate at ``capacity_lines``.

    From the reuse histograms alone: a fully-associative LRU cache of
    ``C`` lines misses cold accesses plus those with stack distance
    ≥ C; the bucket containing C contributes its log2-interpolated
    fraction.  Intervals with no sampled accesses yield NaN — callers
    substitute a global fallback.  This never replaces the emulator
    (associativity, banking, and sharing effects are its job); it only
    ranks intervals for the error-bar residuals.
    """
    histogram = fingerprints.reuse_histogram
    capacity = max(int(capacity_lines), 1)
    position = np.log2(capacity)
    bucket = min(int(position), DISTANCE_BUCKETS - 1)
    misses = histogram[:, 0].copy()
    misses += histogram[:, 2 + bucket :].sum(axis=1)
    misses += histogram[:, 1 + bucket] * max(0.0, 1.0 - (position - bucket))
    with np.errstate(invalid="ignore", divide="ignore"):
        ratio = misses / fingerprints.sampled_counts
    return np.where(fingerprints.sampled_counts > 0, ratio, np.nan)
