"""Fixed-size interval slicing of a captured replay log.

An *interval* is a contiguous run of in-window data accesses; every
interval has exactly ``interval`` accesses except the last, which takes
the remainder.  The slicing helpers here are what let one captured
:class:`~repro.harness.replay.ReplayLog` be replayed piecewise: the
progress table (instruction/cycle counters driving the 500 µs window
sampler) is a cumulative step function over access offsets, so a slice
of it rebases both the offsets and the counters to the interval's start.

The degenerate single-interval case returns the full table unchanged —
the property the bit-identity guarantee of the sampled path rests on
(``tests/test_simpoint.py``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError


def interval_bounds(total_accesses: int, interval: int) -> np.ndarray:
    """Interval boundaries ``[0, I, 2I, ..., total]`` as int64.

    ``len(bounds) - 1`` intervals; the last one holds the remainder
    (never empty).  Raises :class:`SamplingError` for a non-positive
    interval or an empty stream — there is nothing to sample.
    """
    if interval <= 0:
        raise SamplingError(f"interval must be positive, got {interval}")
    if total_accesses <= 0:
        raise SamplingError("cannot sample an empty access stream")
    bounds = np.arange(0, total_accesses, interval, dtype=np.int64)
    return np.append(bounds, np.int64(total_accesses))


def slice_progress(table: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Rebase the progress rows that land inside the interval ``[lo, hi)``.

    ``table`` is the ``(offset, instructions, cycles)`` array from
    :meth:`~repro.harness.replay.ReplayLog.progress_table`.  A row with
    ``offset == lo`` arrived *before* the interval's first access and
    belongs to the previous interval — except at ``lo == 0``, where
    offset-0 rows (progress before any data) open the session exactly as
    the full replay sees them.  Offsets shift by ``-lo``; instruction
    and cycle counters subtract the last row at or before ``lo`` (the
    value of the step function where the interval starts).
    """
    table = np.asarray(table, dtype=np.int64).reshape(-1, 3)
    if lo == 0 and hi >= (int(table[-1, 0]) if len(table) else 0):
        return table
    offsets = table[:, 0]
    if lo == 0:
        mask = offsets <= hi
        base_instructions = 0
        base_cycles = 0
    else:
        mask = (offsets > lo) & (offsets <= hi)
        before = int(np.searchsorted(offsets, lo, side="right")) - 1
        base_instructions = int(table[before, 1]) if before >= 0 else 0
        base_cycles = int(table[before, 2]) if before >= 0 else 0
    sliced = table[mask].copy()
    sliced[:, 0] -= lo
    sliced[:, 1] -= base_instructions
    sliced[:, 2] -= base_cycles
    return sliced


def interval_instructions(
    table: np.ndarray, bounds: np.ndarray, total_instructions: int
) -> np.ndarray:
    """Retired instructions attributed to each interval (int64, per interval).

    The counter is a step function of the access offset; interval ``i``
    gets the step value at ``bounds[i+1]`` minus the value at
    ``bounds[i]``.  The final interval is topped up to
    ``total_instructions`` so the per-interval counts always sum to the
    log's exact total (a trailing INSTRUCTIONS_RETIRED message may have
    no following progress row).
    """
    table = np.asarray(table, dtype=np.int64).reshape(-1, 3)
    bounds = np.asarray(bounds, dtype=np.int64)
    if not len(table):
        steps = np.zeros(len(bounds), dtype=np.int64)
    else:
        indices = np.searchsorted(table[:, 0], bounds, side="right") - 1
        steps = np.where(indices >= 0, table[np.maximum(indices, 0), 1], 0)
    steps[-1] = total_instructions
    return np.diff(steps)
