"""Validation table: sampled simulation versus the exact replay path.

Sampled simulation trades exactness for speed; this module measures the
trade on long synthetic traces.  For each (workload × LLC geometry)
cell it runs the same captured stream through both paths and reports
the sampled MPKI estimate, the exact MPKI, the relative error, and
whether the estimate's error bar brackets the exact value.

Run it as a script for the standard table (FIMI, SHOT, and MDS over
1 MB / 8 MB / 32 MB LLCs on long repeated streams)::

    PYTHONPATH=src python -m repro.simpoint.validate

CI pins the accuracy bar with the assertion flags::

    python -m repro.simpoint.validate --workloads FIMI --sizes 1,32 \\
        --assert-max-rel 0.05 --assert-brackets

Geometry caveat: configurations whose capacity sits right at a
workload's footprint knee stress the cold-start correction's uniform
set-mapping assumption (see ``docs/architecture.md``); the standard
table keeps its geometries away from the knee, and the error bars at
knee geometries widen to stay honest rather than confidently wrong.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.harness.replay import (
    load_or_capture,
    log_cache_key,
    replay,
    size_sweep_configs,
)
from repro.harness.report import render_table
from repro.simpoint.engine import MetricEstimate, SampleSpec, sampled_sweep
from repro.units import MB
from repro.workloads.registry import get_workload

if TYPE_CHECKING:
    from repro.trace.cache import TraceCache

DEFAULT_WORKLOADS = ("FIMI", "SHOT", "MDS")
DEFAULT_SIZES_MB = (1, 8, 32)
DEFAULT_PER_THREAD = 65536
DEFAULT_REPEATS = 8
DEFAULT_CORES = 4
DEFAULT_INTERVAL = 32768
DEFAULT_MAX_K = 6


@dataclass(frozen=True)
class ValidationRow:
    """One (workload × geometry) cell of the sampled-vs-exact table."""

    workload: str
    cache_size: int
    exact_mpki: float
    sampled_mpki: MetricEstimate

    @property
    def rel_error(self) -> float:
        """Relative error of the sampled estimate against exact MPKI."""
        if self.exact_mpki == 0.0:
            return 0.0 if self.sampled_mpki.value == 0.0 else float("inf")
        return abs(self.sampled_mpki.value - self.exact_mpki) / self.exact_mpki

    @property
    def brackets(self) -> bool:
        """True when the error bar contains the exact value."""
        return self.sampled_mpki.brackets(self.exact_mpki)


def validate(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    cache_sizes: Sequence[int] = tuple(s * MB for s in DEFAULT_SIZES_MB),
    spec: SampleSpec | None = None,
    accesses_per_thread: int = DEFAULT_PER_THREAD,
    repeats: int = DEFAULT_REPEATS,
    cores: int = DEFAULT_CORES,
    trace_cache: "TraceCache | None" = None,
) -> list[ValidationRow]:
    """Run every (workload × geometry) cell through both paths.

    One capture per workload; the exact path replays the full stream
    per geometry, the sampled path goes through
    :func:`~repro.simpoint.engine.sampled_sweep` on the same log, so
    the two columns measure the same traffic.
    """
    spec = spec or SampleSpec(interval=DEFAULT_INTERVAL, max_k=DEFAULT_MAX_K)
    configs = size_sweep_configs(list(cache_sizes))
    rows: list[ValidationRow] = []
    for name in workloads:
        workload = get_workload(name)
        guest = workload.synthetic_guest(
            accesses_per_thread=accesses_per_thread, scale=1.0, repeats=repeats
        )
        key_extra = {
            "source": "synthetic",
            "accesses_per_thread": accesses_per_thread,
            "scale": 1.0,
            "seed": 0,
        }
        if repeats != 1:
            key_extra["repeats"] = repeats
        log, _ = load_or_capture(
            guest, cores, trace_cache=trace_cache, key_extra=key_extra
        )
        log_key = (
            log_cache_key(guest.name, cores, 4096, 8192, key_extra)
            if trace_cache is not None
            else None
        )
        sampled = sampled_sweep(
            log, configs, spec, trace_cache=trace_cache, log_key=log_key
        )
        for config, estimate in zip(configs, sampled):
            exact = replay(log, config)
            rows.append(
                ValidationRow(
                    workload=name,
                    cache_size=config.cache_size,
                    exact_mpki=exact.mpki,
                    sampled_mpki=estimate.mpki,
                )
            )
    return rows


def render_validation(rows: Sequence[ValidationRow]) -> str:
    """The sampled-vs-exact table as aligned ASCII."""
    return render_table(
        ["workload", "LLC", "exact MPKI", "sampled MPKI", "rel error", "brackets"],
        [
            (
                row.workload,
                f"{row.cache_size // MB}MB",
                f"{row.exact_mpki:.3f}",
                f"{row.sampled_mpki:.3f}",
                f"{100 * row.rel_error:.2f}%",
                "yes" if row.brackets else "NO",
            )
            for row in rows
        ],
        title="Sampled simulation validation (sampled vs exact replay)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Command-line interface of ``python -m repro.simpoint.validate``."""
    parser = argparse.ArgumentParser(
        prog="repro.simpoint.validate",
        description="Validate sampled simulation against the exact replay path.",
    )
    parser.add_argument(
        "--workloads",
        default=",".join(DEFAULT_WORKLOADS),
        help="comma-separated workload names (default: %(default)s)",
    )
    parser.add_argument(
        "--sizes",
        default=",".join(str(s) for s in DEFAULT_SIZES_MB),
        help="comma-separated LLC sizes in MB (default: %(default)s)",
    )
    parser.add_argument(
        "--per-thread",
        type=int,
        default=DEFAULT_PER_THREAD,
        help="synthetic accesses per thread before repetition "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=DEFAULT_REPEATS,
        help="long-stream scaling: repetitions of each thread trace "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--cores",
        type=int,
        default=DEFAULT_CORES,
        help="emulated cores (default: %(default)s)",
    )
    parser.add_argument(
        "--interval",
        type=int,
        default=DEFAULT_INTERVAL,
        help="sampling interval in accesses (default: %(default)s)",
    )
    parser.add_argument(
        "--max-k",
        type=int,
        default=DEFAULT_MAX_K,
        help="cluster-count ceiling for interval clustering "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--trace-cache",
        metavar="DIR",
        default=None,
        help="reuse captured traces via the content-addressed cache in "
        "DIR (default: $REPRO_TRACE_CACHE)",
    )
    parser.add_argument(
        "--assert-max-rel",
        type=float,
        default=None,
        metavar="FRACTION",
        help="exit nonzero if any cell's relative MPKI error exceeds "
        "FRACTION (e.g. 0.05)",
    )
    parser.add_argument(
        "--assert-brackets",
        action="store_true",
        help="exit nonzero if any cell's error bar fails to bracket "
        "the exact MPKI",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Print the validation table; apply the assertion flags for CI."""
    from repro.trace.cache import resolve_trace_cache

    args = build_parser().parse_args(argv)
    rows = validate(
        workloads=tuple(w.strip() for w in args.workloads.split(",") if w.strip()),
        cache_sizes=tuple(
            int(s.strip()) * MB for s in args.sizes.split(",") if s.strip()
        ),
        spec=SampleSpec(interval=args.interval, max_k=args.max_k),
        accesses_per_thread=args.per_thread,
        repeats=args.repeats,
        cores=args.cores,
        trace_cache=resolve_trace_cache(args.trace_cache),
    )
    print(render_validation(rows))
    worst = max(rows, key=lambda row: row.rel_error)
    print(
        f"max relative MPKI error: {100 * worst.rel_error:.2f}% "
        f"({worst.workload} @ {worst.cache_size // MB}MB)"
    )
    status = 0
    if args.assert_max_rel is not None and worst.rel_error > args.assert_max_rel:
        print(
            f"FAIL: relative error {100 * worst.rel_error:.2f}% exceeds "
            f"the {100 * args.assert_max_rel:.2f}% bound"
        )
        status = 1
    if args.assert_brackets:
        misses = [row for row in rows if not row.brackets]
        for row in misses:
            print(
                f"FAIL: {row.workload} @ {row.cache_size // MB}MB error bar "
                f"{row.sampled_mpki} does not bracket exact "
                f"{row.exact_mpki:.3f}"
            )
        if misses:
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
