"""Telemetry: spans, metrics, live window streaming, run profiles.

The observability subsystem for the whole co-simulation stack.  The
hardware platform was observable by construction — the CB FPGA
aggregated counters and a host polled it every 500 µs; SoftSDV logged
its DEX scheduling — and this package gives the software reproduction
the same visibility without touching a single simulated value:

* :mod:`~repro.telemetry.registry` — typed counters, gauges, and
  histograms with a shared null object for the disabled path;
* :mod:`~repro.telemetry.spans` — nesting context-manager spans on
  monotonic clocks;
* :mod:`~repro.telemetry.sinks` — JSONL event log and atomic
  Prometheus text exposition;
* :mod:`~repro.telemetry.windows` — the live 500 µs window stream
  mirroring the CB host-pull;
* :mod:`~repro.telemetry.runtime` — the process-wide switch every
  instrumented layer calls through;
* :mod:`~repro.telemetry.profile` — the end-of-run profile report.

Telemetry is strictly opt-in (``--telemetry`` on the CLIs, or
:func:`configure` from code) and inert by default: with the switch off,
every entry point is a no-op and the platform's outputs are
byte-identical to an uninstrumented build.
"""

from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    NULL_METRIC,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)
from repro.telemetry.runtime import (
    configure,
    counter,
    enabled,
    event,
    gauge,
    histogram,
    registry,
    session,
    shutdown,
    span,
    stream,
    tracker,
    window_publisher,
)
from repro.telemetry.sinks import (
    JsonlSink,
    parse_prometheus,
    read_events,
    render_prometheus,
    replay_events_into,
    snapshot_events,
    write_prometheus,
)
from repro.telemetry.spans import SpanRecord, SpanTracker
from repro.telemetry.windows import WindowSeries, WindowStream

# repro.telemetry.profile is deliberately NOT imported here: it depends
# on repro.faults.report, and keeping this package's import closure at
# stdlib + repro.errors lets any layer of the stack (the emulator
# included) import the runtime without risking a cycle.  Import
# ``repro.telemetry.profile`` explicitly where the report is built.

__all__ = [
    "DEFAULT_BUCKETS",
    "NULL_METRIC",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "JsonlSink",
    "SpanRecord",
    "SpanTracker",
    "WindowSeries",
    "WindowStream",
    "configure",
    "shutdown",
    "session",
    "enabled",
    "registry",
    "tracker",
    "stream",
    "counter",
    "gauge",
    "histogram",
    "span",
    "event",
    "window_publisher",
    "snapshot_events",
    "read_events",
    "replay_events_into",
    "render_prometheus",
    "write_prometheus",
    "parse_prometheus",
]
