"""The end-of-run profile: where the wall time and the traffic went.

The paper's host computer ended every run with a readout — counters off
the CB board, reconciled against the simulator's own totals.  This
module is that readout for the software platform: :func:`build_profile`
folds the span tracker and the metric registry into one report dict
(per-phase wall time, accesses per second, trace-cache hit rate,
supervisor retry/timeout counts), and :func:`render_profile` prints it
for a terminal.

Worker processes do not share the parent's registry, so result-level
aggregates are published **parent-side** from the returned
:class:`~repro.core.cosim.CoSimResult` objects via
:func:`publish_results` — fan-out width never changes what a metric
means.  The profile then *reconciles*: the registry's published totals
must equal the sums over the results exactly, and the depth-1 phase
spans must cover at least 95% of the root span's wall time.  The CI
smoke job greps for the reconciliation verdict.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping, Sequence

from repro.faults.report import DegradationRecord, merge_records
from repro.telemetry.registry import MetricRegistry
from repro.telemetry.spans import SpanTracker

#: Depth-1 spans must cover at least this share of the root span for
#: the profile to call itself reconciled (acceptance: within 5%).
PHASE_COVERAGE_FLOOR = 0.95

#: Registry names for the parent-published result aggregates.
RUNS_TOTAL = "repro_runs_total"
INSTRUCTIONS_TOTAL = "repro_run_instructions_total"
ACCESSES_TOTAL = "repro_run_accesses_total"
MISSES_TOTAL = "repro_run_misses_total"
WINDOWS_TOTAL = "repro_run_windows_total"
FILTERED_TOTAL = "repro_run_filtered_total"
FAULT_EVENTS_TOTAL = "repro_fault_events_total"


def publish_results(registry: MetricRegistry, results: Iterable) -> None:
    """Fold a result list's aggregates into the registry, parent-side.

    Also publishes every result's degradation records as
    ``repro_fault_events_total{kind,source,detail}`` counters — the one
    counting path the degradation report reads from, replacing the old
    re-walk over each result's ``PerformanceData``.
    """
    for result in results:
        if result is None:  # a degraded sweep point's failure value
            continue
        registry.counter(RUNS_TOTAL).inc()
        registry.counter(INSTRUCTIONS_TOTAL).inc(result.instructions)
        registry.counter(ACCESSES_TOTAL).inc(result.accesses)
        registry.counter(MISSES_TOTAL).inc(result.llc_stats.misses)
        registry.counter(WINDOWS_TOTAL).inc(len(result.samples))
        registry.counter(FILTERED_TOTAL).inc(result.filtered)
        for record in result.degradation:
            registry.counter(
                FAULT_EVENTS_TOTAL,
                kind=record.kind,
                source=record.source,
                detail=record.detail,
            ).inc(record.count)


def registry_degradation_records(
    registry: MetricRegistry,
) -> tuple[DegradationRecord, ...]:
    """Degradation records, re-read from the registry's counters.

    The inverse of what :func:`publish_results` wrote: one record per
    ``repro_fault_events_total`` label set.  ``merge_records`` gives the
    same (kind, source, detail) sort order the per-result merge used, so
    a report rendered from the registry is byte-identical to one merged
    directly from the results.
    """
    records = []
    for labels, value in registry.values_by_label(FAULT_EVENTS_TOTAL).items():
        fields = dict(labels)
        records.append(
            DegradationRecord(
                kind=fields.get("kind", ""),
                source=fields.get("source", ""),
                count=int(value),
                detail=fields.get("detail", ""),
            )
        )
    return merge_records(records)


def _counter_value(registry: MetricRegistry, name: str) -> float:
    total = 0.0
    for value in registry.values_by_label(name).values():
        total += value
    return total


def _label_table(registry: MetricRegistry, name: str, key: str) -> dict[str, int]:
    """Flatten one labelled counter family into ``{label_value: count}``."""
    out: dict[str, int] = {}
    for labels, value in registry.values_by_label(name).items():
        fields = dict(labels)
        out[fields.get(key, "")] = out.get(fields.get(key, ""), 0) + int(value)
    return out


def build_profile(
    results: Sequence,
    tracker: SpanTracker,
    registry: MetricRegistry,
) -> dict:
    """Assemble the end-of-run profile report.

    Call after :func:`publish_results` and after the root span has
    closed; the reconciliation checks compare the registry's published
    totals against fresh sums over ``results`` and the phase spans
    against the root span.
    """
    live = [r for r in results if r is not None]
    total_seconds = tracker.total_seconds()
    phases = {
        name: {
            "seconds": seconds,
            "calls": calls,
            "share": (seconds / total_seconds) if total_seconds > 0 else 0.0,
        }
        for name, (seconds, calls) in sorted(tracker.phase_seconds(1).items())
    }
    phase_sum = sum(p["seconds"] for p in phases.values())
    coverage = (phase_sum / total_seconds) if total_seconds > 0 else 1.0

    instructions = sum(r.instructions for r in live)
    accesses = sum(r.accesses for r in live)
    misses = sum(r.llc_stats.misses for r in live)
    windows = sum(len(r.samples) for r in live)

    replay_seconds = phases.get("replay", {}).get("seconds", 0.0)
    rate_base = replay_seconds if replay_seconds > 0 else total_seconds
    accesses_per_second = accesses / rate_base if rate_base > 0 else 0.0

    cache_events = _label_table(registry, "repro_trace_cache_events_total", "event")
    cache_lookups = cache_events.get("hits", 0) + cache_events.get("misses", 0)
    hit_rate = cache_events.get("hits", 0) / cache_lookups if cache_lookups else 0.0

    reconciled = (
        coverage >= PHASE_COVERAGE_FLOOR
        and int(_counter_value(registry, RUNS_TOTAL)) == len(live)
        and int(_counter_value(registry, INSTRUCTIONS_TOTAL)) == instructions
        and int(_counter_value(registry, ACCESSES_TOTAL)) == accesses
        and int(_counter_value(registry, MISSES_TOTAL)) == misses
        and int(_counter_value(registry, WINDOWS_TOTAL)) == windows
    )
    return {
        "total_seconds": total_seconds,
        "phases": phases,
        "phase_coverage": coverage,
        "runs": len(live),
        "instructions": instructions,
        "accesses": accesses,
        "misses": misses,
        "windows": windows,
        "accesses_per_second": accesses_per_second,
        "trace_cache": {
            "events": cache_events,
            "hit_rate": hit_rate,
        },
        "supervisor": _label_table(
            registry, "repro_supervisor_events_total", "event"
        ),
        "degradation_events": int(
            sum(r.count for r in registry_degradation_records(registry))
        ),
        "reconciled": reconciled,
    }


def render_profile(profile: Mapping) -> str:
    """The profile as an aligned text block for the terminal."""
    lines = ["Run profile:"]
    lines.append(f"  total wall time      : {profile['total_seconds']:.3f}s")
    for name, phase in profile["phases"].items():
        lines.append(
            f"    phase {name:<12}: {phase['seconds']:.3f}s "
            f"({100.0 * phase['share']:.1f}%, {phase['calls']} span(s))"
        )
    lines.append(
        f"  phase coverage       : {100.0 * profile['phase_coverage']:.1f}%"
    )
    lines.append(f"  runs                 : {profile['runs']}")
    lines.append(f"  accesses/sec         : {profile['accesses_per_second']:,.0f}")
    lines.append(f"  sampled windows      : {profile['windows']}")
    cache = profile["trace_cache"]
    if cache["events"]:
        events = " ".join(f"{k}={v}" for k, v in sorted(cache["events"].items()))
        lines.append(
            f"  trace cache          : {events} "
            f"(hit rate {100.0 * cache['hit_rate']:.0f}%)"
        )
    if profile["supervisor"]:
        events = " ".join(
            f"{k}={v}" for k, v in sorted(profile["supervisor"].items())
        )
        lines.append(f"  supervisor events    : {events}")
    if profile["degradation_events"]:
        lines.append(
            f"  degradation events   : {profile['degradation_events']}"
        )
    lines.append(
        "  reconciliation       : "
        + ("OK" if profile["reconciled"] else "MISMATCH")
    )
    return "\n".join(lines)


def write_profile(profile: Mapping, path: str) -> None:
    """Write the profile as JSON (for CI artifacts and tooling)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(dict(profile), handle, indent=2, sort_keys=True)
        handle.write("\n")
