"""The typed metric registry: counters, gauges, histograms.

The software counterpart of the CB FPGA's statistic block: a small,
zero-dependency set of named counters that every layer of the platform
can increment and one collector can read out.  Three metric types cover
what the co-simulation stack measures:

* :class:`Counter` — monotonically increasing totals (accesses snooped,
  checkpoints written, faults injected);
* :class:`Gauge` — last-written values (the current window's MPKI, the
  sweep's completion fraction);
* :class:`Histogram` — bucketed distributions with Prometheus
  ``le``-semantics (per-point wall times).

Metrics are identified by ``(name, labels)``; :meth:`MetricRegistry.
counter` and friends are get-or-create, so call sites never coordinate.
When telemetry is disabled the runtime hands out :data:`NULL_METRIC`
instead — one shared object whose mutators are empty methods — so the
disabled hot path costs a method call, not a dict lookup.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.errors import TelemetryError

#: Default histogram bucket upper edges (seconds): spans from a 100 µs
#: report render to a minutes-long capture all land in a useful bucket.
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.025,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
    120.0,
)


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    value: float = 0

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise TelemetryError(
                f"counter {self.name} cannot decrease (inc({n}))"
            )
        self.value += n


@dataclass
class Gauge:
    """A last-written value."""

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1) -> None:
        self.value += n


@dataclass
class Histogram:
    """A bucketed distribution with cumulative ``le`` exposition.

    ``buckets`` are the finite upper edges; an observation lands in the
    first bucket whose edge is >= the value (Prometheus semantics: the
    ``le`` boundary is inclusive).  Values above the last edge count
    only toward the implicit ``+Inf`` bucket.
    """

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    sum: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        self.buckets = tuple(sorted(float(b) for b in self.buckets))
        if not self.buckets:
            raise TelemetryError(f"histogram {self.name} needs at least one bucket")
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, float(value))] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ending with ``(inf, count)``."""
        out: list[tuple[float, int]] = []
        running = 0
        for edge, n in zip(self.buckets, self.counts):
            running += n
            out.append((edge, running))
        out.append((float("inf"), self.count))
        return out


class _NullMetric:
    """Shared disabled-path stand-in: every mutator is a no-op."""

    __slots__ = ()

    def inc(self, n: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


#: The one null metric every disabled call site shares.
NULL_METRIC = _NullMetric()


class MetricRegistry:
    """Get-or-create store of typed metrics, keyed by (name, labels)."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}
        self._types: dict[str, type] = {}

    def _get(self, cls: type, name: str, labels: Mapping[str, str], **kwargs):
        registered = self._types.get(name)
        if registered is not None and registered is not cls:
            raise TelemetryError(
                f"metric {name!r} is already registered as a "
                f"{registered.__name__}, not a {cls.__name__}"
            )
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name=name, labels=key[1], **kwargs)
            self._metrics[key] = metric
            self._types[name] = cls
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels: str
    ) -> Histogram:
        if buckets is None:
            return self._get(Histogram, name, labels)
        return self._get(Histogram, name, labels, buckets=buckets)

    # -- read-out -----------------------------------------------------

    def __iter__(self) -> Iterator[object]:
        """Metrics in deterministic (name, labels) order."""
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def __len__(self) -> int:
        return len(self._metrics)

    def value(self, name: str, **labels: str) -> float | None:
        """Current value of a counter/gauge, or None if never touched."""
        metric = self._metrics.get((name, _label_key(labels)))
        return None if metric is None else metric.value  # type: ignore[union-attr]

    def values_by_label(self, name: str) -> dict[tuple[tuple[str, str], ...], float]:
        """All label-variants of a counter/gauge name and their values."""
        return {
            key[1]: metric.value  # type: ignore[union-attr]
            for key, metric in sorted(self._metrics.items())
            if key[0] == name
        }
