"""The ambient telemetry runtime: one process-wide switch and its state.

Everything the instrumented layers call lives here, and every entry
point has a disabled fast path that costs one attribute read plus (at
most) a no-op method call:

* :func:`enabled` — the switch;
* :func:`counter` / :func:`gauge` / :func:`histogram` — registry
  metrics when enabled, the shared :data:`~repro.telemetry.registry.
  NULL_METRIC` when disabled;
* :func:`span` — a real tracked span when enabled, one shared reusable
  null context manager when disabled (no allocation per call);
* :func:`window_publisher` — the live window stream's per-sample
  callback when enabled, None when disabled (producers skip the hook
  entirely on None);
* :func:`event` — a JSONL event when a sink is attached, else nothing.

:func:`configure` installs fresh state (registry, span tracker, window
stream, optional JSONL sink), so every run starts from zero counters;
:func:`shutdown` flushes the final metric snapshot into the event log
and closes it.  The switch is process-local by design: sweep worker
processes run with telemetry off, and the parent publishes their
results' aggregates instead (see ``repro.telemetry.profile``), so fan
-out width never changes what a metric means.

Telemetry deliberately never touches simulation state, RNG streams, or
result values: with the switch off the platform's outputs are
byte-identical to a build without telemetry at all, and the tier-1
differential tests pin that down.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import Iterator

from repro.telemetry.registry import NULL_METRIC, MetricRegistry
from repro.telemetry.sinks import JsonlSink, snapshot_events
from repro.telemetry.spans import SpanRecord, SpanTracker
from repro.telemetry.windows import WindowStream


class _State:
    """Everything one enabled telemetry session owns."""

    def __init__(self, events_path: str | None = None) -> None:
        self.registry = MetricRegistry()
        self.sink: JsonlSink | None = (
            JsonlSink(events_path) if events_path else None
        )
        self.tracker = SpanTracker(self.registry, on_close=self._span_closed)
        self.stream = WindowStream(self.registry, on_window=self._window_closed)

    def _span_closed(self, record: SpanRecord) -> None:
        if self.sink is not None:
            self.sink.emit(
                {
                    "event": "span",
                    "name": record.name,
                    "depth": record.depth,
                    "parent": record.parent,
                    "seconds": record.seconds,
                }
            )

    def _window_closed(self, series, sample) -> None:
        if self.sink is not None:
            self.sink.emit(
                {
                    "event": "window",
                    "series": series.label,
                    "index": sample.index,
                    "instructions": sample.instructions,
                    "accesses": sample.accesses,
                    "misses": sample.misses,
                    "mpki": sample.mpki,
                    "bandwidth_bytes_per_second": series.bandwidth(sample),
                }
            )


_state: _State | None = None

#: One reusable null context manager shared by every disabled span()
#: call — ``contextlib.nullcontext`` keeps no per-use state, so reuse
#: is safe and the disabled path allocates nothing.
_NULL_SPAN = nullcontext()


def configure(enabled: bool = True, events_path: str | None = None) -> None:
    """Flip the process-wide switch, installing fresh state when on.

    Enabling always starts from an empty registry — telemetry sessions
    never bleed counters into each other.  Disabling closes any open
    event sink (without the final snapshot; use :func:`shutdown` for a
    graceful end of session).
    """
    global _state
    if _state is not None and _state.sink is not None:
        _state.sink.close()
    _state = _State(events_path) if enabled else None


def shutdown() -> None:
    """End the session: snapshot every metric into the event log, close."""
    global _state
    if _state is None:
        return
    if _state.sink is not None:
        for event in snapshot_events(_state.registry):
            _state.sink.emit(event)
        _state.sink.close()
    _state = None


def enabled() -> bool:
    """Whether the process-wide telemetry switch is on."""
    return _state is not None


def registry() -> MetricRegistry | None:
    """The live registry, or None when telemetry is off."""
    return None if _state is None else _state.registry


def tracker() -> SpanTracker | None:
    """The live span tracker, or None when telemetry is off."""
    return None if _state is None else _state.tracker


def stream() -> WindowStream | None:
    """The live window stream, or None when telemetry is off."""
    return None if _state is None else _state.stream


def counter(name: str, **labels: str):
    """A registry counter when enabled, the shared null metric when not."""
    if _state is None:
        return NULL_METRIC
    return _state.registry.counter(name, **labels)


def gauge(name: str, **labels: str):
    """A registry gauge when enabled, the shared null metric when not."""
    if _state is None:
        return NULL_METRIC
    return _state.registry.gauge(name, **labels)


def histogram(name: str, buckets: tuple[float, ...] | None = None, **labels: str):
    """A registry histogram when enabled, the shared null metric when not."""
    if _state is None:
        return NULL_METRIC
    return _state.registry.histogram(name, buckets=buckets, **labels)


def span(name: str):
    """A timed span when enabled; the shared null context when not."""
    if _state is None:
        return _NULL_SPAN
    return _state.tracker.span(name)


def window_publisher(label: str, line_size: int, frequency_hz: float):
    """A per-sample publish callback, or None when telemetry is off.

    Producers wire the returned callable straight into
    :attr:`~repro.cache.sampling.WindowSampler.on_sample`; a None hook
    costs the sampler one ``is not None`` test per closed window.
    """
    if _state is None:
        return None
    return _state.stream.open(label, line_size, frequency_hz)


def event(payload: dict) -> None:
    """Emit one raw event into the JSONL log, if a sink is attached."""
    if _state is not None and _state.sink is not None:
        _state.sink.emit(payload)


@contextmanager
def session(
    enabled_: bool = True, events_path: str | None = None
) -> Iterator[None]:
    """configure()/shutdown() as a context manager (tests, scripts)."""
    configure(enabled_, events_path)
    try:
        yield
    finally:
        shutdown()
