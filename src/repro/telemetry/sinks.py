"""Telemetry sinks: JSONL event log and Prometheus text exposition.

Two serialized views of one registry:

* :class:`JsonlSink` is the *streaming* view — span closures, window
  samples, and final metric snapshots append as single-line JSON
  objects, so a run can be tailed in flight and reconstructed after the
  fact (:func:`replay_events_into` rebuilds a registry from the file).
* :func:`write_prometheus` is the *scrapeable* view — the standard
  text exposition format, written atomically (tmp + ``os.replace``) so
  a scraper or a ``watch cat`` never reads a torn file.

Round trip: ``registry → JSONL → registry → Prometheus text`` is
lossless for every metric type (histograms travel with their full
bucket state), which ``tests/test_telemetry.py`` pins down.
"""

from __future__ import annotations

import json
import math
import os
import sys
from typing import Iterable, Iterator, Mapping

from repro.errors import TelemetryError
from repro.telemetry.registry import Counter, Gauge, Histogram, MetricRegistry

#: Consecutive emit failures after which a :class:`JsonlSink` gives up
#: (with one stderr warning) instead of fighting a dead volume forever.
MAX_CONSECUTIVE_WRITE_ERRORS = 5


def _count_write_error(sink: str) -> None:
    """Bump ``repro_telemetry_write_errors_total`` for one failed write.

    Imported lazily: :mod:`repro.telemetry.runtime` imports this module
    at its top level, so the reverse edge must resolve at call time.
    """
    from repro.telemetry import runtime as telemetry_runtime

    telemetry_runtime.counter(
        "repro_telemetry_write_errors_total", sink=sink
    ).inc()


class JsonlSink:
    """Append-only JSONL event log (one JSON object per line).

    Writes never raise: the telemetry stream must not be able to kill
    the run it is observing.  A failed append is retried (transient
    errnos only, see :func:`repro.governor.retry.retry_io`), counted in
    ``repro_telemetry_write_errors_total{sink="jsonl"}``, and after
    :data:`MAX_CONSECUTIVE_WRITE_ERRORS` consecutive failures the sink
    disables itself with a single stderr warning — a degraded event
    log, loudly reported, instead of a crashed sweep or a silent one.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = str(path)
        self._write_errors = 0
        self._disabled = False
        try:
            self._handle = open(self.path, "w", encoding="utf-8")
        except OSError as error:
            raise TelemetryError(
                f"cannot open telemetry event log {self.path}: {error}"
            ) from error

    def emit(self, event: Mapping[str, object]) -> None:
        if self._handle.closed or self._disabled:
            return
        from repro.governor.fsshim import fault_point
        from repro.governor.retry import retry_io

        line = json.dumps(event, sort_keys=True) + "\n"

        def _write() -> None:
            fault_point("telemetry.emit")
            self._handle.write(line)
            self._handle.flush()

        try:
            retry_io("telemetry.emit", _write)
        except OSError as error:
            self._write_errors += 1
            _count_write_error("jsonl")
            if self._write_errors >= MAX_CONSECUTIVE_WRITE_ERRORS:
                self._disabled = True
                print(
                    f"warning: telemetry event log {self.path} disabled "
                    f"after {self._write_errors} consecutive write "
                    f"failures: {error}",
                    file=sys.stderr,
                )
        else:
            self._write_errors = 0

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def snapshot_events(registry: MetricRegistry) -> Iterator[dict]:
    """Final-value events for every metric in the registry.

    Emitted into the JSONL log at shutdown so the file alone carries
    the complete end state, not just the streamed deltas.
    """
    for metric in registry:
        labels = dict(metric.labels)
        if isinstance(metric, Counter):
            yield {
                "event": "metric",
                "type": "counter",
                "name": metric.name,
                "labels": labels,
                "value": metric.value,
            }
        elif isinstance(metric, Gauge):
            yield {
                "event": "metric",
                "type": "gauge",
                "name": metric.name,
                "labels": labels,
                "value": metric.value,
            }
        elif isinstance(metric, Histogram):
            yield {
                "event": "metric",
                "type": "histogram",
                "name": metric.name,
                "labels": labels,
                "buckets": list(metric.buckets),
                "counts": list(metric.counts),
                "sum": metric.sum,
                "count": metric.count,
            }


def read_events(path: str | os.PathLike) -> Iterator[dict]:
    """Iterate the events of a JSONL log (torn tail line ignored)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except ValueError:
                continue  # torn final line from a killed run


def replay_events_into(
    registry: MetricRegistry, events: Iterable[Mapping[str, object]]
) -> MetricRegistry:
    """Rebuild metric state from ``metric`` snapshot events.

    Streaming events (``span``, ``window``) are already folded into the
    snapshot values by the producer, so only ``metric`` events replay.
    """
    for event in events:
        if event.get("event") != "metric":
            continue
        name = str(event["name"])
        labels = {str(k): str(v) for k, v in dict(event.get("labels", {})).items()}
        kind = event.get("type")
        if kind == "counter":
            registry.counter(name, **labels).inc(float(event["value"]))
        elif kind == "gauge":
            registry.gauge(name, **labels).set(float(event["value"]))
        elif kind == "histogram":
            histogram = registry.histogram(
                name, buckets=tuple(float(b) for b in event["buckets"]), **labels
            )
            counts = [int(c) for c in event["counts"]]
            if len(counts) != len(histogram.counts):
                raise TelemetryError(
                    f"histogram {name!r} snapshot has {len(counts)} buckets, "
                    f"registry has {len(histogram.counts)}"
                )
            for i, c in enumerate(counts):
                histogram.counts[i] += c
            histogram.sum += float(event["sum"])
            histogram.count += int(event["count"])
    return registry


# -- Prometheus text exposition ----------------------------------------


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _format_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(registry: MetricRegistry) -> str:
    """The registry in Prometheus text exposition format (0.0.4)."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for metric in registry:
        if isinstance(metric, Counter):
            kind = "counter"
        elif isinstance(metric, Gauge):
            kind = "gauge"
        elif isinstance(metric, Histogram):
            kind = "histogram"
        else:  # pragma: no cover - registry only stores the three types
            continue
        if metric.name not in seen_types:
            lines.append(f"# TYPE {metric.name} {kind}")
            seen_types.add(metric.name)
        if isinstance(metric, Histogram):
            for le, cumulative in metric.cumulative():
                le_text = "+Inf" if math.isinf(le) else _format_value(le)
                labels = _format_labels(metric.labels, f'le="{le_text}"')
                lines.append(f"{metric.name}_bucket{labels} {cumulative}")
            labels = _format_labels(metric.labels)
            lines.append(f"{metric.name}_sum{labels} {_format_value(metric.sum)}")
            lines.append(f"{metric.name}_count{labels} {metric.count}")
        else:
            labels = _format_labels(metric.labels)
            lines.append(f"{metric.name}{labels} {_format_value(metric.value)}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(registry: MetricRegistry, path: str | os.PathLike) -> None:
    """Atomically write the exposition file (never torn mid-scrape).

    Transient write errors are retried with backoff; a persistent
    failure is counted in ``repro_telemetry_write_errors_total`` before
    the :class:`~repro.errors.TelemetryError` surfaces, so the failure
    is visible in the metrics the *next* successful write exports.
    """
    from repro.governor.fsshim import fault_point
    from repro.governor.retry import retry_io

    path = str(path)
    tmp = f"{path}.tmp.{os.getpid()}"

    def _write() -> None:
        fault_point("telemetry.prometheus")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(render_prometheus(registry))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    try:
        retry_io("telemetry.prometheus", _write)
    except OSError as error:
        _count_write_error("prometheus")
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise TelemetryError(
            f"cannot write metrics file {path}: {error}"
        ) from error


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse exposition text into ``{sample_line_key: value}``.

    The key is the full sample name including its label string, so the
    round-trip tests (and the CI smoke job) can compare two expositions
    sample-for-sample without a real Prometheus parser.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        if not key:
            raise TelemetryError(f"unparseable exposition line: {line!r}")
        samples[key] = float(value)
    return samples
