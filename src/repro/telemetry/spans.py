"""Context-manager spans with monotonic clocks.

A span measures one phase of a run — a trace capture, one replayed
configuration, a checkpoint write, an audit pass — with
``time.perf_counter`` (monotonic, immune to wall-clock steps).  Spans
nest: the tracker keeps a stack, so a ``replay.point`` span opened
inside the ``replay`` phase records its parent and depth, and the
profile report can attribute every second of a run to the deepest
phase that owned it.

Closing a span does three things: appends an immutable
:class:`SpanRecord` to the tracker, folds the duration into the
registry (``repro_span_seconds_total`` / ``repro_span_calls_total``,
labelled by span name), and emits a ``span`` event to the JSONL sink if
one is attached.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.telemetry.registry import MetricRegistry


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One closed span: what ran, where it nested, and for how long."""

    name: str
    depth: int
    parent: str | None
    start: float  # perf_counter seconds at entry
    seconds: float


class SpanTracker:
    """The per-process span stack and the log of closed spans."""

    def __init__(
        self,
        registry: MetricRegistry,
        on_close: Callable[[SpanRecord], None] | None = None,
    ) -> None:
        self.registry = registry
        self.records: list[SpanRecord] = []
        self.on_close = on_close
        self._stack: list[str] = []

    @property
    def depth(self) -> int:
        return len(self._stack)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        depth = len(self._stack)
        parent = self._stack[-1] if self._stack else None
        self._stack.append(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            seconds = time.perf_counter() - start
            self._stack.pop()
            record = SpanRecord(
                name=name, depth=depth, parent=parent, start=start, seconds=seconds
            )
            self.records.append(record)
            self.registry.counter("repro_span_seconds_total", span=name).inc(seconds)
            self.registry.counter("repro_span_calls_total", span=name).inc()
            if self.on_close is not None:
                self.on_close(record)

    # -- aggregation helpers (the profile report's raw material) -------

    def total_seconds(self) -> float:
        """Wall time of the outermost spans (depth 0)."""
        return sum(r.seconds for r in self.records if r.depth == 0)

    def phase_seconds(self, depth: int = 1) -> dict[str, tuple[float, int]]:
        """``{name: (seconds, calls)}`` aggregated at one nesting depth.

        Depth-1 spans are the *phases* of a CLI run: direct children of
        the root span, mutually exclusive in time, so their durations
        are additive and comparable to the root's total.
        """
        out: dict[str, tuple[float, int]] = {}
        for record in self.records:
            if record.depth != depth:
                continue
            seconds, calls = out.get(record.name, (0.0, 0))
            out[record.name] = (seconds + record.seconds, calls + 1)
        return out

    def by_name(self) -> dict[str, tuple[float, int]]:
        """``{name: (seconds, calls)}`` over every span, any depth."""
        out: dict[str, tuple[float, int]] = {}
        for record in self.records:
            seconds, calls = out.get(record.name, (0.0, 0))
            out[record.name] = (seconds + record.seconds, calls + 1)
        return out
