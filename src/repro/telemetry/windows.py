"""The live 500 µs window stream: the CB host-pull, mirrored.

On the paper's platform a host computer polls the CB FPGA every 500 µs
and logs per-window cache statistics; the time-resolved MPKI curves in
the evaluation come from that stream, not from end-of-run totals.  This
module gives the reproduction the same tap: when telemetry is enabled,
every :class:`~repro.cache.sampling.WindowSampler` publishes each
window sample — the *same* object it appends to its own accumulator —
into the registry and the event log the moment the emulated clock
closes the window.

Per published window the stream updates

* ``repro_window_mpki{series=...}`` (gauge) — the window's MPKI;
* ``repro_window_bandwidth_bytes_per_second{series=...}`` (gauge) —
  demand bandwidth, ``accesses × line_size`` over the window's span of
  emulated time;
* ``repro_windows_total{series=...}`` (counter);

and appends the sample to a per-series list, so the full series a run
produced is available for the profile and is *by construction* equal,
element for element, to ``CoSimResult.samples``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.telemetry.registry import MetricRegistry


@dataclass
class WindowSeries:
    """One emulator run's stream of window samples."""

    label: str
    line_size: int
    frequency_hz: float
    samples: list = field(default_factory=list)

    def mpki_series(self) -> list[float]:
        return [sample.mpki for sample in self.samples]

    def bandwidth(self, sample) -> float:
        """Demand bandwidth of one window in bytes per emulated second."""
        if sample.cycles <= 0:
            return 0.0
        seconds = sample.cycles / self.frequency_hz
        return sample.accesses * self.line_size / seconds


class WindowStream:
    """Registry-backed collector of every live window series."""

    def __init__(
        self,
        registry: MetricRegistry,
        on_window: Callable[[WindowSeries, object], None] | None = None,
    ) -> None:
        self.registry = registry
        self.series: list[WindowSeries] = []
        self.on_window = on_window

    def open(
        self, label: str, line_size: int, frequency_hz: float
    ) -> Callable[[object], None]:
        """Start a new series; returns the per-sample publish callback.

        Repeated opens under one label (a size sweep re-running the same
        geometry) get distinct series; :meth:`latest` returns the newest.
        """
        series = WindowSeries(
            label=label, line_size=line_size, frequency_hz=frequency_hz
        )
        self.series.append(series)
        mpki_gauge = self.registry.gauge("repro_window_mpki", series=label)
        bandwidth_gauge = self.registry.gauge(
            "repro_window_bandwidth_bytes_per_second", series=label
        )
        windows_total = self.registry.counter("repro_windows_total", series=label)

        def publish(sample) -> None:
            series.samples.append(sample)
            mpki_gauge.set(sample.mpki)
            bandwidth_gauge.set(series.bandwidth(sample))
            windows_total.inc()
            if self.on_window is not None:
                self.on_window(series, sample)

        return publish

    def latest(self, label: str) -> WindowSeries | None:
        """The most recently opened series under ``label``."""
        for series in reversed(self.series):
            if series.label == label:
                return series
        return None

    def total_windows(self) -> int:
        return sum(len(series.samples) for series in self.series)
