"""Memory-trace infrastructure.

Everything the co-simulation platform consumes is a stream of memory
transactions.  This subpackage defines the record types
(:mod:`repro.trace.record`), stream combinators
(:mod:`repro.trace.stream`), vectorized synthetic access-pattern
generators (:mod:`repro.trace.generators`), the instrumentation layer
that lets the real data-mining kernels emit traces
(:mod:`repro.trace.instrument`), and trace-level statistics
(:mod:`repro.trace.stats`).
"""

from repro.trace.record import AccessKind, MemoryAccess, TraceChunk
from repro.trace.stream import (
    chunk_stream,
    concat,
    materialize,
    round_robin_interleave,
    split_by_core,
)
from repro.trace.instrument import MemoryArena, TraceRecorder, TracedArray

__all__ = [
    "AccessKind",
    "MemoryAccess",
    "TraceChunk",
    "chunk_stream",
    "concat",
    "materialize",
    "round_robin_interleave",
    "split_by_core",
    "MemoryArena",
    "TraceRecorder",
    "TracedArray",
]
