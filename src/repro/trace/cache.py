"""Content-addressed on-disk cache for captured trace artifacts.

The expensive half of the co-simulation path is everything *above* the
front-side bus: running the instrumented mining kernels (or the
synthetic generators), DEX-scheduling their per-thread streams, and
encoding the Section 3.3 message protocol.  All of that is a pure
function of the workload identity and the platform parameters, so its
output — the replay log :mod:`repro.harness.replay` captures — can be
cached on disk and reused across processes and invocations.

This module provides the storage layer only; it knows nothing about
replay logs.  An *entry* is a JSON-able metadata dict plus a set of
named numpy arrays:

* the key is the SHA-256 of the canonical JSON of the caller's key
  fields (workload name, trace source, model parameters, thread count,
  seed, access count, scheduling quantum, ...) — content addressing
  means invalidation is automatic: change any field and you address a
  different entry;
* each entry is a directory ``root/ab/cdef.../`` holding one ``.npy``
  file per array plus ``manifest.json`` recording dtype, shape, byte
  size, and a CRC-32 of every array file for integrity checking — the
  checksum catches in-place bit corruption that leaves sizes and
  headers intact, which is exactly what a flaky disk or an injected
  fault produces;
* writers build the entry in a private temp directory and publish it
  with one atomic :func:`os.rename`, so concurrent ``--jobs`` workers
  (or concurrent CI shards sharing a cache volume) can race on the same
  key without ever exposing a half-written entry — the losers simply
  discard their copy;
* readers validate the manifest against the files and treat *any*
  damage (truncated manifest, missing or short array file, dtype or
  shape drift, checksum mismatch) as a miss, so a corrupted cache
  regenerates instead of crashing; the damaged entry is *quarantined*
  to a sibling ``....corrupt`` directory rather than deleted, so the
  evidence survives for diagnosis while the key becomes free for a
  clean republish.

Loads memory-map the arrays by default, so fanning one captured log out
to N worker processes shares pages instead of duplicating the log.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import shutil
import uuid
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from repro.errors import ConfigurationError, TraceError
from repro.governor.budget import active_governor
from repro.governor.fsshim import fault_point
from repro.governor.retry import retry_io
from repro.telemetry import runtime as telemetry

#: Manifest file name inside every entry directory.
MANIFEST_NAME = "manifest.json"

#: Manifest schema version; bump on incompatible layout changes (old
#: entries then simply miss and regenerate).  v2 added per-array CRC-32
#: checksums; v3 added the manifest's own CRC-32, verified before any
#: array file is even stat'ed, closing the window where a concurrently
#: quarantined (or torn) manifest steered a reader at the wrong files.
FORMAT_VERSION = 3

#: Suffix appended to a damaged entry's directory when it is moved
#: aside instead of deleted.
QUARANTINE_SUFFIX = ".corrupt"

#: Environment variable consulted when no explicit directory is given.
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"

#: Values (case-insensitive) that disable the cache when passed as a
#: ``--trace-cache`` argument or via :data:`TRACE_CACHE_ENV`.
OFF_VALUES = frozenset({"", "0", "off", "none", "disabled"})

#: Directory (under the cache root) holding reader pins.  A pin marks a
#: key as in-use for the validate-and-mmap window so the quota evictor
#: (:mod:`repro.governor.gc`) will not yank the entry mid-read.
PINS_DIR = ".pins"

#: How many single-entry evictions one :meth:`TraceCache.store` may
#: trigger while fighting ENOSPC before giving up and going cache-off.
ENOSPC_EVICT_LIMIT = 8


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists but is not ours (or an exotic platform)
    return True


@contextmanager
def pin_entry(root: Path, key: str) -> Iterator[None]:
    """Pin ``key`` against eviction for the duration of the block.

    The pin is a file in ``root/.pins`` whose name carries the key and
    the owning pid; the evictor skips pinned keys and deletes pins
    whose pid is dead (a reader that crashed mid-load must not pin its
    entry forever).  Pinning is best-effort — on a read-only cache
    volume the pin silently does not happen, which only widens the
    (already survivable) reader-vs-evictor race back to what it was.
    """
    pin: Path | None = None
    try:
        pins = root / PINS_DIR
        pins.mkdir(exist_ok=True)
        pin = pins / f"{key}.{os.getpid()}.{uuid.uuid4().hex[:8]}.pin"
        pin.write_text(str(os.getpid()), encoding="utf-8")
    except OSError:
        pin = None
    try:
        yield
    finally:
        if pin is not None:
            try:
                pin.unlink()
            except OSError:
                pass


def pinned_keys(root: Path) -> set[str]:
    """Keys currently pinned by a *live* process; stale pins are reaped.

    A pin whose recorded pid no longer exists belongs to a crashed
    reader — it is deleted on sight so one dead process cannot shield
    an entry from eviction forever.
    """
    keys: set[str] = set()
    try:
        pins = list((root / PINS_DIR).iterdir())
    except OSError:
        return keys
    for pin in pins:
        parts = pin.name.split(".")
        if len(parts) < 4 or parts[-1] != "pin":
            continue
        try:
            pid = int(parts[-3])
        except ValueError:
            continue
        if _pid_alive(pid):
            keys.add(parts[0])
        else:
            try:
                pin.unlink()
            except OSError:
                pass
    return keys


@dataclass
class TraceCacheStats:
    """Observable counters for one :class:`TraceCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    quarantined: int = 0
    #: Governance counters (PR 9).  Kept out of :meth:`describe` unless
    #: nonzero so un-governed runs print byte-identical stats lines.
    evictions: int = 0
    enospc: int = 0
    gc_quarantined: int = 0
    gc_orphans: int = 0
    gc_checkpoints: int = 0

    def describe(self) -> str:
        line = (
            f"hits={self.hits} misses={self.misses} "
            f"stores={self.stores} corrupt={self.corrupt} "
            f"quarantined={self.quarantined}"
        )
        extras = " ".join(
            f"{name}={getattr(self, name)}"
            for name in (
                "evictions",
                "enospc",
                "gc_quarantined",
                "gc_orphans",
                "gc_checkpoints",
            )
            if getattr(self, name)
        )
        return f"{line} {extras}" if extras else line

    def count(self, event: str) -> None:
        """Bump one counter, mirroring it into the telemetry registry.

        ``event`` is one of the field names above.  The attribute stays
        the source the CLI's ``trace cache:`` line prints; the mirrored
        ``repro_trace_cache_events_total{event=}`` counter is what the
        profile's hit-rate readout consumes.
        """
        setattr(self, event, getattr(self, event) + 1)
        telemetry.counter("repro_trace_cache_events_total", event=event).inc()


def _file_crc32(path: Path) -> int:
    """Streaming CRC-32 of one file (small constant memory)."""
    crc = 0
    with open(path, "rb") as handle:
        while chunk := handle.read(1 << 20):
            crc = zlib.crc32(chunk, crc)
    return crc


def _manifest_crc(manifest: Mapping[str, object]) -> int:
    """Self-checksum of a manifest: CRC-32 over its canonical JSON
    (excluding the ``crc`` field itself)."""
    body = {name: value for name, value in manifest.items() if name != "crc"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


def _read_entry(
    entry: Path, mmap: bool, expect_key: str | None
) -> tuple[dict, dict[str, np.ndarray]]:
    """Validate and load one entry directory; raises on any damage.

    The manifest's own CRC-32 is verified *first* — before any array
    file is stat'ed, checksummed, or memory-mapped — so a torn or
    tampered manifest can never steer the reader at the wrong files.
    """
    with open(entry / MANIFEST_NAME, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("crc") != _manifest_crc(manifest):
        raise ValueError("manifest self-checksum mismatch")
    if manifest.get("format") != FORMAT_VERSION:
        raise ValueError("manifest schema mismatch")
    if expect_key is not None and manifest.get("key") != expect_key:
        raise ValueError("manifest key mismatch")
    arrays: dict[str, np.ndarray] = {}
    for name, spec in manifest["arrays"].items():
        path = entry / spec["file"]
        if path.stat().st_size != spec["file_bytes"]:
            raise ValueError(f"array file {name!r} size mismatch")
        if _file_crc32(path) != spec["crc32"]:
            raise ValueError(f"array file {name!r} checksum mismatch")
        array = np.load(path, mmap_mode="r" if mmap else None)
        if str(array.dtype) != spec["dtype"] or list(array.shape) != list(
            spec["shape"]
        ):
            raise ValueError(f"array {name!r} header mismatch")
        arrays[name] = array
    return manifest["meta"], arrays


def load_validated_entry(
    entry_dir: str | os.PathLike, mmap: bool = True
) -> tuple[dict, dict[str, np.ndarray]]:
    """Validate and load an entry by directory path (no cache object).

    The sweep-worker path: fan-out workers receive an entry *path* and
    memory-map it directly, without constructing a :class:`TraceCache`.
    Runs the identical validation :meth:`TraceCache.load` runs —
    manifest self-CRC first, then per-array size/checksum/header — and
    raises :class:`~repro.errors.TraceError` on any damage instead of
    silently mapping a concurrently quarantined or corrupted entry.
    """
    entry = Path(entry_dir)
    try:
        return _read_entry(entry, mmap, expect_key=None)
    except (OSError, ValueError, KeyError, TypeError) as error:
        raise TraceError(
            f"trace-cache entry {entry} failed validation: {error}"
        ) from error


def cache_key(fields: Mapping[str, object]) -> str:
    """Content address of a key-field mapping (hex SHA-256).

    Fields must be JSON-serializable; canonical form (sorted keys, no
    whitespace) makes the address independent of insertion order.
    """
    canonical = json.dumps(dict(fields), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class TraceCache:
    """A content-addressed store of (metadata, numpy arrays) entries."""

    def __init__(
        self, root: str | os.PathLike, disk_quota: int | None = None
    ) -> None:
        if disk_quota is not None and disk_quota <= 0:
            raise ConfigurationError(
                f"trace-cache disk quota must be positive, got {disk_quota}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = TraceCacheStats()
        #: Bytes the cache may occupy; stores over it trigger LRU
        #: eviction (:func:`repro.governor.gc.enforce_quota`).
        self.disk_quota = disk_quota
        #: Latched final fallback: after persistent ENOSPC with nothing
        #: left to evict, stores become no-ops (loads keep working — a
        #: full disk does not invalidate what is already cached).
        self.off = False

    # -- addressing ---------------------------------------------------

    def entry_dir(self, key: str) -> Path:
        """Directory an entry with ``key`` lives in (two-level fan-out)."""
        if len(key) < 3:
            raise ConfigurationError(f"trace-cache key too short: {key!r}")
        return self.root / key[:2] / key[2:]

    def contains(self, key: str) -> bool:
        """Whether a (superficially) complete entry exists for ``key``."""
        return (self.entry_dir(key) / MANIFEST_NAME).is_file()

    # -- reading ------------------------------------------------------

    def load(
        self, key: str, mmap: bool = True
    ) -> tuple[dict, dict[str, np.ndarray]] | None:
        """Return ``(meta, arrays)`` for ``key``, or None on miss.

        Any integrity failure — unreadable or truncated manifest, wrong
        schema, missing array file, byte-size/dtype/shape mismatch, or a
        CRC-32 checksum miscompare — is reported as a miss (and counted
        in ``stats.corrupt``) so callers regenerate rather than crash on
        a damaged cache.  The damaged entry is quarantined to
        ``<entry>.corrupt`` (counted in ``stats.quarantined``), keeping
        the evidence while freeing the key for a clean republish.
        """
        entry = self.entry_dir(key)
        try:
            with pin_entry(self.root, key):
                if not (entry / MANIFEST_NAME).is_file():
                    # No manifest means no entry at all — a clean miss,
                    # not damage (the manifest is written last on store).
                    self.stats.count("misses")
                    return None

                def _attempt() -> tuple[dict, dict[str, np.ndarray]]:
                    fault_point("trace-cache.load")
                    return _read_entry(entry, mmap, expect_key=key)

                meta, arrays = retry_io("trace-cache.load", _attempt)
        except FileNotFoundError as error:
            if not (entry / MANIFEST_NAME).is_file():
                # The whole entry vanished between the manifest check
                # and the read: a concurrent evictor won the race
                # before our pin landed.  A clean miss — regenerate,
                # don't count corruption.
                self.stats.count("misses")
                return None
            # Manifest still present but an array file is gone: that
            # is damage, handled by the quarantine path below.
            self.stats.count("corrupt")
            self.stats.count("misses")
            self._quarantine(entry)
            del error
            return None
        except (OSError, ValueError, KeyError, TypeError) as error:
            # A present-but-damaged entry: count it, move it aside so
            # the next store can republish cleanly, and miss.
            self.stats.count("corrupt")
            self.stats.count("misses")
            self._quarantine(entry)
            del error
            return None
        self.stats.count("hits")
        try:
            # Refresh the LRU stamp: entry-dir mtime is the eviction
            # rank, so a hit marks the entry recently used.
            os.utime(entry)
        except OSError:
            pass
        return meta, arrays

    def _quarantine(self, entry: Path) -> None:
        """Move a damaged entry to ``<entry>.corrupt`` (best effort).

        A previous quarantine for the same key is replaced — one
        specimen of the damage is enough.  If the move itself fails the
        wreck is deleted instead, so the key always ends up free.
        """
        target = entry.with_name(entry.name + QUARANTINE_SUFFIX)
        try:
            shutil.rmtree(target, ignore_errors=True)
            os.rename(entry, target)
            self.stats.count("quarantined")
        except OSError:
            shutil.rmtree(entry, ignore_errors=True)

    # -- writing ------------------------------------------------------

    def store(
        self, key: str, meta: Mapping[str, object], arrays: Mapping[str, np.ndarray]
    ) -> Path | None:
        """Publish an entry for ``key``; returns its directory.

        Safe under concurrent writers: the entry is assembled in a
        process-private temp directory and published with one atomic
        rename.  If another writer published the same key first, this
        writer's copy is discarded (content addressing makes the two
        copies interchangeable).

        Degrades instead of crashing on a full disk: ENOSPC triggers
        LRU eviction of one entry and a retry (up to
        :data:`ENOSPC_EVICT_LIMIT` times); when nothing evictable
        remains the cache latches *off* for stores — this call and all
        later ones return None, loads keep serving what is already
        cached, and a governor degradation record marks the fallback.
        Transient write errors (EIO and friends) are retried with
        backoff before any of that.
        """
        if self.off:
            return None
        from repro.governor import gc as governor_gc

        evictions = 0
        while True:
            try:
                final = retry_io(
                    "trace-cache.store", lambda: self._store_once(key, meta, arrays)
                )
                break
            except OSError as error:
                if error.errno != errno.ENOSPC:
                    raise
                self.stats.count("enospc")
                evictions += 1
                if evictions <= ENOSPC_EVICT_LIMIT and governor_gc.evict_for_enospc(
                    self, protect={key}
                ):
                    continue
                # Nothing left to evict (or we are thrashing): go
                # cache-off for stores and record the degradation.
                self.off = True
                governor = active_governor()
                if governor is not None:
                    governor.record(
                        "cache-off",
                        detail=f"persistent ENOSPC storing {key[:12]}…; "
                        "trace-cache stores disabled for this run",
                    )
                return None
        self.stats.count("stores")
        if self.disk_quota is not None:
            governor_gc.enforce_quota(self, self.disk_quota, protect={key})
        return final

    def _store_once(
        self, key: str, meta: Mapping[str, object], arrays: Mapping[str, np.ndarray]
    ) -> Path:
        """One build-and-publish attempt (the pre-governor store body)."""
        final = self.entry_dir(key)
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.root / f".tmp-{key[:8]}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        tmp.mkdir()
        try:
            fault_point("trace-cache.store")
            specs: dict[str, dict] = {}
            for name, array in arrays.items():
                file_name = f"{name}.npy"
                array = np.ascontiguousarray(array)
                np.save(tmp / file_name, array)
                specs[name] = {
                    "file": file_name,
                    "dtype": str(array.dtype),
                    "shape": list(array.shape),
                    "file_bytes": (tmp / file_name).stat().st_size,
                    "crc32": _file_crc32(tmp / file_name),
                }
            manifest = {
                "format": FORMAT_VERSION,
                "key": key,
                "meta": dict(meta),
                "arrays": specs,
            }
            manifest["crc"] = _manifest_crc(manifest)
            # Manifest last: its presence marks the entry complete.
            with open(tmp / MANIFEST_NAME, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, sort_keys=True)
            try:
                os.rename(tmp, final)
            except OSError:
                # Lost the publish race (or a stale entry is in the
                # way).  If a valid entry exists we are done; otherwise
                # clear the wreck and retry once.
                if not (final / MANIFEST_NAME).is_file():
                    shutil.rmtree(final, ignore_errors=True)
                    os.rename(tmp, final)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        return final


def resolve_trace_cache(
    directory: str | None = None,
    environ: Mapping[str, str] | None = None,
    disk_quota: int | None = None,
) -> TraceCache | None:
    """Resolve the trace-cache knob: explicit flag, else environment.

    ``directory`` comes from ``--trace-cache DIR``; when None, the
    :data:`TRACE_CACHE_ENV` variable is consulted.  The off switch —
    any value in :data:`OFF_VALUES` — returns None, as does an unset
    knob, so the cache is strictly opt-in.  ``disk_quota`` (from
    ``--disk-quota``) arms LRU eviction on the resolved cache.
    """
    if directory is None:
        env = os.environ if environ is None else environ
        directory = env.get(TRACE_CACHE_ENV)
    if directory is None or directory.strip().lower() in OFF_VALUES:
        return None
    return TraceCache(directory, disk_quota=disk_quota)
