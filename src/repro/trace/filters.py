"""Trace filters: deriving bus traffic from processor-side traces.

On the physical platform Dragonhead never sees the processor's own
cache hits — the logic-analyzer interface taps the front-side bus, which
carries only the traffic that missed the on-die caches.  The
instrumented kernels, by contrast, record *every* load and store.  This
module bridges the two: :func:`l1_filter` replays a trace through a
private filter cache per core and emits only the misses, which is
exactly the transformation the host hardware performs.

Downstream miss counts are *nearly* unchanged by the filter: the
accesses it removes are ones that would hit any larger LRU cache too.
They are not exactly unchanged — removing a hit also removes a recency
refresh, the classical "filtered LRU" effect that motivates dedicated
L2 replacement policies — but the residual is a fraction of a percent
on these workloads, which ``tests/test_trace_filters.py`` pins down.
"""

from __future__ import annotations

import numpy as np

from repro.cache.cache import CacheConfig, SetAssociativeCache
from repro.trace.record import AccessKind, TraceChunk
from repro.units import KB


def l1_filter(
    chunk: TraceChunk,
    l1_config: CacheConfig | None = None,
) -> TraceChunk:
    """Return only the accesses that miss per-core private L1 caches.

    Cores are taken from the chunk's core tags; each core gets its own
    filter cache (write-through no-write-allocate for writes, matching
    :class:`~repro.cache.hierarchy.CacheHierarchy`): writes always
    propagate to the bus, reads propagate only on L1 misses.
    """
    config = l1_config or CacheConfig(size=32 * KB, line_size=64, associativity=8, name="L1F")
    caches: dict[int, SetAssociativeCache] = {}
    keep = np.zeros(len(chunk), dtype=bool)
    addresses = chunk.addresses
    kinds = chunk.kinds
    cores = chunk.cores
    write_kind = int(AccessKind.WRITE)
    for i in range(len(chunk)):
        core = int(cores[i])
        cache = caches.get(core)
        if cache is None:
            cache = SetAssociativeCache(config)
            caches[core] = cache
        address = int(addresses[i])
        if int(kinds[i]) == write_kind:
            # Write-through: the write always appears on the bus; it
            # refreshes the L1 only if the line is already resident.
            line = address >> cache._line_shift
            if cache.contains_line(line):
                cache.access_line(line, AccessKind.WRITE, core)
            keep[i] = True
        else:
            hit = cache.access(address, AccessKind.READ, core)
            keep[i] = not hit
    return TraceChunk(
        chunk.addresses[keep], chunk.kinds[keep], chunk.cores[keep], chunk.pcs[keep]
    )


def address_window(chunk: TraceChunk, low: int, high: int) -> TraceChunk:
    """Keep only accesses whose address lies in ``[low, high)``.

    Useful for isolating one data structure's traffic from a kernel
    trace (the arena hands each structure a known range).
    """
    mask = (chunk.addresses >= np.uint64(low)) & (chunk.addresses < np.uint64(high))
    return TraceChunk(
        chunk.addresses[mask], chunk.kinds[mask], chunk.cores[mask], chunk.pcs[mask]
    )


def reads_only(chunk: TraceChunk) -> TraceChunk:
    """Keep only read transactions."""
    mask = chunk.kinds == int(AccessKind.READ)
    return TraceChunk(
        chunk.addresses[mask], chunk.kinds[mask], chunk.cores[mask], chunk.pcs[mask]
    )
