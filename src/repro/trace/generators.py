"""Vectorized synthetic memory-access-pattern generators.

Each generator produces a :class:`~repro.trace.record.TraceChunk` for one
of the canonical access patterns that the workload memory models are
built from (see :mod:`repro.workloads.models`):

* sequential / strided scans — streaming array traversals (SHOT's frame
  arrays, MDS's compressed-matrix sweeps, PLSA's DP wavefronts);
* cyclic scans — repeated passes over one region (SVM-RFE's kernel
  matrix re-reads);
* uniform and Zipf random accesses — hash/tree probing (FIMI's FP-tree,
  SNP's scattered genotype lookups);
* pointer chases — linked traversals with no spatial locality.

All generators are deterministic given a :class:`numpy.random.Generator`
and are vectorized so that traces of tens of millions of transactions
remain cheap to produce.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.trace.record import AccessKind, TraceChunk


@dataclass(frozen=True, slots=True)
class Region:
    """A contiguous address-space region that a pattern operates on."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise TraceError(f"region size must be positive, got {self.size}")
        if self.base < 0:
            raise TraceError(f"region base must be non-negative, got {self.base}")

    @property
    def end(self) -> int:
        return self.base + self.size


def _with_kinds(
    addresses: np.ndarray,
    write_fraction: float,
    rng: np.random.Generator,
    pc: int,
) -> TraceChunk:
    if not 0.0 <= write_fraction <= 1.0:
        raise TraceError(f"write_fraction must be in [0, 1], got {write_fraction}")
    n = len(addresses)
    if write_fraction == 0.0:
        kinds = np.zeros(n, dtype=np.uint8)
    elif write_fraction == 1.0:
        kinds = np.full(n, int(AccessKind.WRITE), dtype=np.uint8)
    else:
        kinds = (rng.random(n) < write_fraction).astype(np.uint8)
    return TraceChunk(addresses, kinds, 0, pc)


def sequential_scan(
    region: Region,
    count: int,
    stride: int = 8,
    write_fraction: float = 0.0,
    rng: np.random.Generator | None = None,
    pc: int = 0,
    backward: bool = False,
) -> TraceChunk:
    """Scan ``region`` with a constant stride, wrapping at the region end.

    This is the streaming pattern: ``count`` accesses at ``base``,
    ``base+stride``, ... modulo the region size.  With ``backward`` the
    scan runs in decreasing-address order, which the paper notes some
    workloads exhibit (and which stride prefetchers must also detect).
    """
    if stride <= 0:
        raise TraceError(f"stride must be positive, got {stride}")
    if count < 0:
        raise TraceError(f"count must be non-negative, got {count}")
    rng = rng or np.random.default_rng(0)
    offsets = (np.arange(count, dtype=np.uint64) * np.uint64(stride)) % np.uint64(region.size)
    if backward:
        offsets = (np.uint64(region.size) - np.uint64(stride) - offsets) % np.uint64(region.size)
    addresses = np.uint64(region.base) + offsets
    return _with_kinds(addresses, write_fraction, rng, pc)


def cyclic_scan(
    region: Region,
    passes: int,
    stride: int = 8,
    write_fraction: float = 0.0,
    rng: np.random.Generator | None = None,
    pc: int = 0,
) -> TraceChunk:
    """Perform ``passes`` complete in-order traversals of ``region``.

    The reuse behaviour of a cyclic scan is the sharpest possible: under
    LRU every non-cold access has stack distance exactly equal to the
    region footprint, so the miss-rate-versus-capacity curve is a step.
    """
    if passes <= 0:
        raise TraceError(f"passes must be positive, got {passes}")
    per_pass = max(1, region.size // stride)
    return sequential_scan(
        region, per_pass * passes, stride=stride, write_fraction=write_fraction, rng=rng, pc=pc
    )


def uniform_random(
    region: Region,
    count: int,
    granule: int = 8,
    write_fraction: float = 0.0,
    rng: np.random.Generator | None = None,
    pc: int = 0,
) -> TraceChunk:
    """Access ``count`` uniformly random ``granule``-aligned addresses."""
    if granule <= 0:
        raise TraceError(f"granule must be positive, got {granule}")
    rng = rng or np.random.default_rng(0)
    slots = max(1, region.size // granule)
    picks = rng.integers(0, slots, size=count, dtype=np.uint64)
    addresses = np.uint64(region.base) + picks * np.uint64(granule)
    return _with_kinds(addresses, write_fraction, rng, pc)


def zipf_random(
    region: Region,
    count: int,
    alpha: float = 1.1,
    granule: int = 8,
    write_fraction: float = 0.0,
    rng: np.random.Generator | None = None,
    pc: int = 0,
) -> TraceChunk:
    """Access Zipf-distributed ``granule``-aligned addresses in ``region``.

    Models skewed structures such as FP-tree upper levels, where a few
    hot nodes absorb most probes.  ``alpha`` is the Zipf exponent; the
    rank-to-address mapping is a fixed pseudorandom permutation so hot
    items are scattered through the region rather than clustered.
    """
    if alpha <= 0:
        raise TraceError(f"alpha must be positive, got {alpha}")
    rng = rng or np.random.default_rng(0)
    slots = max(1, region.size // granule)
    ranks = np.arange(1, slots + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    weights /= weights.sum()
    picks = rng.choice(slots, size=count, p=weights).astype(np.uint64)
    # Scatter ranks over the region with a multiplicative hash so the
    # hottest addresses are not all in one corner of the footprint.
    scattered = (picks * np.uint64(2654435761)) % np.uint64(slots)
    addresses = np.uint64(region.base) + scattered * np.uint64(granule)
    return _with_kinds(addresses, write_fraction, rng, pc)


def pointer_chase(
    region: Region,
    count: int,
    node_size: int = 64,
    write_fraction: float = 0.0,
    rng: np.random.Generator | None = None,
    pc: int = 0,
) -> TraceChunk:
    """Follow a random cyclic permutation of nodes through ``region``.

    Every access depends on the previous one and successive nodes are
    far apart, giving no spatial locality at all — the pathological case
    for large cache lines.
    """
    rng = rng or np.random.default_rng(0)
    nodes = max(2, region.size // node_size)
    order = rng.permutation(nodes).astype(np.uint64)
    reps = int(np.ceil(count / nodes))
    walk = np.tile(order, reps)[:count]
    addresses = np.uint64(region.base) + walk * np.uint64(node_size)
    return _with_kinds(addresses, write_fraction, rng, pc)


def interleave_mix(
    chunks: list[TraceChunk],
    weights: list[float],
    count: int,
    rng: np.random.Generator | None = None,
) -> TraceChunk:
    """Statistically interleave several pattern chunks.

    Draws ``count`` transactions, picking the source chunk of each draw
    with the given weights and consuming each source in its own order.
    This is how a phase that mixes (say) a streaming scan with random
    table probes is realized as a single trace.
    """
    if len(chunks) != len(weights):
        raise TraceError("chunks and weights must have equal length")
    if not chunks:
        return TraceChunk.empty()
    rng = rng or np.random.default_rng(0)
    w = np.asarray(weights, dtype=np.float64)
    if np.any(w < 0) or w.sum() <= 0:
        raise TraceError("weights must be non-negative and sum to a positive value")
    w = w / w.sum()
    source = rng.choice(len(chunks), size=count, p=w)
    cursors = np.zeros(len(chunks), dtype=np.int64)
    out_addr = np.empty(count, dtype=np.uint64)
    out_kind = np.empty(count, dtype=np.uint8)
    out_pc = np.empty(count, dtype=np.uint64)
    for idx, chunk in enumerate(chunks):
        mask = source == idx
        n = int(mask.sum())
        if n == 0:
            continue
        if len(chunk) == 0:
            raise TraceError("cannot draw from an empty chunk")
        positions = np.arange(n, dtype=np.int64) % len(chunk)
        out_addr[mask] = chunk.addresses[positions]
        out_kind[mask] = chunk.kinds[positions]
        out_pc[mask] = chunk.pcs[positions]
        cursors[idx] = n
    return TraceChunk(out_addr, out_kind, 0, out_pc)
