"""Instrumentation layer: real kernels emitting real traces.

The paper's platform observes the *actual* memory transactions of the
workloads because the guest code runs natively and Dragonhead snoops the
bus.  Our analog: the data-mining kernels in :mod:`repro.mining` operate
on :class:`TracedArray` buffers allocated from a :class:`MemoryArena`;
every element read/write and every bulk slice operation is recorded into
a :class:`TraceRecorder`, producing the exact address trace the kernel
induces (at the reduced problem scales that pure Python can execute).

This is what grounds the synthetic memory models: tests compare cache
statistics of instrumented-kernel traces against the models'
predictions at matching scales.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import TraceError
from repro.trace.record import AccessKind, TraceChunk

_CHUNK = 262144


class TraceRecorder:
    """Accumulates recorded accesses into packed numpy chunks."""

    def __init__(self) -> None:
        self._addr: list[int] = []
        self._kind: list[int] = []
        self._pc: list[int] = []
        self._chunks: list[TraceChunk] = []
        self.instructions: int = 0

    def record(self, address: int, kind: AccessKind, pc: int = 0) -> None:
        """Record one transaction."""
        self._addr.append(address)
        self._kind.append(int(kind))
        self._pc.append(pc)
        if len(self._addr) >= _CHUNK:
            self._flush()

    def record_range(
        self, base: int, count: int, stride: int, kind: AccessKind, pc: int = 0
    ) -> None:
        """Record a strided range of transactions (used by bulk slice ops)."""
        if count <= 0:
            return
        self._flush()
        addresses = np.uint64(base) + np.arange(count, dtype=np.uint64) * np.uint64(stride)
        kinds = np.full(count, int(kind), dtype=np.uint8)
        self._chunks.append(TraceChunk(addresses, kinds, 0, pc))

    def retire(self, instructions: int = 1) -> None:
        """Account non-memory instructions executed by the kernel.

        Memory transactions are counted as one instruction each
        automatically; kernels call this for the surrounding arithmetic
        and control so instruction-normalized statistics (MPKI) have a
        denominator.
        """
        self.instructions += instructions

    def _flush(self) -> None:
        if self._addr:
            self._chunks.append(
                TraceChunk(self._addr, self._kind, 0, self._pc)
            )
            self._addr = []
            self._kind = []
            self._pc = []

    @property
    def access_count(self) -> int:
        return sum(len(c) for c in self._chunks) + len(self._addr)

    @property
    def instruction_count(self) -> int:
        """Total instructions: explicit retires plus one per memory access."""
        return self.instructions + self.access_count

    def trace(self) -> TraceChunk:
        """Return everything recorded so far as one chunk."""
        self._flush()
        return TraceChunk.concatenate(self._chunks)

    def stream(self) -> Iterator[TraceChunk]:
        """Yield the recorded chunks in order."""
        self._flush()
        yield from self._chunks


class MemoryArena:
    """A toy virtual address space that hands out disjoint buffer ranges.

    Buffers are aligned to 4 KB pages, mimicking an allocator, so traces
    from different data structures never alias.
    """

    PAGE = 4096

    def __init__(self, base: int = 0x1000_0000) -> None:
        self._next = base

    def allocate(self, size_bytes: int) -> int:
        """Reserve ``size_bytes`` and return the base address."""
        if size_bytes <= 0:
            raise TraceError(f"allocation size must be positive, got {size_bytes}")
        base = self._next
        pages = -(-size_bytes // self.PAGE)
        self._next += pages * self.PAGE
        return base

    def array(
        self,
        recorder: TraceRecorder,
        shape: int | tuple[int, ...],
        dtype: str | np.dtype = np.float64,
        pc: int = 0,
    ) -> "TracedArray":
        """Allocate and wrap a numpy array whose accesses are recorded."""
        data = np.zeros(shape, dtype=dtype)
        return TracedArray(data, recorder, self.allocate(data.nbytes), pc=pc)

    def wrap(self, recorder: TraceRecorder, data: np.ndarray, pc: int = 0) -> "TracedArray":
        """Wrap an existing array, allocating it an address range."""
        return TracedArray(data, recorder, self.allocate(data.nbytes), pc=pc)


class TracedArray:
    """A numpy array wrapper that records every access it serves.

    Scalar indexing records a single transaction at the element's
    address; slice reads/writes record the whole strided range in one
    vectorized call, so bulk operations stay cheap.  Only 1-D and 2-D
    row-major arrays are supported — enough for the mining kernels.
    """

    __slots__ = ("data", "recorder", "base", "pc")

    def __init__(
        self, data: np.ndarray, recorder: TraceRecorder, base: int, pc: int = 0
    ) -> None:
        if data.ndim not in (1, 2):
            raise TraceError(f"TracedArray supports 1-D/2-D arrays, got ndim={data.ndim}")
        if not data.flags.c_contiguous:
            data = np.ascontiguousarray(data)
        self.data = data
        self.recorder = recorder
        self.base = base
        self.pc = pc

    # -- address arithmetic -------------------------------------------

    def _element_address(self, index: int | tuple[int, ...]) -> int:
        itemsize = self.data.itemsize
        if self.data.ndim == 1:
            i = int(index) if not isinstance(index, tuple) else int(index[0])
            if i < 0:
                i += self.data.shape[0]
            return self.base + i * itemsize
        if not isinstance(index, tuple) or len(index) != 2:
            raise TraceError("2-D TracedArray requires (row, col) indexing")
        r, c = int(index[0]), int(index[1])
        if r < 0:
            r += self.data.shape[0]
        if c < 0:
            c += self.data.shape[1]
        return self.base + (r * self.data.shape[1] + c) * itemsize

    # -- scalar access -------------------------------------------------

    def __getitem__(self, index):
        if isinstance(index, slice) or (
            isinstance(index, tuple) and any(isinstance(i, slice) for i in index)
        ):
            return self._read_slice(index)
        self.recorder.record(self._element_address(index), AccessKind.READ, self.pc)
        return self.data[index]

    def __setitem__(self, index, value) -> None:
        if isinstance(index, slice) or (
            isinstance(index, tuple) and any(isinstance(i, slice) for i in index)
        ):
            self._write_slice(index, value)
            return
        self.recorder.record(self._element_address(index), AccessKind.WRITE, self.pc)
        self.data[index] = value

    def __len__(self) -> int:
        return len(self.data)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    # -- bulk access ----------------------------------------------------

    def _slice_range(self, index) -> tuple[int, int, int]:
        """Resolve a slice to (base address, element count, stride)."""
        itemsize = self.data.itemsize
        if self.data.ndim == 1:
            sl = index if isinstance(index, slice) else index[0]
            start, stop, step = sl.indices(self.data.shape[0])
            count = max(0, (stop - start + (step - (1 if step > 0 else -1))) // step)
            return self.base + start * itemsize, count, step * itemsize
        # 2-D: support row slices a[r, :] and column-contiguous a[r, c0:c1]
        if isinstance(index, tuple) and len(index) == 2:
            r, cs = index
            if isinstance(r, (int, np.integer)) and isinstance(cs, slice):
                start, stop, step = cs.indices(self.data.shape[1])
                count = max(0, (stop - start + (step - (1 if step > 0 else -1))) // step)
                row_base = self.base + int(r) * self.data.shape[1] * itemsize
                return row_base + start * itemsize, count, step * itemsize
            if isinstance(r, slice) and isinstance(cs, (int, np.integer)):
                start, stop, step = r.indices(self.data.shape[0])
                count = max(0, (stop - start + (step - (1 if step > 0 else -1))) // step)
                col_base = self.base + int(cs) * itemsize
                row_stride = self.data.shape[1] * itemsize
                return col_base + start * row_stride, count, step * row_stride
        raise TraceError(f"unsupported traced slice: {index!r}")

    def _read_slice(self, index):
        base, count, stride = self._slice_range(index)
        self.recorder.record_range(base, count, stride, AccessKind.READ, self.pc)
        return self.data[index]

    def _write_slice(self, index, value) -> None:
        base, count, stride = self._slice_range(index)
        self.recorder.record_range(base, count, stride, AccessKind.WRITE, self.pc)
        self.data[index] = value

    # -- whole-array helpers --------------------------------------------

    def scan_read(self) -> np.ndarray:
        """Record a full sequential read of the array and return the data."""
        self.recorder.record_range(
            self.base, self.data.size, self.data.itemsize, AccessKind.READ, self.pc
        )
        return self.data

    def scan_write(self, values: np.ndarray | float) -> None:
        """Record a full sequential write of the array and store ``values``."""
        self.recorder.record_range(
            self.base, self.data.size, self.data.itemsize, AccessKind.WRITE, self.pc
        )
        self.data[...] = values

    def gather(self, indices: Sequence[int] | np.ndarray) -> np.ndarray:
        """Record reads at arbitrary flat indices and return the elements."""
        idx = np.asarray(indices, dtype=np.int64).ravel()
        addresses = np.uint64(self.base) + idx.astype(np.uint64) * np.uint64(self.data.itemsize)
        kinds = np.zeros(len(idx), dtype=np.uint8)
        self.recorder._flush()
        self.recorder._chunks.append(TraceChunk(addresses, kinds, 0, self.pc))
        return self.data.reshape(-1)[idx]
