"""Trace serialization.

Instrumented kernel runs are expensive relative to cache simulation;
persisting their traces lets a design-space sweep re-run many cache
configurations against one recorded execution — the software equivalent
of replaying a logic-analyzer capture into the emulator.

Format: numpy ``.npz`` with the four column arrays plus a format tag.
"""

from __future__ import annotations

import os
from typing import BinaryIO

import numpy as np

from repro.errors import TraceError
from repro.trace.record import TraceChunk

FORMAT_TAG = "repro-trace-v1"


def save_trace(chunk: TraceChunk, path: str | os.PathLike | BinaryIO) -> None:
    """Write a trace chunk to ``path`` (``.npz``, compressed)."""
    np.savez_compressed(
        path,
        format=np.array(FORMAT_TAG),
        addresses=chunk.addresses,
        kinds=chunk.kinds,
        cores=chunk.cores,
        pcs=chunk.pcs,
    )


def load_trace(path: str | os.PathLike | BinaryIO) -> TraceChunk:
    """Read a trace chunk previously written by :func:`save_trace`."""
    with np.load(path) as archive:
        try:
            tag = str(archive["format"])
        except KeyError:
            raise TraceError(f"{path!r} is not a repro trace file") from None
        if tag != FORMAT_TAG:
            raise TraceError(f"unsupported trace format {tag!r}")
        return TraceChunk(
            archive["addresses"], archive["kinds"], archive["cores"], archive["pcs"]
        )
