"""Memory-transaction record types.

A trace is a sequence of memory transactions as they would appear on the
front-side bus of the co-simulation host: a byte address, a read/write
kind, the virtual core that issued it, and (optionally) the program
counter of the issuing instruction, which the stride prefetcher uses to
separate access streams.

Two representations are provided:

* :class:`MemoryAccess` — a single transaction, convenient for tests and
  for the instrumentation layer.
* :class:`TraceChunk` — a structure-of-arrays batch of transactions
  backed by numpy, the representation every performance-sensitive
  consumer (cache simulator, stack-distance analyzer) operates on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import TraceError


class AccessKind(enum.IntEnum):
    """The kind of a memory transaction."""

    READ = 0
    WRITE = 1

    @property
    def is_read(self) -> bool:
        return self is AccessKind.READ


@dataclass(frozen=True, slots=True)
class MemoryAccess:
    """A single memory transaction.

    Attributes:
        address: byte address of the transaction.
        kind: read or write.
        core: id of the virtual core that issued the transaction.
        pc: program counter of the issuing instruction (0 when unknown).
        size: number of bytes touched (defaults to one word).
    """

    address: int
    kind: AccessKind = AccessKind.READ
    core: int = 0
    pc: int = 0
    size: int = 8

    def line(self, line_size: int) -> int:
        """Return the cache-line index of this access."""
        return self.address // line_size


class TraceChunk:
    """A batch of memory transactions in structure-of-arrays form.

    All arrays share one length.  Addresses are ``uint64`` byte
    addresses; kinds are ``uint8`` values of :class:`AccessKind`; cores
    are ``uint16``; pcs are ``uint64``.
    """

    __slots__ = ("addresses", "kinds", "cores", "pcs")

    def __init__(
        self,
        addresses: np.ndarray | Sequence[int],
        kinds: np.ndarray | Sequence[int] | None = None,
        cores: np.ndarray | Sequence[int] | int = 0,
        pcs: np.ndarray | Sequence[int] | int = 0,
    ) -> None:
        self.addresses = np.asarray(addresses, dtype=np.uint64)
        n = len(self.addresses)
        if kinds is None:
            self.kinds = np.zeros(n, dtype=np.uint8)
        else:
            self.kinds = np.asarray(kinds, dtype=np.uint8)
        if isinstance(cores, (int, np.integer)):
            self.cores = np.full(n, cores, dtype=np.uint16)
        else:
            self.cores = np.asarray(cores, dtype=np.uint16)
        if isinstance(pcs, (int, np.integer)):
            self.pcs = np.full(n, pcs, dtype=np.uint64)
        else:
            self.pcs = np.asarray(pcs, dtype=np.uint64)
        if not (len(self.kinds) == len(self.cores) == len(self.pcs) == n):
            raise TraceError(
                "TraceChunk arrays must share one length: "
                f"addresses={n} kinds={len(self.kinds)} "
                f"cores={len(self.cores)} pcs={len(self.pcs)}"
            )

    # -- construction -------------------------------------------------

    @classmethod
    def from_accesses(cls, accesses: Iterable[MemoryAccess]) -> "TraceChunk":
        """Build a chunk from individual :class:`MemoryAccess` records."""
        accesses = list(accesses)
        return cls(
            addresses=[a.address for a in accesses],
            kinds=[int(a.kind) for a in accesses],
            cores=[a.core for a in accesses],
            pcs=[a.pc for a in accesses],
        )

    @classmethod
    def empty(cls) -> "TraceChunk":
        """Return a zero-length chunk."""
        return cls(np.empty(0, dtype=np.uint64))

    # -- container protocol -------------------------------------------

    def __len__(self) -> int:
        return len(self.addresses)

    def __iter__(self) -> Iterator[MemoryAccess]:
        for i in range(len(self)):
            yield MemoryAccess(
                address=int(self.addresses[i]),
                kind=AccessKind(int(self.kinds[i])),
                core=int(self.cores[i]),
                pc=int(self.pcs[i]),
            )

    def __getitem__(self, index: slice) -> "TraceChunk":
        if not isinstance(index, slice):
            raise TypeError("TraceChunk only supports slice indexing")
        return TraceChunk(
            self.addresses[index], self.kinds[index], self.cores[index], self.pcs[index]
        )

    def __repr__(self) -> str:
        return f"TraceChunk(n={len(self)})"

    # -- transformations ----------------------------------------------

    def lines(self, line_size: int) -> np.ndarray:
        """Return the cache-line index of every access as ``uint64``."""
        if line_size <= 0:
            raise TraceError(f"line size must be positive, got {line_size}")
        shift = int(line_size).bit_length() - 1
        if (1 << shift) != line_size:
            return self.addresses // np.uint64(line_size)
        return self.addresses >> np.uint64(shift)

    def with_core(self, core: int) -> "TraceChunk":
        """Return a copy of this chunk re-tagged to ``core``."""
        return TraceChunk(self.addresses, self.kinds, core, self.pcs)

    def read_count(self) -> int:
        """Number of read transactions in the chunk."""
        return int(np.count_nonzero(self.kinds == int(AccessKind.READ)))

    def write_count(self) -> int:
        """Number of write transactions in the chunk."""
        return len(self) - self.read_count()

    @staticmethod
    def concatenate(chunks: Sequence["TraceChunk"]) -> "TraceChunk":
        """Concatenate chunks preserving order."""
        chunks = [c for c in chunks if len(c)]
        if not chunks:
            return TraceChunk.empty()
        return TraceChunk(
            np.concatenate([c.addresses for c in chunks]),
            np.concatenate([c.kinds for c in chunks]),
            np.concatenate([c.cores for c in chunks]),
            np.concatenate([c.pcs for c in chunks]),
        )
